//! Fixture tests for the lint rules: every rule gets at least one
//! failing and one passing snippet, including the tricky lexical cases
//! (`unsafe` inside a string literal, `unwrap` inside `#[cfg(test)]`, a
//! SAFETY comment separated by a blank line), plus a self-check that the
//! real tree is clean.

use std::path::{Path, PathBuf};
use xtask::allowlist::Allowlist;
use xtask::rules;
use xtask::scan::SourceFile;

fn src(path: &str, text: &str) -> Vec<SourceFile> {
    vec![SourceFile::parse(path, text)]
}

/// An allowlist loaded from a root with no `xtask/lints/` — i.e. empty.
fn no_allow(rule: &str) -> Allowlist {
    Allowlist::load(Path::new("/nonexistent-xtask-test-root"), rule)
}

/// A scratch directory seeded with the given `(relative path, content)`
/// files, removed on drop.
struct TempRoot(PathBuf);

impl TempRoot {
    fn new(tag: &str, files: &[(&str, &str)]) -> TempRoot {
        let dir =
            std::env::temp_dir().join(format!("xtask-lint-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for (rel, content) in files {
            let path = dir.join(rel);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(path, content).unwrap();
        }
        std::fs::create_dir_all(&dir).unwrap();
        TempRoot(dir)
    }
}

impl Drop for TempRoot {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

// ---------------------------------------------------------------- safety

#[test]
fn safety_comment_flags_undocumented_unsafe() {
    let files = src("crates/store/src/x.rs", "fn f() {\n    unsafe { g() }\n}\n");
    let v = rules::safety_comment(&files, &mut no_allow("safety_comment"));
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].line, 2);
    assert_eq!(v[0].rule, "safety-comment");
}

#[test]
fn safety_comment_accepts_adjacent_comment_block() {
    let text = "fn f() {\n    // SAFETY: g upholds its contract because\n    // the buffer is owned.\n    unsafe { g() }\n}\n";
    let files = src("crates/store/src/x.rs", text);
    assert!(rules::safety_comment(&files, &mut no_allow("safety_comment")).is_empty());
}

#[test]
fn safety_comment_accepts_same_line_trailing_comment() {
    let files = src(
        "crates/store/src/x.rs",
        "unsafe impl Send for X {} // SAFETY: X owns no thread-bound state\n",
    );
    assert!(rules::safety_comment(&files, &mut no_allow("safety_comment")).is_empty());
}

#[test]
fn safety_comment_rejects_comment_separated_by_blank_line() {
    let text = "// SAFETY: stale justification\n\nunsafe fn f() {}\n";
    let files = src("crates/store/src/x.rs", text);
    let v = rules::safety_comment(&files, &mut no_allow("safety_comment"));
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].line, 3);
}

#[test]
fn safety_comment_ignores_unsafe_inside_string_literal() {
    let files = src(
        "crates/store/src/x.rs",
        "fn f() { let s = \"unsafe { not code }\"; }\n",
    );
    assert!(rules::safety_comment(&files, &mut no_allow("safety_comment")).is_empty());
}

// --------------------------------------------------------------- panics

#[test]
fn no_panics_flags_unwrap_expect_and_panic_in_serving_files() {
    let text = "fn f() {\n    x.unwrap();\n    y.expect(\"boom\");\n    panic!(\"no\");\n}\n";
    let files = src("crates/cli/src/server.rs", text);
    let v = rules::no_panics(&files, &mut no_allow("no_panics"));
    assert_eq!(v.len(), 3, "{v:?}");
    assert_eq!(v.iter().map(|v| v.line).collect::<Vec<_>>(), vec![2, 3, 4]);
}

#[test]
fn no_panics_ignores_cfg_test_regions_and_non_serving_files() {
    let text = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\n";
    let files = src("crates/cli/src/server.rs", text);
    assert!(
        rules::no_panics(&files, &mut no_allow("no_panics")).is_empty(),
        "unwrap inside #[cfg(test)] must not be flagged"
    );

    let files = src("crates/cli/src/main.rs", "fn f() { x.unwrap(); }\n");
    assert!(
        rules::no_panics(&files, &mut no_allow("no_panics")).is_empty(),
        "non-serving files are out of scope"
    );
}

#[test]
fn no_panics_does_not_flag_lookalike_methods() {
    let text = "fn f() { a.unwrap_or(3); b.unwrap_or_else(|| 4); }\n";
    let files = src("crates/cli/src/pool.rs", text);
    assert!(rules::no_panics(&files, &mut no_allow("no_panics")).is_empty());
}

#[test]
fn no_panics_allowlist_suppresses_and_reports_stale_entries() {
    let root = TempRoot::new(
        "allow",
        &[(
            "xtask/lints/no_panics.allow",
            "# justified\ncrates/cli/src/pool.rs :: .expect(\"fine\")\ncrates/cli/src/pool.rs :: never-matches\n",
        )],
    );
    let files = src("crates/cli/src/pool.rs", "fn f() { x.expect(\"fine\"); }\n");
    let mut allow = Allowlist::load(&root.0, "no_panics");
    let v = rules::no_panics(&files, &mut allow);
    // The real expect is suppressed; the stale entry is the one violation.
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].message.contains("stale"), "{v:?}");
    assert!(v[0].path.ends_with("no_panics.allow"));
}

// ---------------------------------------------------------------- dist

#[test]
fn dist_arith_flags_bare_plus_and_minus() {
    for line in [
        "let x = dist + 1;",
        "let x = total - dist;",
        "best_dist += 1;",
        "let x = INFINITY - 1;",
        "let x = entry_dist(e) + 1;",
    ] {
        let files = src(
            "crates/index/src/query.rs",
            &format!("fn f() {{ {line} }}\n"),
        );
        let v = rules::dist_arith(&files, &mut no_allow("dist_arith"));
        assert_eq!(v.len(), 1, "expected a violation for `{line}`: {v:?}");
    }
}

#[test]
fn dist_arith_accepts_widened_and_saturating_forms() {
    for line in [
        "let x = dist as u64 + 1;",
        "let x = entry_dist(ea) as u64 + entry_dist(eb) as u64;",
        "let x = dist.saturating_add(1);",
        "if dist == INFINITY { return None; }",
        "let x = dist_fwd[w as usize];",
        "let far = distances.len();",
    ] {
        let files = src(
            "crates/index/src/query.rs",
            &format!("fn f() {{ {line} }}\n"),
        );
        let v = rules::dist_arith(&files, &mut no_allow("dist_arith"));
        assert!(v.is_empty(), "false positive for `{line}`: {v:?}");
    }
}

#[test]
fn dist_arith_only_applies_to_core_and_index() {
    let files = src("crates/cli/src/main.rs", "fn f() { let x = dist + 1; }\n");
    assert!(rules::dist_arith(&files, &mut no_allow("dist_arith")).is_empty());
}

// --------------------------------------------------------------- print

#[test]
fn no_print_flags_library_prints_but_not_tests_or_bins() {
    let files = src("crates/store/src/lib.rs", "fn f() { println!(\"x\"); }\n");
    let v = rules::no_print(&files, &mut no_allow("no_print"));
    assert_eq!(v.len(), 1, "{v:?}");

    let text = "#[cfg(test)]\nmod tests {\n    fn g() { eprintln!(\"dbg\"); }\n}\n";
    let files = src("crates/core/src/lib.rs", text);
    assert!(rules::no_print(&files, &mut no_allow("no_print")).is_empty());

    let files = src(
        "crates/cli/src/main.rs",
        "fn f() { println!(\"cli output\"); }\n",
    );
    assert!(rules::no_print(&files, &mut no_allow("no_print")).is_empty());
}

// -------------------------------------------------------------- format

const FORMAT_RS_FIXTURE: &str = r#"
pub const FORMAT_VERSION: u32 = 5;
pub const OLDEST_READABLE_VERSION: u32 = 2;
pub const HEADER_LEN: usize = 96;
pub const LEGACY_HEADER_LEN: usize = 80;
pub enum SectionKind {
    GraphOffsets = 1,
    Highway = 8,
}
impl SectionKind {
    pub fn elem_size(self) -> u32 {
        match self {
            Self::GraphOffsets => 8,
            _ => 4,
        }
    }
    pub fn name(self) -> &'static str {
        match self {
            Self::GraphOffsets => "graph_offsets",
            Self::Highway => "highway",
        }
    }
}
"#;

fn format_doc(version: u64, highway_elem: &str) -> String {
    format!(
        "# doc\n<!-- lint:store-format:begin -->\nversion **{version}** accepts \
         **2**; header **96** bytes, legacy **80**.\n\n\
         | kind | section | element |\n|---|---|---|\n\
         | 1 | graph_offsets | u64 |\n| 8 | highway | {highway_elem} |\n\
         <!-- lint:store-format:end -->\n"
    )
}

#[test]
fn store_format_passes_when_doc_matches_code() {
    let root = TempRoot::new("fmt-ok", &[("docs/ARCHITECTURE.md", &format_doc(5, "u32"))]);
    let files = src("crates/store/src/format.rs", FORMAT_RS_FIXTURE);
    let v = rules::store_format(&root.0, &files);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn store_format_flags_version_and_element_mismatches() {
    let root = TempRoot::new(
        "fmt-bad",
        &[("docs/ARCHITECTURE.md", &format_doc(4, "u64"))],
    );
    let files = src("crates/store/src/format.rs", FORMAT_RS_FIXTURE);
    let v = rules::store_format(&root.0, &files);
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v.iter().any(|v| v.message.contains("format version")));
    assert!(v.iter().any(|v| v.message.contains("highway")));
}

#[test]
fn store_format_requires_the_marker_block() {
    let root = TempRoot::new("fmt-missing", &[("docs/ARCHITECTURE.md", "# no block\n")]);
    let files = src("crates/store/src/format.rs", FORMAT_RS_FIXTURE);
    let v = rules::store_format(&root.0, &files);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].message.contains("lint:store-format"));
}

// ------------------------------------------------------------- metrics

#[test]
fn metrics_docs_requires_every_emitted_name_documented() {
    let code = "fn f() { emit(\"hcl_documented_total\"); emit(\"hcl_missing_total\"); }\n";
    let root = TempRoot::new(
        "metrics",
        &[(
            "docs/ARCHITECTURE.md",
            "`hcl_documented_total` counts things.\n",
        )],
    );
    let files = src("crates/cli/src/metrics.rs", code);
    let v = rules::metrics_docs(&root.0, &files);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].message.contains("hcl_missing_total"), "{v:?}");

    // Names in non-emitter files are out of scope.
    let files = src("crates/cli/src/main.rs", code);
    assert!(rules::metrics_docs(&root.0, &files).is_empty());
}

// --------------------------------------------------------------- gates

#[test]
fn crate_gates_pins_the_unsafe_lint_configuration() {
    let good = [
        ("crates/core/src/lib.rs", "#![forbid(unsafe_code)]\n"),
        ("crates/index/src/lib.rs", "#![forbid(unsafe_code)]\n"),
        (
            "crates/store/src/lib.rs",
            "#![deny(unsafe_op_in_unsafe_fn)]\n",
        ),
        (
            "crates/cli/src/main.rs",
            "#![deny(unsafe_code)]\n#![deny(unsafe_op_in_unsafe_fn)]\n",
        ),
    ];
    let files: Vec<SourceFile> = good.iter().map(|(p, t)| SourceFile::parse(p, t)).collect();
    assert!(rules::crate_gates(&files).is_empty());

    let mut dropped = files;
    dropped[0] = SourceFile::parse("crates/core/src/lib.rs", "// gate removed\n");
    let v = rules::crate_gates(&dropped);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].message.contains("forbid(unsafe_code)"));
}

// ----------------------------------------------------------- self-check

/// The real tree must lint clean — the same invariant CI enforces via
/// `cargo xtask lint`, checked here so `cargo test` alone catches it.
#[test]
fn current_tree_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap();
    let v = xtask::run_lint(root, None).expect("scan failed");
    assert!(
        v.is_empty(),
        "`cargo xtask lint` violations on the current tree:\n{}",
        v.iter()
            .map(|v| format!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
