//! `cargo xtask <task>` — workspace automation entry point.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask lint [--root PATH] [--rule NAME]\n\
         \n\
         Runs the workspace-specific static-analysis pass.\n\
         Rules: {}",
        xtask::RULE_NAMES.join(", ")
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {}
        _ => return usage(),
    }
    let mut root: Option<PathBuf> = None;
    let mut rule: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--rule" => rule = args.next(),
            _ => return usage(),
        }
    }
    if let Some(r) = &rule {
        if !xtask::RULE_NAMES.contains(&r.as_str()) {
            eprintln!("unknown rule `{r}`");
            return usage();
        }
    }
    // `cargo xtask …` runs with cwd = workspace root; `--root` overrides
    // for tests and out-of-tree runs.
    let root = root
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));

    let violations = match xtask::run_lint(&root, rule.as_deref()) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("xtask lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for v in &violations {
        println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
    }
    if violations.is_empty() {
        eprintln!("xtask lint: clean ({} rules)", xtask::RULE_NAMES.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
