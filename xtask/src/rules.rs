//! The workspace-specific lint rules.
//!
//! Every rule works on [`SourceFile`]s scrubbed by [`crate::scan`] —
//! comments and string contents blanked, `#[cfg(test)]` regions marked —
//! so keyword matches are sound without parsing Rust. Each rule returns
//! plain [`Violation`]s; policy (which files, which exceptions) lives
//! here, next to the rule it shapes.

use crate::allowlist::Allowlist;
use crate::scan::{find_words, tokens, SourceFile};
use std::path::Path;

/// One diagnostic, printed as `path:line: [rule] message`.
#[derive(Debug)]
pub struct Violation {
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule name, e.g. `no-panics`.
    pub rule: &'static str,
    /// Human-readable description with the suggested fix.
    pub message: String,
}

fn violation(file: &SourceFile, line_idx: usize, rule: &'static str, message: String) -> Violation {
    Violation {
        path: file.path.clone(),
        line: line_idx + 1,
        rule,
        message,
    }
}

/// Folds an allowlist's leftover (never-matched) entries into violations:
/// a stale exception is itself a lint failure, so the vetted-exception
/// count can only go down without an explicit allowlist edit.
fn drain_unused(allow: &Allowlist, rule: &'static str, out: &mut Vec<Violation>) {
    for (line, text) in allow.unused() {
        out.push(Violation {
            path: allow.file.clone(),
            line,
            rule,
            message: format!("stale allowlist entry (matches nothing): {text}"),
        });
    }
}

// ---------------------------------------------------------------------------
// Rule: safety-comment
// ---------------------------------------------------------------------------

/// Every `unsafe` occurrence (block, fn, impl, trait) must be documented
/// by a `// SAFETY:` comment — on the same line or in the contiguous
/// block of comment lines immediately above (a blank line breaks the
/// chain; the invariant belongs *next to* the unsafety it justifies).
pub fn safety_comment(files: &[SourceFile], allow: &mut Allowlist) -> Vec<Violation> {
    const RULE: &str = "safety-comment";
    let mut out = Vec::new();
    for file in files {
        for (i, line) in file.lines.iter().enumerate() {
            if find_words(&line.code, "unsafe").next().is_none() {
                continue;
            }
            let mut documented = line.comment.contains("SAFETY:");
            let mut j = i;
            while !documented && j > 0 {
                j -= 1;
                let above = &file.lines[j];
                let comment_only = above.code.trim().is_empty() && !above.comment.trim().is_empty();
                if !comment_only {
                    break; // code or a blank line ends the comment block
                }
                documented = above.comment.contains("SAFETY:");
            }
            if documented || allow.permits(&file.path, &line.raw) {
                continue;
            }
            out.push(violation(
                file,
                i,
                RULE,
                "`unsafe` without an immediately preceding `// SAFETY:` comment".to_string(),
            ));
        }
    }
    drain_unused(allow, RULE, &mut out);
    out
}

// ---------------------------------------------------------------------------
// Rule: no-panics
// ---------------------------------------------------------------------------

/// Files on the request-serving path: a panic here takes down a worker
/// thread (or wedges a pool) instead of degrading one request.
pub const SERVING_PATH_FILES: &[&str] = &[
    "crates/cli/src/server.rs",
    "crates/cli/src/pool.rs",
    "crates/cli/src/scrub.rs",
    "crates/cli/src/slowlog.rs",
    "crates/cli/src/metrics.rs",
    "crates/cli/src/sync.rs",
    "crates/cli/src/update.rs",
    "crates/index/src/query.rs",
    "crates/index/src/view.rs",
];

/// No `.unwrap()` / `.expect(…)` / `panic!` family in request-serving
/// code outside `#[cfg(test)]`. Vetted exceptions (with justifications)
/// live in `xtask/lints/no_panics.allow`.
pub fn no_panics(files: &[SourceFile], allow: &mut Allowlist) -> Vec<Violation> {
    const RULE: &str = "no-panics";
    const MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    let mut out = Vec::new();
    for file in files {
        if !SERVING_PATH_FILES.contains(&file.path.as_str()) {
            continue;
        }
        for (i, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let toks = tokens(&line.code);
            for (t, (_, tok)) in toks.iter().enumerate() {
                let next = toks.get(t + 1).map(|(_, s)| s.as_str());
                let prev = t.checked_sub(1).and_then(|p| toks.get(p));
                let is_method_call = |name: &str| {
                    tok == name
                        && next == Some("(")
                        && prev.is_some_and(|(_, p)| p == "." || p == "?")
                };
                let offending = if is_method_call("unwrap") || is_method_call("expect") {
                    Some(format!(".{tok}(…)"))
                } else if MACROS.contains(&tok.as_str()) && next == Some("!") {
                    Some(format!("{tok}!"))
                } else {
                    None
                };
                let Some(what) = offending else { continue };
                if allow.permits(&file.path, &line.raw) {
                    break; // one allow entry covers the whole line
                }
                out.push(violation(
                    file,
                    i,
                    RULE,
                    format!(
                        "`{what}` in request-serving code; degrade and count the error, or \
                         add a justified entry to xtask/lints/no_panics.allow"
                    ),
                ));
                break; // one diagnostic per line keeps the report readable
            }
        }
    }
    drain_unused(allow, RULE, &mut out);
    out
}

// ---------------------------------------------------------------------------
// Rule: dist-arith
// ---------------------------------------------------------------------------

/// Casts wide enough that `u32` distance sums cannot wrap in them.
const WIDE_CASTS: &[&str] = &["u64", "i64", "u128", "i128", "f64"];

/// No bare `+`/`-` on distance-typed values in `hcl-core`/`hcl-index`
/// (outside tests): distances are `u32` with `INFINITY == u32::MAX` as
/// the sentinel, so bare arithmetic can wrap — exactly the PR-3 bug
/// class. Sums must go through `saturating_*` or be widened `as u64`
/// first (the INFINITY-aware helpers all do).
///
/// The detector is a token heuristic: an identifier containing `dist`
/// (or the `INFINITY` sentinel itself) adjacent to a binary `+`/`-`/
/// `+=`/`-=`, with a following balanced `(…)`/`[…]` group and an `as`
/// cast skipped first. A 64-bit-or-wider cast on the flagged operand
/// clears it.
pub fn dist_arith(files: &[SourceFile], allow: &mut Allowlist) -> Vec<Violation> {
    const RULE: &str = "dist-arith";
    let mut out = Vec::new();
    for file in files {
        if !(file.path.starts_with("crates/core/src/")
            || file.path.starts_with("crates/index/src/"))
        {
            continue;
        }
        for (i, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let toks = tokens(&line.code);
            for (t, (_, tok)) in toks.iter().enumerate() {
                let distish = tok.to_lowercase().contains("dist") || tok == "INFINITY";
                if !distish || !tok.chars().next().is_some_and(crate::scan::is_word_char) {
                    continue;
                }
                if !operand_risky(&toks, t) {
                    continue;
                }
                if allow.permits(&file.path, &line.raw) {
                    break;
                }
                out.push(violation(
                    file,
                    i,
                    RULE,
                    format!(
                        "bare `+`/`-` on distance-typed `{tok}`; use saturating_* or widen \
                         `as u64` first (INFINITY is a sentinel, not a number)"
                    ),
                ));
                break;
            }
        }
    }
    drain_unused(allow, RULE, &mut out);
    out
}

/// Is the operand starting at token `t` (a dist-ish word) involved in
/// bare binary `+`/`-` arithmetic without a widening cast?
fn operand_risky(toks: &[(usize, String)], t: usize) -> bool {
    // Forward: skip one balanced (…) or […] group directly after the
    // word (a call or an index), then an optional `as <type>` cast.
    let mut k = t + 1;
    if let Some((_, open)) = toks.get(k) {
        let close = match open.as_str() {
            "(" => ")",
            "[" => "]",
            _ => "",
        };
        if !close.is_empty() {
            let mut depth = 0i32;
            while k < toks.len() {
                let s = toks[k].1.as_str();
                if s == open {
                    depth += 1;
                } else if s == close {
                    depth -= 1;
                    if depth == 0 {
                        k += 1;
                        break;
                    }
                }
                k += 1;
            }
            if depth != 0 {
                return false; // group spans lines; cannot analyse — skip
            }
        }
    }
    let mut widened = false;
    while toks.get(k).is_some_and(|(_, s)| s == "as") {
        if let Some((_, ty)) = toks.get(k + 1) {
            widened = WIDE_CASTS.contains(&ty.as_str());
            k += 2;
        } else {
            break;
        }
    }
    let followed_by_op = toks
        .get(k)
        .is_some_and(|(_, s)| matches!(s.as_str(), "+" | "-" | "+=" | "-="));
    if followed_by_op && !widened {
        return true;
    }

    // Backward: `a + dist` — flag when the `+`/`-` is binary (something
    // operand-like precedes it) and this side is not widened.
    if t >= 2 {
        let prev = toks[t - 1].1.as_str();
        let before = toks[t - 2].1.as_str();
        let binary = matches!(prev, "+" | "-")
            && (before.chars().next().is_some_and(crate::scan::is_word_char)
                || matches!(before, ")" | "]"));
        if binary && !widened {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rule: no-print
// ---------------------------------------------------------------------------

/// No `println!`/`eprintln!`/`print!`/`eprint!`/`dbg!` in library crates
/// (`core`/`index`/`store`) outside tests: libraries report through
/// return values, probes, and typed errors — a print in library code is
/// invisible to the serving front end's diagnostics discipline.
pub fn no_print(files: &[SourceFile], allow: &mut Allowlist) -> Vec<Violation> {
    const RULE: &str = "no-print";
    const MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];
    let mut out = Vec::new();
    for file in files {
        let library = ["crates/core/src/", "crates/index/src/", "crates/store/src/"]
            .iter()
            .any(|p| file.path.starts_with(p));
        if !library {
            continue;
        }
        for (i, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let toks = tokens(&line.code);
            for (t, (_, tok)) in toks.iter().enumerate() {
                if !MACROS.contains(&tok.as_str())
                    || toks.get(t + 1).map(|(_, s)| s.as_str()) != Some("!")
                {
                    continue;
                }
                if allow.permits(&file.path, &line.raw) {
                    break;
                }
                out.push(violation(
                    file,
                    i,
                    RULE,
                    format!("`{tok}!` in a library crate; return data or use a probe instead"),
                ));
                break;
            }
        }
    }
    drain_unused(allow, RULE, &mut out);
    out
}

// ---------------------------------------------------------------------------
// Rule: store-format
// ---------------------------------------------------------------------------

/// What the store-format rule extracted from `store/src/format.rs`.
struct FormatFacts {
    version: u64,
    oldest: u64,
    header_len: u64,
    legacy_header_len: u64,
    /// `(kind discriminant, snake_case name, element type)` per variant.
    kinds: Vec<(u64, String, &'static str)>,
}

/// The format-version constant, section-kind enum, and header-size table
/// documented in `docs/ARCHITECTURE.md` must agree with
/// `store/src/format.rs`. The doc side lives between
/// `<!-- lint:store-format:begin -->` / `<!-- lint:store-format:end -->`
/// markers; the code side is extracted from the constants, the
/// `SectionKind` enum, and its `elem_size` arms.
pub fn store_format(root: &Path, files: &[SourceFile]) -> Vec<Violation> {
    const RULE: &str = "store-format";
    const FORMAT_RS: &str = "crates/store/src/format.rs";
    const DOC: &str = "docs/ARCHITECTURE.md";
    let mut out = Vec::new();
    let fail = |line: usize, path: &str, message: String| Violation {
        path: path.to_string(),
        line,
        rule: RULE,
        message,
    };

    let Some(format_file) = files.iter().find(|f| f.path == FORMAT_RS) else {
        return vec![fail(1, FORMAT_RS, "file missing from the scan set".into())];
    };
    let facts = match extract_format_facts(format_file) {
        Ok(facts) => facts,
        Err(msg) => return vec![fail(1, FORMAT_RS, msg)],
    };

    // Cross-check the derived snake_case names against the string
    // literals in format.rs (the `name()` method): a renamed section
    // whose enum variant was not updated shows up here.
    let literals: Vec<&String> = format_file
        .lines
        .iter()
        .flat_map(|l| l.strings.iter())
        .collect();
    for (_, name, _) in &facts.kinds {
        if !literals.contains(&name) {
            out.push(fail(
                1,
                FORMAT_RS,
                format!(
                    "section `{name}` (derived from the SectionKind enum) has no matching \
                         string literal — `name()` and the enum disagree"
                ),
            ));
        }
    }

    let doc_text = match std::fs::read_to_string(root.join(DOC)) {
        Ok(t) => t,
        Err(e) => return vec![fail(1, DOC, format!("unreadable: {e}"))],
    };
    let Some((block_start, block)) = doc_block(&doc_text, "lint:store-format") else {
        return vec![fail(
            1,
            DOC,
            "missing `<!-- lint:store-format:begin/end -->` block documenting the \
             container format"
                .into(),
        )];
    };

    // Prose side: the four bold integers, in order: current version,
    // oldest readable, header bytes, legacy header bytes.
    let bold: Vec<u64> = bold_ints(block);
    let expected = [
        ("current format version", facts.version),
        ("oldest readable version", facts.oldest),
        ("header length", facts.header_len),
        ("legacy header length", facts.legacy_header_len),
    ];
    if bold.len() < expected.len() {
        out.push(fail(
            block_start,
            DOC,
            format!(
                "store-format block must carry four bold integers (current version, oldest \
                 readable, header bytes, legacy header bytes); found {}",
                bold.len()
            ),
        ));
    } else {
        for (i, (what, want)) in expected.iter().enumerate() {
            if bold[i] != *want {
                out.push(fail(
                    block_start,
                    DOC,
                    format!("{what} documented as {} but format.rs says {want}", bold[i]),
                ));
            }
        }
    }

    // Table side: `| kind | section | element |` rows.
    let mut doc_kinds: Vec<(u64, String, String)> = Vec::new();
    for row in block.lines() {
        let cells: Vec<&str> = row.trim().trim_matches('|').split('|').collect();
        if cells.len() != 3 {
            continue;
        }
        if let Ok(kind) = cells[0].trim().parse::<u64>() {
            doc_kinds.push((
                kind,
                cells[1].trim().to_string(),
                cells[2].trim().to_string(),
            ));
        }
    }
    for (kind, name, elem) in &facts.kinds {
        match doc_kinds.iter().find(|(k, _, _)| k == kind) {
            None => out.push(fail(
                block_start,
                DOC,
                format!("section kind {kind} (`{name}`) is not in the documented table"),
            )),
            Some((_, doc_name, doc_elem)) => {
                if doc_name != name || doc_elem != elem {
                    out.push(fail(
                        block_start,
                        DOC,
                        format!(
                            "section kind {kind} documented as `{doc_name}`/`{doc_elem}` but \
                             format.rs says `{name}`/`{elem}`"
                        ),
                    ));
                }
            }
        }
    }
    for (kind, doc_name, _) in &doc_kinds {
        if !facts.kinds.iter().any(|(k, _, _)| k == kind) {
            out.push(fail(
                block_start,
                DOC,
                format!(
                    "documented section kind {kind} (`{doc_name}`) does not exist in \
                         format.rs"
                ),
            ));
        }
    }
    out
}

fn extract_format_facts(file: &SourceFile) -> Result<FormatFacts, String> {
    let const_val = |name: &str| -> Result<u64, String> {
        for line in &file.lines {
            if let Some(rest) = line.code.split_once(&format!("const {name}:")) {
                let after_eq = rest
                    .1
                    .split_once('=')
                    .ok_or_else(|| format!("`{name}` has no `=`"))?
                    .1;
                return after_eq
                    .trim()
                    .trim_end_matches(';')
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| format!("`{name}` is not a literal integer"));
            }
        }
        Err(format!("`const {name}` not found"))
    };
    let version = const_val("FORMAT_VERSION")?;
    let oldest = const_val("OLDEST_READABLE_VERSION")?;
    let header_len = const_val("HEADER_LEN")?;
    let legacy_header_len = const_val("LEGACY_HEADER_LEN")?;

    // Enum variants with explicit discriminants.
    let mut variants: Vec<(u64, String)> = Vec::new();
    let mut in_enum = false;
    for line in &file.lines {
        let code = line.code.trim();
        if code.contains("enum SectionKind") {
            in_enum = true;
            continue;
        }
        if in_enum {
            if code.starts_with('}') {
                break;
            }
            if let Some((name, value)) = code.split_once('=') {
                let name = name.trim().to_string();
                if let Ok(v) = value.trim().trim_end_matches(',').parse::<u64>() {
                    variants.push((v, name));
                }
            }
        }
    }
    if variants.is_empty() {
        return Err("no `enum SectionKind` variants found".into());
    }

    // `elem_size` arms: variants listed before `=> 8` are u64 sections.
    let mut wide: Vec<String> = Vec::new();
    let mut in_elem = false;
    for line in &file.lines {
        let code = line.code.trim();
        if code.contains("fn elem_size") {
            in_elem = true;
            continue;
        }
        if in_elem {
            if code.contains("=> 8") {
                for part in code.split("=>").next().unwrap_or("").split('|') {
                    let v = part.trim().trim_start_matches("Self::").trim();
                    if !v.is_empty() {
                        wide.push(v.to_string());
                    }
                }
            }
            if code.contains("=> 4") {
                break; // the default arm closes the match for our purposes
            }
        }
    }
    if wide.is_empty() {
        return Err("no `=> 8` arm found in `fn elem_size`".into());
    }

    let kinds = variants
        .into_iter()
        .map(|(v, name)| {
            let elem = if wide.contains(&name) { "u64" } else { "u32" };
            (v, camel_to_snake(&name), elem)
        })
        .collect();
    Ok(FormatFacts {
        version,
        oldest,
        header_len,
        legacy_header_len,
        kinds,
    })
}

fn camel_to_snake(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// The text between `<!-- <marker>:begin … -->` and `<!-- <marker>:end`,
/// plus the 1-based line the block starts on.
fn doc_block<'a>(text: &'a str, marker: &str) -> Option<(usize, &'a str)> {
    let begin_tag = format!("{marker}:begin");
    let end_tag = format!("{marker}:end");
    let begin = text.find(&begin_tag)?;
    let begin_nl = text[begin..].find('\n').map(|o| begin + o + 1)?;
    let end = text[begin_nl..].find(&end_tag).map(|o| begin_nl + o)?;
    let end_line_start = text[..end].rfind('\n').map(|o| o + 1).unwrap_or(0);
    let line = text[..begin].matches('\n').count() + 1;
    Some((line, &text[begin_nl..end_line_start]))
}

/// All `**N**` bold integers in `text`, in order.
fn bold_ints(text: &str) -> Vec<u64> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find("**") {
        let after = &rest[start + 2..];
        let Some(end) = after.find("**") else { break };
        if let Ok(v) = after[..end].trim().parse::<u64>() {
            out.push(v);
        }
        rest = &after[end + 2..];
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: metrics-docs
// ---------------------------------------------------------------------------

/// Every `hcl_*` metric name emitted by the serving front end
/// (`cli/src/metrics.rs`, `cli/src/server.rs`, `cli/src/scrub.rs`) must
/// be documented in `docs/ARCHITECTURE.md` — dashboards are built from the docs, and an
/// undocumented counter is invisible operational surface.
pub fn metrics_docs(root: &Path, files: &[SourceFile]) -> Vec<Violation> {
    const RULE: &str = "metrics-docs";
    const EMITTERS: &[&str] = &[
        "crates/cli/src/metrics.rs",
        "crates/cli/src/server.rs",
        "crates/cli/src/scrub.rs",
    ];
    const DOC: &str = "docs/ARCHITECTURE.md";
    let mut out = Vec::new();
    let doc_text = match std::fs::read_to_string(root.join(DOC)) {
        Ok(t) => t,
        Err(e) => {
            return vec![Violation {
                path: DOC.to_string(),
                line: 1,
                rule: RULE,
                message: format!("unreadable: {e}"),
            }]
        }
    };
    for file in files {
        if !EMITTERS.contains(&file.path.as_str()) {
            continue;
        }
        for (i, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for s in &line.strings {
                for name in extract_metric_names(s) {
                    if !doc_text.contains(&name) {
                        out.push(violation(
                            file,
                            i,
                            RULE,
                            format!("metric `{name}` is not documented in {DOC}"),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Maximal `hcl_[a-z0-9_]+` tokens inside one string literal.
fn extract_metric_names(s: &str) -> Vec<String> {
    let chars: Vec<char> = s.chars().collect();
    let metric_char = |c: char| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_';
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let at_start = i == 0 || !metric_char(chars[i - 1]);
        if at_start && chars[i..].starts_with(&['h', 'c', 'l', '_']) {
            let mut j = i;
            while j < chars.len() && metric_char(chars[j]) {
                j += 1;
            }
            let name: String = chars[i..j].iter().collect();
            let name = name.trim_end_matches('_');
            if name.len() > "hcl_".len() {
                out.push(name.to_string());
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: crate-gates
// ---------------------------------------------------------------------------

/// The unsafe-code lint gates each crate root must carry, pinned so a
/// future refactor cannot silently drop them:
/// `hcl-core`/`hcl-index` forbid unsafe outright; `hcl-store` and the
/// CLI (which confine unsafe to `backing.rs` and the `server.rs` signal
/// FFI) deny `unsafe_op_in_unsafe_fn`, and the CLI denies `unsafe_code`
/// crate-wide with one scoped allow on the signal module.
pub fn crate_gates(files: &[SourceFile]) -> Vec<Violation> {
    const RULE: &str = "crate-gates";
    const REQUIRED: &[(&str, &[&str])] = &[
        ("crates/core/src/lib.rs", &["#![forbid(unsafe_code)]"]),
        ("crates/index/src/lib.rs", &["#![forbid(unsafe_code)]"]),
        (
            "crates/store/src/lib.rs",
            &["#![deny(unsafe_op_in_unsafe_fn)]"],
        ),
        (
            "crates/cli/src/main.rs",
            &["#![deny(unsafe_code)]", "#![deny(unsafe_op_in_unsafe_fn)]"],
        ),
    ];
    let mut out = Vec::new();
    for (path, gates) in REQUIRED {
        let Some(file) = files.iter().find(|f| f.path == *path) else {
            out.push(Violation {
                path: path.to_string(),
                line: 1,
                rule: RULE,
                message: "file missing from the scan set".to_string(),
            });
            continue;
        };
        for gate in *gates {
            let present = file
                .lines
                .iter()
                .any(|l| l.code.replace(' ', "").contains(gate));
            if !present {
                out.push(Violation {
                    path: path.to_string(),
                    line: 1,
                    rule: RULE,
                    message: format!("missing crate-level lint gate `{gate}`"),
                });
            }
        }
    }
    out
}
