//! Per-rule allowlists: vetted exceptions with justifications.
//!
//! Each rule that supports exceptions reads `xtask/lints/<rule>.allow`.
//! The format is line-oriented and diff-friendly:
//!
//! ```text
//! # comment lines (justifications) and blank lines are ignored
//! <repo-relative-path> :: <substring of the offending line>
//! ```
//!
//! An entry suppresses a violation when the violation's file matches the
//! path **and** the raw source line contains the substring. Matching on
//! line *content* rather than line *numbers* keeps entries stable across
//! unrelated edits. Every entry must still match something: stale entries
//! are themselves reported as violations, so the exception count can only
//! go down without an explicit, reviewable allowlist edit.

use std::path::Path;

/// One allowlist entry.
pub struct Entry {
    /// Repo-relative path the exception applies to.
    pub path: String,
    /// Substring of the raw offending source line.
    pub needle: String,
    /// Line number inside the allow file (for stale-entry diagnostics).
    pub line: usize,
}

/// A loaded allowlist plus per-entry usage tracking.
pub struct Allowlist {
    /// Repo-relative path of the allow file (for diagnostics).
    pub file: String,
    /// Parsed entries in file order.
    pub entries: Vec<Entry>,
    used: Vec<bool>,
}

impl Allowlist {
    /// Loads `xtask/lints/<rule>.allow` under `root`; a missing file is
    /// an empty allowlist.
    pub fn load(root: &Path, rule: &str) -> Allowlist {
        let rel = format!("xtask/lints/{rule}.allow");
        let text = std::fs::read_to_string(root.join(&rel)).unwrap_or_default();
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some((path, needle)) = line.split_once(" :: ") {
                entries.push(Entry {
                    path: path.trim().to_string(),
                    needle: needle.to_string(),
                    line: i + 1,
                });
            } else {
                // A malformed entry can never match; report it as stale
                // rather than silently allowing nothing.
                entries.push(Entry {
                    path: String::new(),
                    needle: line.to_string(),
                    line: i + 1,
                });
            }
        }
        let used = vec![false; entries.len()];
        Allowlist {
            file: rel,
            entries,
            used,
        }
    }

    /// Is the violation at `path` with raw line text `raw` allowlisted?
    /// Marks the matching entry as used.
    pub fn permits(&mut self, path: &str, raw: &str) -> bool {
        for (i, e) in self.entries.iter().enumerate() {
            if e.path == path && !e.needle.is_empty() && raw.contains(&e.needle) {
                self.used[i] = true;
                return true;
            }
        }
        false
    }

    /// Entries that never matched a violation (stale or malformed), as
    /// `(allow-file line number, entry text)` pairs.
    pub fn unused(&self) -> Vec<(usize, String)> {
        self.entries
            .iter()
            .zip(&self.used)
            .filter(|(_, &used)| !used)
            .map(|(e, _)| {
                let text = if e.path.is_empty() {
                    format!("(malformed) {}", e.needle)
                } else {
                    format!("{} :: {}", e.path, e.needle)
                };
                (e.line, text)
            })
            .collect()
    }
}
