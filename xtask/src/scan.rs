//! Lexer-level scrubbing of Rust source: classify every byte as code,
//! comment, or string/char-literal content, keeping exact line structure.
//!
//! The rules never parse Rust properly (no `syn` — the workspace is
//! dependency-free by design); instead they scan the **scrubbed** code
//! text, in which comments and literal contents are blanked out. That is
//! enough to make token matches sound: `"unsafe"` inside a string or a
//! comment can never look like the `unsafe` keyword, and braces inside
//! literals can never derail the `#[cfg(test)]` region tracker.
//!
//! Handled syntax: line comments, nested block comments, string literals
//! (including `\"` escapes), raw strings `r#"…"#` with any hash depth,
//! byte strings/raw byte strings, char literals (escape-aware), and
//! lifetimes (`'a` is *not* a char literal). C-string literals (`c"…"`)
//! ride the same path as byte strings.

/// One scrubbed source line.
pub struct Line {
    /// The raw line, verbatim (no trailing newline).
    pub raw: String,
    /// The line with comments and string/char contents replaced by
    /// spaces. Quote characters themselves are also blanked, so the code
    /// text contains only genuine code tokens.
    pub code: String,
    /// Concatenated comment text on this line (without `//`, `/*`, `*/`).
    pub comment: String,
    /// Every string-literal fragment that appears (even partially) on
    /// this line. Multi-line strings contribute one fragment per line.
    pub strings: Vec<String>,
    /// Whether the line sits inside a `#[cfg(test)]`-gated region (the
    /// attribute line itself and the item's whole brace block).
    pub in_test: bool,
}

/// A scrubbed source file.
pub struct SourceFile {
    /// Path as reported in diagnostics (repo-relative).
    pub path: String,
    /// Scrubbed lines, 0-indexed (diagnostics add 1).
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Scrubs `text` (the full file contents) under diagnostic name
    /// `path`.
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let lines = scrub(text);
        let mut file = SourceFile {
            path: path.to_string(),
            lines,
        };
        mark_test_regions(&mut file.lines);
        file
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Block comments nest in Rust; the depth rides along.
    BlockComment(u32),
    Str,
    /// Raw string with `n` hashes: terminated by `"` + n `#`s.
    RawStr(u32),
    CharLit,
}

/// Splits `text` into scrubbed [`Line`]s (without test-region marking).
fn scrub(text: &str) -> Vec<Line> {
    let mut out: Vec<Line> = Vec::new();
    let mut state = State::Code;

    for raw_line in text.split('\n') {
        let chars: Vec<char> = raw_line.chars().collect();
        let mut code = String::with_capacity(chars.len());
        let mut comment = String::new();
        let mut strings: Vec<String> = Vec::new();
        let mut cur_string = String::new();
        let mut i = 0usize;

        // A line comment never survives a newline.
        if state == State::LineComment {
            state = State::Code;
        }

        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                State::Code => match c {
                    '/' if next == Some('/') => {
                        comment.push_str(&raw_line[byte_at(raw_line, i + 2)..]);
                        code.extend(std::iter::repeat(' ').take(chars.len() - i));
                        state = State::LineComment;
                        i = chars.len();
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        code.push_str("  ");
                        i += 2;
                    }
                    '"' => {
                        state = State::Str;
                        code.push(' ');
                        i += 1;
                    }
                    'r' | 'b' | 'c' if starts_raw_string(&chars[i..]) => {
                        // r"…", r#"…"#, br"…", brc combinations: skip the
                        // prefix letters and hashes, then enter RawStr.
                        let mut j = i;
                        while j < chars.len() && matches!(chars[j], 'r' | 'b' | 'c') {
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        debug_assert_eq!(chars.get(j), Some(&'"'));
                        code.extend(std::iter::repeat(' ').take(j + 1 - i));
                        i = j + 1;
                        state = State::RawStr(hashes);
                    }
                    'b' if next == Some('\'') => {
                        // Byte literal b'…': blank the prefix, handle the
                        // quote on the next loop turn as a char literal.
                        code.push(' ');
                        i += 1;
                    }
                    '\'' => {
                        if is_lifetime(&chars[i..]) {
                            code.push(c);
                            i += 1;
                        } else {
                            state = State::CharLit;
                            code.push(' ');
                            i += 1;
                        }
                    }
                    _ => {
                        code.push(c);
                        i += 1;
                    }
                },
                State::LineComment => unreachable!("reset at line start, set only with i=len"),
                State::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        code.push_str("  ");
                        i += 2;
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::BlockComment(depth - 1)
                        };
                    } else if c == '/' && next == Some('*') {
                        code.push_str("  ");
                        i += 2;
                        state = State::BlockComment(depth + 1);
                    } else {
                        comment.push(c);
                        code.push(' ');
                        i += 1;
                    }
                }
                State::Str => match c {
                    '\\' => {
                        cur_string.push(c);
                        if let Some(n) = next {
                            cur_string.push(n);
                        }
                        code.push_str(&"  "[..1 + next.is_some() as usize]);
                        i += 2;
                    }
                    '"' => {
                        strings.push(std::mem::take(&mut cur_string));
                        code.push(' ');
                        i += 1;
                        state = State::Code;
                    }
                    _ => {
                        cur_string.push(c);
                        code.push(' ');
                        i += 1;
                    }
                },
                State::RawStr(hashes) => {
                    if c == '"' && closes_raw(&chars[i + 1..], hashes) {
                        strings.push(std::mem::take(&mut cur_string));
                        code.extend(std::iter::repeat(' ').take(1 + hashes as usize));
                        i += 1 + hashes as usize;
                        state = State::Code;
                    } else {
                        cur_string.push(c);
                        code.push(' ');
                        i += 1;
                    }
                }
                State::CharLit => match c {
                    '\\' => {
                        code.push_str(&"  "[..1 + next.is_some() as usize]);
                        i += 2;
                    }
                    '\'' => {
                        code.push(' ');
                        i += 1;
                        state = State::Code;
                    }
                    _ => {
                        code.push(' ');
                        i += 1;
                    }
                },
            }
        }

        // A string still open at end-of-line contributes its fragment and
        // stays open into the next line. Char literals cannot span lines.
        if !cur_string.is_empty() {
            strings.push(cur_string);
        }
        if state == State::CharLit {
            state = State::Code;
        }

        out.push(Line {
            raw: raw_line.to_string(),
            code,
            comment,
            strings,
            in_test: false,
        });
    }
    out
}

/// Byte offset of character index `idx` in `s` (chars can be multi-byte).
fn byte_at(s: &str, idx: usize) -> usize {
    s.char_indices().nth(idx).map(|(b, _)| b).unwrap_or(s.len())
}

/// Does `chars` (starting at an `r`/`b`/`c`) begin a raw string literal
/// (`r"`, `r#"`, `br"`, …)? Plain `b"…"` / `c"…"` byte/C strings are left
/// to the ordinary string path via this returning true only when an `r`
/// is present — without one they scrub fine as `Str` after the prefix,
/// except the opening quote; so treat any letter-prefixed quote here.
fn starts_raw_string(chars: &[char]) -> bool {
    let mut j = 0usize;
    let mut saw_letter = false;
    while j < chars.len() && matches!(chars[j], 'r' | 'b' | 'c') {
        saw_letter = true;
        j += 1;
        if j > 3 {
            return false; // identifiers like `rrrr…` are not prefixes
        }
    }
    if !saw_letter {
        return false;
    }
    // `j` hashes (possibly zero), then a quote.
    let mut k = j;
    while chars.get(k) == Some(&'#') {
        k += 1;
    }
    // Only a *raw* opener may carry hashes; `b"…"`/`c"…"` (no hashes) are
    // also fine to treat as raw-with-0-hashes: no escapes exist in our
    // scrub that would differ materially for blanking purposes, except
    // `\"` — so require an `r` when there are no hashes, and fall back to
    // the escape-aware Str state for plain `b"`/`c"`.
    if chars.get(k) != Some(&'"') {
        return false;
    }
    if k > j {
        return true; // has hashes: definitely raw
    }
    chars[..j].contains(&'r')
}

/// After a `"` inside a raw string, do `hashes` `#`s follow?
fn closes_raw(rest: &[char], hashes: u32) -> bool {
    let h = hashes as usize;
    rest.len() >= h && rest[..h].iter().all(|&c| c == '#')
}

/// Is `chars[0] == '\''` a lifetime rather than a char literal?
/// Heuristic: `'ident` not followed by a closing quote (`'a'` is a char).
fn is_lifetime(chars: &[char]) -> bool {
    debug_assert_eq!(chars[0], '\'');
    let mut j = 1;
    while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
        j += 1;
    }
    j > 1 && chars.get(j) != Some(&'\'')
}

/// Marks every line belonging to a `#[cfg(test)]`-gated item (or any
/// `cfg` attribute mentioning `test`, e.g. `#[cfg(all(test, unix))]`),
/// including nested items, as `in_test`. Tracking is brace-based over the
/// scrubbed code, so braces in strings/comments cannot derail it.
fn mark_test_regions(lines: &mut [Line]) {
    let mut i = 0usize;
    while i < lines.len() {
        if attribute_gates_test(&lines[i].code) {
            // Mark from the attribute through the end of the item's brace
            // block (first `{` at or after the attribute, to its match).
            let start = i;
            let mut depth = 0i64;
            let mut seen_open = false;
            let mut j = i;
            'outer: while j < lines.len() {
                for c in lines[j].code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            seen_open = true;
                        }
                        '}' => depth -= 1,
                        // An attribute gating a brace-less item (`use`,
                        // `fn f();`) ends at the first `;` at depth 0.
                        ';' if !seen_open && depth == 0 => {
                            break 'outer;
                        }
                        _ => {}
                    }
                }
                if seen_open && depth <= 0 {
                    break;
                }
                j += 1;
            }
            let end = j.min(lines.len() - 1);
            for line in &mut lines[start..=end] {
                line.in_test = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
}

/// Does this scrubbed code line carry a `#[cfg(…test…)]` /
/// `#[cfg_attr(test, …)]` attribute?
fn attribute_gates_test(code: &str) -> bool {
    let trimmed = code.trim_start();
    if !trimmed.starts_with("#[") {
        return false;
    }
    (trimmed.contains("cfg(") || trimmed.contains("cfg_attr(")) && has_word(trimmed, "test")
}

/// Whole-word containment test over a scrubbed code string.
pub fn has_word(code: &str, word: &str) -> bool {
    find_words(code, word).next().is_some()
}

/// Iterator over the char-column of every whole-word occurrence of
/// `word` in `code`.
pub fn find_words<'a>(code: &'a str, word: &'a str) -> impl Iterator<Item = usize> + 'a {
    let chars: Vec<char> = code.chars().collect();
    let target: Vec<char> = word.chars().collect();
    let mut positions = Vec::new();
    let n = chars.len();
    let m = target.len();
    if m > 0 && n >= m {
        for start in 0..=(n - m) {
            if chars[start..start + m] != target[..] {
                continue;
            }
            let before_ok = start == 0 || !is_word_char(chars[start - 1]);
            let after_ok = start + m == n || !is_word_char(chars[start + m]);
            if before_ok && after_ok {
                positions.push(start);
            }
        }
    }
    positions.into_iter()
}

/// Identifier-forming character (close enough for lint purposes).
pub fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Splits a scrubbed code line into lint tokens: identifiers/numbers and
/// multi-char operators (`->`, `=>`, `::`, `..`, `+=`, `-=`, `&&`, `||`,
/// shifts and comparisons), everything else as single chars. Whitespace
/// is dropped. Returns `(column, token)` pairs.
pub fn tokens(code: &str) -> Vec<(usize, String)> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if is_word_char(c) {
            let start = i;
            while i < chars.len() && is_word_char(chars[i]) {
                i += 1;
            }
            out.push((start, chars[start..i].iter().collect()));
            continue;
        }
        let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
        const TWO_CHAR: &[&str] = &[
            "->", "=>", "::", "..", "+=", "-=", "*=", "/=", "&&", "||", "==", "!=", "<=", ">=",
            "<<", ">>",
        ];
        if TWO_CHAR.contains(&two.as_str()) {
            out.push((i, two));
            i += 2;
            continue;
        }
        out.push((i, c.to_string()));
        i += 1;
    }
    out
}
