//! Workspace automation for the highway-cover labelling repo.
//!
//! The only task so far is `lint`: a dependency-free, workspace-specific
//! static-analysis pass (see [`rules`]) run as `cargo xtask lint`. It is
//! deliberately a lexer-level scanner, not a `syn` AST walk — the
//! workspace has zero external dependencies and the lint layer keeps
//! that discipline. [`scan`] strips comments/strings and marks
//! `#[cfg(test)]` regions so the rules can match keywords soundly.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod allowlist;
pub mod rules;
pub mod scan;

use allowlist::Allowlist;
use rules::Violation;
use scan::SourceFile;
use std::path::Path;

/// Directories scanned for Rust sources, relative to the repo root.
/// `target/` never appears because the walk starts inside `src`-bearing
/// trees only.
const SCAN_ROOTS: &[&str] = &["crates", "xtask/src"];

/// Collects every `.rs` file under the scan roots, sorted by path so
/// diagnostics are deterministic.
pub fn scan_tree(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    for sub in SCAN_ROOTS {
        collect_rs(&root.join(sub), &mut paths)?;
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(SourceFile::parse(&rel, &text));
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "target" && !name.starts_with('.') {
                collect_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the lint pass over the tree at `root`. `only` restricts to a
/// single rule by name (for focused runs while fixing one class).
pub fn run_lint(root: &Path, only: Option<&str>) -> std::io::Result<Vec<Violation>> {
    let files = scan_tree(root)?;
    let mut out = Vec::new();
    let mut run = |name: &str, f: &mut dyn FnMut(&[SourceFile]) -> Vec<Violation>| {
        if only.map_or(true, |o| o == name) {
            out.extend(f(&files));
        }
    };
    run("safety-comment", &mut |files| {
        rules::safety_comment(files, &mut Allowlist::load(root, "safety_comment"))
    });
    run("no-panics", &mut |files| {
        rules::no_panics(files, &mut Allowlist::load(root, "no_panics"))
    });
    run("dist-arith", &mut |files| {
        rules::dist_arith(files, &mut Allowlist::load(root, "dist_arith"))
    });
    run("no-print", &mut |files| {
        rules::no_print(files, &mut Allowlist::load(root, "no_print"))
    });
    run("store-format", &mut |files| {
        rules::store_format(root, files)
    });
    run("metrics-docs", &mut |files| {
        rules::metrics_docs(root, files)
    });
    run("crate-gates", &mut |files| rules::crate_gates(files));
    out.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(out)
}

/// The rule names accepted by `--rule`.
pub const RULE_NAMES: &[&str] = &[
    "safety-comment",
    "no-panics",
    "dist-arith",
    "no-print",
    "store-format",
    "metrics-docs",
    "crate-gates",
];
