//! Micro-benchmark for the storage layer: index build, serialise, save,
//! cold mmap load, and query latency *through the mapped file* on a
//! 10k-vertex Barabási–Albert (power-law) graph — the hub-dominated family
//! the paper's scheme targets. Results land in `BENCH_pr2.json` at the
//! repo root. Plain `std::time` harness (the container has no registry
//! access, so no criterion).

use hcl_core::{bfs, testkit, VertexId};
use hcl_index::{HighwayCoverIndex, IndexConfig, QueryContext};
use hcl_store::IndexStore;
use std::time::Instant;

const NUM_VERTICES: usize = 10_000;
const ATTACH_EDGES: usize = 5;
const SEED: u64 = 2025;
const NUM_QUERIES: usize = 20_000;
const BUILD_REPS: usize = 3;
const LOAD_REPS: usize = 5;

fn percentile(sorted_ns: &[u128], p: f64) -> u128 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx]
}

fn main() {
    let g = testkit::barabasi_albert(NUM_VERTICES, ATTACH_EDGES, SEED);
    eprintln!(
        "bench graph: barabasi_albert({NUM_VERTICES}, {ATTACH_EDGES}) — {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // Index build: best of BUILD_REPS.
    let mut build_ns = Vec::new();
    let mut index = None;
    for _ in 0..BUILD_REPS {
        let t = Instant::now();
        let idx = HighwayCoverIndex::build(&g, IndexConfig::default());
        build_ns.push(t.elapsed().as_nanos());
        index = Some(idx);
    }
    let index = index.expect("BUILD_REPS > 0");
    let stats = index.stats();
    let best_build_ns = *build_ns.iter().min().expect("non-empty");
    eprintln!(
        "build: best of {BUILD_REPS} = {:.2} ms ({} label entries, avg {:.2}/vertex)",
        best_build_ns as f64 / 1e6,
        stats.total_label_entries,
        stats.avg_label_size
    );

    // Serialise (in memory) and save (to disk).
    let t = Instant::now();
    let bytes = hcl_store::serialize(&g, &index).expect("serialize");
    let serialize_ns = t.elapsed().as_nanos();
    let mut path = std::env::temp_dir();
    path.push(format!("hcl_bench_pr2_{}.hcl", std::process::id()));
    let t = Instant::now();
    std::fs::write(&path, &bytes).expect("write bench index file");
    let save_ns = t.elapsed().as_nanos();
    let file_bytes = bytes.len();
    eprintln!(
        "serialize: {:.2} ms ({} bytes, {:.1} KiB); save: {:.2} ms",
        serialize_ns as f64 / 1e6,
        file_bytes,
        file_bytes as f64 / 1024.0,
        save_ns as f64 / 1e6
    );

    // Cold load: open + validate (mmap where supported), best of LOAD_REPS.
    let mut load_ns = Vec::new();
    let mut store = None;
    for _ in 0..LOAD_REPS {
        drop(store.take()); // unmap before remapping
        let t = Instant::now();
        store = Some(IndexStore::open(&path).expect("open bench index file"));
        load_ns.push(t.elapsed().as_nanos());
    }
    let store = store.expect("LOAD_REPS > 0");
    let best_load_ns = *load_ns.iter().min().expect("non-empty");
    eprintln!(
        "load: best of {LOAD_REPS} = {:.2} ms ({} backing) — vs {:.2} ms rebuild",
        best_load_ns as f64 / 1e6,
        store.backing_kind(),
        best_build_ns as f64 / 1e6
    );

    // Query latency straight off the mapped file (the cold-load-then-query
    // serving path), per-query timed for percentiles.
    let mut rng = testkit::SplitMix64::new(SEED ^ 0x5eed);
    let pairs: Vec<(VertexId, VertexId)> = (0..NUM_QUERIES)
        .map(|_| {
            (
                rng.next_below(NUM_VERTICES as u64) as VertexId,
                rng.next_below(NUM_VERTICES as u64) as VertexId,
            )
        })
        .collect();

    let (gv, iv) = (store.graph(), store.index());
    let mut ctx = QueryContext::new();
    let mut checksum = 0u64;
    // Warm-up pass (first queries grow the context buffers + fault pages).
    for &(u, v) in pairs.iter().take(100) {
        if let Some(d) = iv.query_with(gv, &mut ctx, u, v) {
            checksum = checksum.wrapping_add(d as u64);
        }
    }

    let mut per_query_ns: Vec<u128> = Vec::with_capacity(pairs.len());
    let t_all = Instant::now();
    for &(u, v) in &pairs {
        let t = Instant::now();
        let d = iv.query_with(gv, &mut ctx, u, v);
        per_query_ns.push(t.elapsed().as_nanos());
        if let Some(d) = d {
            checksum = checksum.wrapping_add(d as u64);
        }
    }
    let total_query_ns = t_all.elapsed().as_nanos();
    per_query_ns.sort_unstable();
    let (p50, p99) = (
        percentile(&per_query_ns, 0.50),
        percentile(&per_query_ns, 0.99),
    );
    let mean = total_query_ns as f64 / pairs.len() as f64;
    eprintln!(
        "query (mmap): {} queries, mean {:.0} ns, p50 {} ns, p99 {} ns (checksum {})",
        pairs.len(),
        mean,
        p50,
        p99,
        checksum
    );

    // Reference: the same queries against the in-memory index.
    let mut inmem_checksum = 0u64;
    let t_inmem = Instant::now();
    for &(u, v) in &pairs {
        if let Some(d) = index.query_with(&g, &mut ctx, u, v) {
            inmem_checksum = inmem_checksum.wrapping_add(d as u64);
        }
    }
    let inmem_mean = t_inmem.elapsed().as_nanos() as f64 / pairs.len() as f64;
    eprintln!("query (owned): mean {inmem_mean:.0} ns (checksum {inmem_checksum})");

    // Sanity: mapped answers equal owned answers equal the oracle sample.
    let (u0, v0) = pairs[0];
    assert_eq!(
        iv.query_with(gv, &mut ctx, u0, v0),
        bfs::distance(&g, u0, v0)
    );
    let owned_sample: u64 = pairs
        .iter()
        .take(500)
        .filter_map(|&(u, v)| index.query_with(&g, &mut ctx, u, v))
        .map(u64::from)
        .sum();
    let mapped_sample: u64 = pairs
        .iter()
        .take(500)
        .filter_map(|&(u, v)| iv.query_with(gv, &mut ctx, u, v))
        .map(u64::from)
        .sum();
    assert_eq!(
        owned_sample, mapped_sample,
        "mapped index diverged from owned"
    );

    let json = format!(
        "{{\n  \"bench\": \"pr2_store_roundtrip\",\n  \"graph\": {{\"family\": \"barabasi_albert\", \
         \"vertices\": {}, \"edges\": {}, \"attach_edges\": {ATTACH_EDGES}, \"seed\": {SEED}}},\n  \
         \"index\": {{\"landmarks\": {}, \"label_entries\": {}, \"avg_label_size\": {:.3}, \
         \"bytes\": {}}},\n  \"build\": {{\"reps\": {BUILD_REPS}, \"best_ns\": {best_build_ns}}},\n  \
         \"store\": {{\"file_bytes\": {file_bytes}, \"serialize_ns\": {serialize_ns}, \
         \"save_ns\": {save_ns}, \"load_reps\": {LOAD_REPS}, \"load_best_ns\": {best_load_ns}, \
         \"backing\": \"{}\"}},\n  \
         \"query_mmap\": {{\"count\": {}, \"mean_ns\": {:.1}, \"p50_ns\": {p50}, \
         \"p99_ns\": {p99}, \"checksum\": {checksum}}},\n  \
         \"query_owned\": {{\"mean_ns\": {:.1}}}\n}}\n",
        g.num_vertices(),
        g.num_edges(),
        stats.num_landmarks,
        stats.total_label_entries,
        stats.avg_label_size,
        stats.bytes,
        store.backing_kind(),
        pairs.len(),
        mean,
        inmem_mean,
    );

    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr2.json");
    std::fs::write(out_path, &json).expect("writing BENCH_pr2.json");
    eprintln!("wrote {out_path}");

    drop(store);
    std::fs::remove_file(&path).ok();
    let _ = std::hint::black_box(checksum);
}
