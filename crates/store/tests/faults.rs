//! Torn-write / power-cut simulation over the durable publish sequence.
//!
//! Every fault schedule — an injected hard failure or a simulated power
//! cut at each [`PublishStep`], plus torn writes that cut the payload at
//! arbitrary byte positions — is replayed through the [`StoreIo`]
//! injection layer, and the survivor file is reopened. The property under
//! test is the crash-safety trichotomy: [`IndexStore::open`] on the
//! target path always yields the **old complete container**, the **new
//! complete container**, or a **typed error** — never accepted garbage.
//!
//! Set `HCL_FAULT_SWEEP=full` (the fault-injection CI job does) to
//! densify the torn-write cut positions from a handful of landmarks to a
//! sweep across the whole payload.

use hcl_core::testkit;
use hcl_index::{HighwayCoverIndex, IndexConfig};
use hcl_store::durable::{
    publish_with, IoDecision, PublishOutcome, PublishStep, StoreIo, SystemIo,
};
use hcl_store::{IndexStore, StoreError};
use std::path::{Path, PathBuf};

/// Serialised container with `k` landmarks over the shared sample graph;
/// distinct `k` values make the old/new survivors distinguishable both
/// byte-wise and through [`IndexStore::meta`].
fn container(k: usize) -> Vec<u8> {
    let g = testkit::barabasi_albert(80, 3, 4);
    let idx = HighwayCoverIndex::build(&g, IndexConfig { num_landmarks: k });
    hcl_store::serialize(&g, &idx).expect("serialize")
}

/// Fresh scratch directory for one test, cleaned up by `Scratch::drop`.
struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Self {
        let mut dir = std::env::temp_dir();
        dir.push(format!("hcl_faults_{}_{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Self { dir }
    }

    fn target(&self) -> PathBuf {
        self.dir.join("live.hcl")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// Injects one decision at one step; every other step proceeds.
struct FaultAt {
    step: PublishStep,
    decision: IoDecision,
}

impl StoreIo for FaultAt {
    fn decide(&self, step: PublishStep) -> IoDecision {
        if step == self.step {
            self.decision
        } else {
            IoDecision::Proceed
        }
    }
}

/// `<target>.tmp.*` siblings currently on disk.
fn temps(target: &Path) -> Vec<PathBuf> {
    let name = target.file_name().unwrap().to_str().unwrap();
    let prefix = format!("{name}.tmp.");
    std::fs::read_dir(target.parent().unwrap())
        .expect("read scratch dir")
        .flatten()
        .filter(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.starts_with(&prefix))
        })
        .map(|e| e.path())
        .collect()
}

/// Asserts the crash-safety trichotomy for the target path: its bytes are
/// exactly `old`, exactly `new`, or opening it yields a typed error (the
/// path for schedules that never published a complete container).
fn assert_trichotomy(target: &Path, old: &[u8], new: &[u8], schedule: &str) {
    let on_disk = std::fs::read(target).expect("target must exist once seeded");
    if on_disk == old || on_disk == new {
        let store = IndexStore::open(target)
            .unwrap_or_else(|e| panic!("{schedule}: complete survivor failed to open: {e}"));
        let k = store.meta().num_landmarks as usize;
        let expect = if on_disk == old { 4 } else { 8 };
        assert_eq!(k, expect, "{schedule}: survivor identity vs its landmarks");
    } else {
        let err = IndexStore::open(target)
            .err()
            .unwrap_or_else(|| panic!("{schedule}: torn survivor opened without error"));
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. }
                    | StoreError::ChecksumMismatch { .. }
                    | StoreError::BadMagic { .. }
                    | StoreError::Corrupt { .. }
            ),
            "{schedule}: torn survivor must be a typed container error, got {err:?}"
        );
    }
}

/// The full schedule sweep: every step × {fail, crash-before, crash-after},
/// then recovery — a clean publish over the survivor must commit, sweep
/// stale temps, and open as the new container.
#[test]
fn every_fault_schedule_leaves_old_new_or_typed_error() {
    let old = container(4);
    let new = container(8);

    for step in PublishStep::ALL {
        for decision in [
            IoDecision::Fail,
            IoDecision::CrashBefore,
            IoDecision::CrashAfter,
        ] {
            let schedule = format!("{decision:?}@{}", step.name());
            let scratch = Scratch::new(&format!("sweep_{}_{decision:?}", step.name()));
            let target = scratch.target();
            assert!(matches!(
                publish_with(&target, &old, &SystemIo),
                Ok(PublishOutcome::Committed)
            ));

            let io = FaultAt { step, decision };
            match publish_with(&target, &new, &io) {
                Err(StoreError::Publish {
                    step: failed,
                    source,
                }) => {
                    assert_eq!(decision, IoDecision::Fail, "{schedule}: unexpected error");
                    assert_eq!(failed, step.name(), "{schedule}: error names wrong step");
                    assert!(
                        source.to_string().contains("injected fault"),
                        "{schedule}: source must be the injected error, got {source}"
                    );
                    // A failed publish cleans its own temp immediately.
                    assert_eq!(temps(&target), Vec::<PathBuf>::new(), "{schedule}");
                }
                Err(other) => panic!("{schedule}: unexpected error kind {other:?}"),
                Ok(PublishOutcome::Crashed(at)) => {
                    assert_ne!(decision, IoDecision::Fail, "{schedule}: fail must error");
                    assert_eq!(at, step, "{schedule}: crash reported at wrong step");
                }
                Ok(PublishOutcome::Committed) => {
                    // Only a fault injected *after* the last real operation
                    // could commit; with this schedule set, never.
                    panic!("{schedule}: publish committed despite injected fault");
                }
            }

            assert_trichotomy(&target, &old, &new, &schedule);

            // Power-cut schedules may strand a temp; the next save to the
            // path must sweep it and publish cleanly.
            assert!(matches!(
                publish_with(&target, &new, &SystemIo),
                Ok(PublishOutcome::Committed)
            ));
            assert_eq!(
                temps(&target),
                Vec::<PathBuf>::new(),
                "{schedule}: recovery save must sweep stale temps"
            );
            assert_eq!(
                std::fs::read(&target).unwrap(),
                new,
                "{schedule}: recovery save must publish the new container"
            );
        }
    }
}

/// Torn writes: the power cut lands mid-`write-temp`, so only a prefix of
/// the payload reaches the temp file. The target must keep serving the old
/// container byte-identically, and the stranded torn temp — were anyone to
/// open it directly — must be a typed error, not accepted garbage.
#[test]
fn torn_write_prefixes_never_reach_the_target() {
    let old = container(4);
    let new = container(8);
    let full_sweep = std::env::var("HCL_FAULT_SWEEP").as_deref() == Ok("full");
    let cuts: Vec<usize> = if full_sweep {
        // Dense through the header/section table, stride through payload.
        let mut cuts: Vec<usize> = (0..new.len().min(300)).step_by(7).collect();
        cuts.extend((300..new.len()).step_by(499));
        cuts
    } else {
        vec![0, 1, 8, 24, new.len() / 2, new.len() - 1]
    };

    let scratch = Scratch::new("torn");
    let target = scratch.target();
    for cut in cuts {
        assert!(matches!(
            publish_with(&target, &old, &SystemIo),
            Ok(PublishOutcome::Committed)
        ));
        let io = FaultAt {
            step: PublishStep::WriteTemp,
            decision: IoDecision::CrashDuring(cut),
        };
        assert_eq!(
            publish_with(&target, &new, &io).unwrap(),
            PublishOutcome::Crashed(PublishStep::WriteTemp),
            "cut at {cut}"
        );
        // The target never saw the torn bytes.
        assert_eq!(std::fs::read(&target).unwrap(), old, "cut at {cut}");
        assert_trichotomy(&target, &old, &new, &format!("torn@{cut}"));

        // The stranded temp holds exactly the prefix; opening it directly
        // is the would-be disaster of a non-atomic writer, and it must be
        // a typed error (`cut == new.len()` never happens: strict prefix).
        let stranded = temps(&target);
        assert_eq!(stranded.len(), 1, "cut at {cut}: exactly one torn temp");
        let torn = std::fs::read(&stranded[0]).unwrap();
        assert_eq!(&torn, &new[..cut], "cut at {cut}: temp holds the prefix");
        assert!(
            IndexStore::open(&stranded[0]).is_err(),
            "cut at {cut}: torn prefix must not open"
        );

        // Recovery sweeps the stranded temp.
        assert!(matches!(
            publish_with(&target, &new, &SystemIo),
            Ok(PublishOutcome::Committed)
        ));
        assert_eq!(temps(&target), Vec::<PathBuf>::new(), "cut at {cut}");
    }
}

/// The old `write_atomically` used `.tmp.<pid>` alone, so two same-process
/// saves to one path shared a temp file and could tear each other. The
/// pid+counter names make concurrent same-path saves independent: every
/// save succeeds, the survivor is one of the published containers in full,
/// and no temp survives.
#[test]
fn concurrent_same_path_saves_never_collide() {
    let scratch = Scratch::new("concurrent");
    let target = scratch.target();
    let payloads: Vec<Vec<u8>> = vec![container(4), container(6), container(8)];

    std::thread::scope(|scope| {
        for payload in &payloads {
            let target = target.clone();
            scope.spawn(move || {
                for _ in 0..8 {
                    let outcome = publish_with(&target, payload, &SystemIo)
                        .expect("concurrent publish must succeed");
                    assert_eq!(outcome, PublishOutcome::Committed);
                }
            });
        }
    });

    let survivor = std::fs::read(&target).expect("target exists");
    assert!(
        payloads.contains(&survivor),
        "survivor must be one complete published container"
    );
    IndexStore::open(&target).expect("survivor opens");
    // Every guard has dropped, so one more save sweeps anything left.
    publish_with(&target, &payloads[0], &SystemIo).unwrap();
    assert_eq!(temps(&target), Vec::<PathBuf>::new());
}

/// Stale `.tmp.*` siblings from a crashed save (simulated here by planting
/// them directly, including a foreign-pid name) are swept by the next save
/// to that path — and only siblings of *that* path are touched.
#[test]
fn next_save_sweeps_stale_temps_from_crashed_saves() {
    let scratch = Scratch::new("stale");
    let target = scratch.target();
    let stale_same_pid = PathBuf::from(format!(
        "{}.tmp.{}.424242",
        target.display(),
        std::process::id()
    ));
    let stale_foreign = PathBuf::from(format!("{}.tmp.1.0", target.display()));
    let unrelated = scratch.dir.join("other.hcl.tmp.1.0");
    for p in [&stale_same_pid, &stale_foreign, &unrelated] {
        std::fs::write(p, b"leftover").unwrap();
    }

    publish_with(&target, &container(4), &SystemIo).unwrap();
    assert!(!stale_same_pid.exists(), "same-pid stale temp swept");
    assert!(!stale_foreign.exists(), "foreign-pid stale temp swept");
    assert!(
        unrelated.exists(),
        "other files' temps are not ours to sweep"
    );
    IndexStore::open(&target).expect("publish over stale temps still lands");
}

/// A failed fsync is reported as a typed error naming the exact step, and
/// the target is untouched (for `sync-dir`, the rename has already
/// happened, so the new container is in place — also asserted).
#[test]
fn failed_fsyncs_name_their_step() {
    let old = container(4);
    let new = container(8);

    let scratch = Scratch::new("fsync_temp");
    let target = scratch.target();
    publish_with(&target, &old, &SystemIo).unwrap();
    let err = publish_with(
        &target,
        &new,
        &FaultAt {
            step: PublishStep::SyncTemp,
            decision: IoDecision::Fail,
        },
    )
    .unwrap_err();
    assert!(
        err.to_string().contains("sync-temp"),
        "display must name the step: {err}"
    );
    assert_eq!(std::fs::read(&target).unwrap(), old, "target untouched");

    // sync-dir fails *after* the atomic publish point: the caller gets a
    // typed error (durability of the rename is not guaranteed) but the
    // target already holds the complete new container.
    let err = publish_with(
        &target,
        &new,
        &FaultAt {
            step: PublishStep::SyncDir,
            decision: IoDecision::Fail,
        },
    )
    .unwrap_err();
    assert!(matches!(
        err,
        StoreError::Publish {
            step: "sync-dir",
            ..
        }
    ));
    assert_eq!(
        std::fs::read(&target).unwrap(),
        new,
        "rename already landed"
    );
}

/// `save` / `save_with` ride the same durable publish: a plain save leaves
/// no temp siblings behind and the result round-trips.
#[test]
fn save_is_durable_and_leaves_no_temps() {
    let scratch = Scratch::new("save");
    let target = scratch.target();
    let g = testkit::barabasi_albert(60, 3, 9);
    let idx = HighwayCoverIndex::build(&g, IndexConfig { num_landmarks: 5 });
    hcl_store::save(&target, &g, &idx).expect("save");
    assert_eq!(temps(&target), Vec::<PathBuf>::new());
    let store = IndexStore::open(&target).expect("open");
    assert_eq!(store.meta().num_landmarks, 5);
    store
        .verify_checksum()
        .expect("freshly saved file verifies");
}
