//! Corruption handling: every malformed container must produce a typed
//! [`StoreError`] — never a panic, never undefined behaviour.

use hcl_core::{testkit, CsrError};
use hcl_index::{HighwayCoverIndex, IndexConfig};
use hcl_store::{IndexStore, StoreError, HEADER_LEN};

fn sample_bytes() -> Vec<u8> {
    let g = testkit::barabasi_albert(80, 3, 4);
    let idx = HighwayCoverIndex::build(&g, IndexConfig { num_landmarks: 6 });
    hcl_store::serialize(&g, &idx).expect("serialize")
}

#[test]
fn pristine_sample_loads() {
    assert!(IndexStore::from_bytes(&sample_bytes()).is_ok());
}

#[test]
fn truncation_at_any_length_is_a_typed_error() {
    let bytes = sample_bytes();
    // Every strict prefix must fail cleanly. Step through densely at the
    // start (header/table) and more coarsely through the payload.
    let mut cut = 0usize;
    while cut < bytes.len() {
        let err = IndexStore::from_bytes(&bytes[..cut])
            .err()
            .unwrap_or_else(|| panic!("prefix of {cut} bytes unexpectedly loaded"));
        assert!(
            matches!(err, StoreError::Truncated { .. }),
            "prefix of {cut} bytes: expected Truncated, got {err:?}"
        );
        cut += if cut < 300 { 7 } else { 997 };
    }
}

#[test]
fn bad_magic_is_detected() {
    let mut bytes = sample_bytes();
    bytes[0] ^= 0xFF;
    assert!(matches!(
        IndexStore::from_bytes(&bytes).unwrap_err(),
        StoreError::BadMagic { .. }
    ));
    // A file that is not a container at all.
    assert!(matches!(
        IndexStore::from_bytes(b"#!/bin/sh\necho not an index file, sorry\n" as &[u8]).unwrap_err(),
        StoreError::BadMagic { .. }
    ));
}

#[test]
fn wrong_version_is_detected() {
    let mut bytes = sample_bytes();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        IndexStore::from_bytes(&bytes).unwrap_err(),
        StoreError::UnsupportedVersion { found: 99, .. }
    ));
}

#[test]
fn bit_flips_anywhere_in_the_payload_fail_the_checksum() {
    let clean = sample_bytes();
    for at in [64usize, 100, 256, clean.len() / 2, clean.len() - 1] {
        let mut bytes = clean.clone();
        bytes[at] ^= 0x04;
        assert!(
            matches!(
                IndexStore::from_bytes(&bytes).unwrap_err(),
                StoreError::ChecksumMismatch { .. }
            ),
            "flip at byte {at} was not caught"
        );
    }
}

#[test]
fn trailing_garbage_is_detected() {
    let mut bytes = sample_bytes();
    bytes.extend_from_slice(b"padding");
    assert!(matches!(
        IndexStore::from_bytes(&bytes).unwrap_err(),
        StoreError::Corrupt { .. }
    ));
}

#[test]
fn checksum_fixed_but_sections_broken_is_corrupt() {
    // Tampering that *also* repairs the checksum must still be rejected by
    // the structural validators.
    let clean = sample_bytes();

    // Misalign a section offset.
    let mut bytes = clean.clone();
    let entry = HEADER_LEN + 8; // first section's offset field
    let off = u64::from_le_bytes(bytes[entry..entry + 8].try_into().unwrap());
    bytes[entry..entry + 8].copy_from_slice(&(off + 4).to_le_bytes());
    hcl_store::rewrite_checksum(&mut bytes);
    assert!(matches!(
        IndexStore::from_bytes(&bytes).unwrap_err(),
        StoreError::Corrupt { .. }
    ));

    // Point a section past the end of the file.
    let mut bytes = clean.clone();
    bytes[entry..entry + 8].copy_from_slice(&(1u64 << 40).to_le_bytes());
    hcl_store::rewrite_checksum(&mut bytes);
    assert!(matches!(
        IndexStore::from_bytes(&bytes).unwrap_err(),
        StoreError::Corrupt { .. }
    ));

    // Duplicate section kind.
    let mut bytes = clean.clone();
    bytes[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&2u32.to_le_bytes()); // kind 1 -> 2
    hcl_store::rewrite_checksum(&mut bytes);
    assert!(matches!(
        IndexStore::from_bytes(&bytes).unwrap_err(),
        StoreError::Corrupt { .. }
    ));

    // Nonsense section count.
    let mut bytes = clean.clone();
    bytes[12..16].copy_from_slice(&3u32.to_le_bytes());
    hcl_store::rewrite_checksum(&mut bytes);
    assert!(matches!(
        IndexStore::from_bytes(&bytes).unwrap_err(),
        StoreError::Corrupt { .. }
    ));

    // Lie about the vertex count in the metadata.
    let mut bytes = clean.clone();
    bytes[32..40].copy_from_slice(&123456u64.to_le_bytes());
    hcl_store::rewrite_checksum(&mut bytes);
    assert!(matches!(
        IndexStore::from_bytes(&bytes).unwrap_err(),
        StoreError::Corrupt { .. }
    ));
}

#[test]
fn semantically_invalid_graph_arrays_are_rejected() {
    // Build a container whose bytes are internally consistent (checksum
    // repaired) but whose neighbour array violates CSR invariants.
    let g = testkit::path(6);
    let idx = HighwayCoverIndex::build(&g, IndexConfig { num_landmarks: 2 });
    let clean = hcl_store::serialize(&g, &idx).expect("serialize");
    let store = IndexStore::from_bytes(&clean).expect("clean loads");
    let neighbors = store
        .sections()
        .into_iter()
        .find(|s| s.name == "graph_neighbors")
        .expect("section present");
    drop(store);

    // Out-of-range neighbour id.
    let mut bytes = clean.clone();
    let at = neighbors.offset as usize;
    bytes[at..at + 4].copy_from_slice(&777u32.to_le_bytes());
    hcl_store::rewrite_checksum(&mut bytes);
    assert!(matches!(
        IndexStore::from_bytes(&bytes).unwrap_err(),
        StoreError::InvalidGraph(CsrError::NeighborOutOfRange { .. })
    ));

    // Break symmetry: rewrite vertex 0's single neighbour (1 -> 5).
    let mut bytes = clean.clone();
    bytes[at..at + 4].copy_from_slice(&5u32.to_le_bytes());
    hcl_store::rewrite_checksum(&mut bytes);
    assert!(matches!(
        IndexStore::from_bytes(&bytes).unwrap_err(),
        StoreError::InvalidGraph(_)
    ));
}

#[test]
fn semantically_invalid_index_arrays_are_rejected() {
    let g = testkit::star(8);
    let idx = HighwayCoverIndex::build(&g, IndexConfig { num_landmarks: 3 });
    let clean = hcl_store::serialize(&g, &idx).expect("serialize");
    let store = IndexStore::from_bytes(&clean).expect("clean loads");
    let entries = store
        .sections()
        .into_iter()
        .find(|s| s.name == "label_entries")
        .expect("section present");
    drop(store);

    let mut bytes = clean.clone();
    // Entries are packed u64s with the hub in the high 32 bits; a hub
    // rank >= k in the first entry must be caught by semantic validation.
    let at = entries.offset as usize + 4;
    bytes[at..at + 4].copy_from_slice(&250u32.to_le_bytes());
    hcl_store::rewrite_checksum(&mut bytes);
    assert!(matches!(
        IndexStore::from_bytes(&bytes).unwrap_err(),
        StoreError::InvalidIndex(_)
    ));
}

/// The trusted path skips only the CRC pass. Payload bit rot that stays
/// structurally plausible therefore gets through (the documented trade —
/// wrong answers, never panics or UB), while every structural and
/// semantic violation is still rejected with the same typed errors.
#[test]
fn trusted_mode_skips_exactly_the_checksum() {
    let clean = sample_bytes();
    assert!(IndexStore::from_bytes_trusted(&clean).is_ok());

    // Flip a bit inside a label *distance* (low half of a packed entry):
    // structurally valid, so the validated path must catch it via the CRC
    // and the trusted path — by design — must not.
    let store = IndexStore::from_bytes(&clean).expect("clean loads");
    let entries = store
        .sections()
        .into_iter()
        .find(|s| s.name == "label_entries")
        .expect("section present");
    drop(store);
    let mut bytes = clean.clone();
    bytes[entries.offset as usize] ^= 0x01;
    assert!(matches!(
        IndexStore::from_bytes(&bytes).unwrap_err(),
        StoreError::ChecksumMismatch { .. }
    ));
    assert!(
        IndexStore::from_bytes_trusted(&bytes).is_ok(),
        "trusted mode must not pay for the CRC pass"
    );

    // Everything cheaper than the CRC still runs under trusted mode.
    let mut bad_magic = clean.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        IndexStore::from_bytes_trusted(&bad_magic).unwrap_err(),
        StoreError::BadMagic { .. }
    ));
    assert!(matches!(
        IndexStore::from_bytes_trusted(&clean[..clean.len() / 2]).unwrap_err(),
        StoreError::Truncated { .. }
    ));
    // Structural: misaligned section offset (checksum repaired, so only
    // the geometry check can object).
    let mut misaligned = clean.clone();
    let entry = HEADER_LEN + 8;
    let off = u64::from_le_bytes(misaligned[entry..entry + 8].try_into().unwrap());
    misaligned[entry..entry + 8].copy_from_slice(&(off + 4).to_le_bytes());
    hcl_store::rewrite_checksum(&mut misaligned);
    assert!(matches!(
        IndexStore::from_bytes_trusted(&misaligned).unwrap_err(),
        StoreError::Corrupt { .. }
    ));
    // Semantic: out-of-range hub rank in the first packed entry.
    let mut bad_hub = clean.clone();
    let at = entries.offset as usize + 4;
    bad_hub[at..at + 4].copy_from_slice(&250u32.to_le_bytes());
    hcl_store::rewrite_checksum(&mut bad_hub);
    assert!(matches!(
        IndexStore::from_bytes_trusted(&bad_hub).unwrap_err(),
        StoreError::InvalidIndex(_)
    ));

    // The trusted path also serves files on disk.
    let mut path = std::env::temp_dir();
    path.push(format!("hcl_store_trusted_{}.hcl", std::process::id()));
    std::fs::write(&path, &clean).unwrap();
    assert!(IndexStore::open_trusted(&path).is_ok());
    std::fs::remove_file(&path).ok();
}

#[test]
fn open_errors_are_typed_io() {
    let err = IndexStore::open("/definitely/not/a/real/path.hcl").unwrap_err();
    assert!(matches!(err, StoreError::Io(_)));
}

#[test]
fn corrupted_file_on_disk_fails_via_open_too() {
    let mut bytes = sample_bytes();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x80;
    let mut path = std::env::temp_dir();
    path.push(format!("hcl_store_corrupt_{}.hcl", std::process::id()));
    std::fs::write(&path, &bytes).unwrap();
    let err = IndexStore::open(&path).unwrap_err();
    assert!(matches!(err, StoreError::ChecksumMismatch { .. }));
    std::fs::remove_file(&path).ok();
}
