//! Round-trip property tests: `save → load → query` must equal the
//! in-memory index on every testkit graph family, for both the mmap and
//! heap backings.

use hcl_core::{testkit, Graph};
use hcl_index::{HighwayCoverIndex, IndexConfig, QueryContext};
use hcl_store::IndexStore;
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hcl_store_test_{}_{tag}.hcl", std::process::id()));
    p
}

/// All-pairs equality between the in-memory index and a loaded store.
fn assert_store_matches_owned(name: &str, g: &Graph, idx: &HighwayCoverIndex, store: &IndexStore) {
    let n = g.num_vertices() as u32;
    let (gv, iv) = (store.graph(), store.index());
    assert_eq!(gv.num_vertices(), g.num_vertices(), "{name}: vertex count");
    assert_eq!(gv.num_edges(), g.num_edges(), "{name}: edge count");
    assert_eq!(iv.num_landmarks(), idx.num_landmarks(), "{name}: landmarks");
    let mut ctx = QueryContext::new();
    let mut ctx_store = QueryContext::new();
    for u in 0..n {
        for v in 0..n {
            let owned = idx.query_with(g, &mut ctx, u, v);
            let stored = iv.query_with(gv, &mut ctx_store, u, v);
            assert_eq!(
                stored, owned,
                "{name}: query({u}, {v}) differs between owned index and loaded store"
            );
        }
    }
}

#[test]
fn save_load_query_equals_in_memory_on_all_families() {
    for (name, g) in testkit::families() {
        for k in [0usize, 1, 4, 16] {
            let idx = HighwayCoverIndex::build(&g, IndexConfig { num_landmarks: k });

            // Heap backing via in-memory bytes.
            let bytes = hcl_store::serialize(&g, &idx).expect("serialize");
            let store = IndexStore::from_bytes(&bytes).expect("load from bytes");
            assert_eq!(store.backing_kind(), "heap");
            assert_store_matches_owned(&format!("{name} k={k} heap"), &g, &idx, &store);

            // File + default open (mmap where supported).
            let path = temp_path(&format!(
                "rt_{}_{k}",
                name.replace(['(', ')', ',', '.', '⊎', '+'], "_")
            ));
            hcl_store::save(&path, &g, &idx).expect("save");
            // The durable publish must consume its temp file: nothing
            // named `<path>.tmp.*` may survive a successful save.
            let dir = path.parent().expect("temp dir");
            let tmp_prefix = format!(
                "{}.tmp.",
                path.file_name().expect("file name").to_string_lossy()
            );
            let leftovers: Vec<_> = std::fs::read_dir(dir)
                .expect("read temp dir")
                .flatten()
                .filter(|e| e.file_name().to_string_lossy().starts_with(&tmp_prefix))
                .collect();
            assert!(
                leftovers.is_empty(),
                "{name} k={k}: save left temp files: {leftovers:?}"
            );
            let store = IndexStore::open(&path).expect("open saved file");
            assert_store_matches_owned(&format!("{name} k={k} file"), &g, &idx, &store);
            drop(store);
            std::fs::remove_file(&path).ok();
        }
    }
}

#[test]
fn mmap_backing_is_used_on_supported_platforms() {
    let g = testkit::barabasi_albert(200, 3, 2);
    let idx = HighwayCoverIndex::build(&g, IndexConfig::default());
    let path = temp_path("backing");
    hcl_store::save(&path, &g, &idx).expect("save");
    let store = IndexStore::open(&path).expect("open");
    if cfg!(all(
        unix,
        not(miri),
        target_pointer_width = "64",
        target_endian = "little"
    )) {
        assert_eq!(store.backing_kind(), "mmap");
    }
    // The explicit preload path must agree with the mapped one.
    let pre = IndexStore::open_preloaded(&path).expect("open_preloaded");
    assert_eq!(pre.backing_kind(), "heap");
    let mut ctx = QueryContext::new();
    for (u, v) in [(0, 1), (7, 133), (42, 42), (199, 3)] {
        assert_eq!(
            store.index().query_with(store.graph(), &mut ctx, u, v),
            pre.index().query_with(pre.graph(), &mut ctx, u, v),
        );
    }
    drop((store, pre));
    std::fs::remove_file(&path).ok();
}

#[test]
fn serialization_is_deterministic_and_meta_is_accurate() {
    let g = testkit::barabasi_albert(150, 4, 9);
    let idx = HighwayCoverIndex::build(&g, IndexConfig { num_landmarks: 8 });
    let a = hcl_store::serialize(&g, &idx).unwrap();
    let b = hcl_store::serialize(&g, &idx).unwrap();
    assert_eq!(a, b, "same inputs must produce byte-identical files");

    let store = IndexStore::from_bytes(&a).unwrap();
    let meta = store.meta();
    assert_eq!(meta.version, hcl_store::FORMAT_VERSION);
    assert_eq!(meta.file_len, a.len() as u64);
    assert_eq!(meta.num_vertices, 150);
    assert_eq!(meta.num_edges, g.num_edges() as u64);
    assert_eq!(meta.num_landmarks, 8);
    assert_eq!(meta.label_entries, idx.stats().total_label_entries as u64);
    // Plain serialize leaves the build metadata unrecorded.
    assert_eq!(meta.build, hcl_store::BuildInfo::default());
    assert_eq!(store.len_bytes(), a.len() as u64);

    // Sections cover the advertised element counts (7 in format v3:
    // label hubs and distances are one packed section).
    let sections = store.sections();
    assert_eq!(sections.len(), 7);
    assert!(sections.iter().any(|s| s.name == "label_entries"));
    let offsets = sections.iter().find(|s| s.name == "graph_offsets").unwrap();
    assert_eq!(offsets.len_bytes, (150 + 1) * 8);
    assert!(sections.iter().all(|s| s.offset % 8 == 0));
}

#[test]
fn build_metadata_round_trips_through_the_header() {
    let g = testkit::barabasi_albert(120, 3, 21);
    let info = hcl_store::BuildInfo {
        threads: 4,
        batch_size: 8,
        strategy: hcl_store::SelectionStrategy::DegreeRank,
    };
    // Build with the recorded parameters so the header tells the truth.
    let idx = HighwayCoverIndex::build_with(
        &g,
        &hcl_index::BuildOptions {
            num_landmarks: 8,
            threads: info.threads as usize,
            batch_size: info.batch_size as usize,
            selection: Some(info.strategy),
        },
    );

    let path = temp_path("buildinfo");
    hcl_store::save_with(&path, &g, &idx, info).expect("save_with");
    let store = IndexStore::open(&path).expect("open");
    assert_eq!(store.meta().build, info);
    assert_store_matches_owned("buildinfo", &g, &idx, &store);
    drop(store);
    std::fs::remove_file(&path).ok();

    // The build metadata is covered by the checksum but must not affect
    // the served sections: two files differing only in build info serve
    // identical section bytes.
    let a = hcl_store::serialize_with(&g, &idx, info).unwrap();
    let b = hcl_store::serialize(&g, &idx).unwrap();
    assert_ne!(a, b, "build metadata must be recorded in the header");
    assert_eq!(a[hcl_store::HEADER_LEN..], b[hcl_store::HEADER_LEN..]);
}

#[test]
fn to_owned_parts_fully_deserialises() {
    let g = testkit::grid(6, 7);
    let idx = HighwayCoverIndex::build(&g, IndexConfig { num_landmarks: 5 });
    let bytes = hcl_store::serialize(&g, &idx).unwrap();
    let store = IndexStore::from_bytes(&bytes).unwrap();
    let (g2, idx2) = store.to_owned_parts();
    drop(store);
    assert_eq!(g2, g);
    let mut ctx = QueryContext::new();
    for u in 0..42 {
        for v in 0..42 {
            assert_eq!(
                idx2.query_with(&g2, &mut ctx, u, v),
                idx.query_with(&g, &mut ctx, u, v)
            );
        }
    }
}

/// Legacy v2 containers (split hub/dist label sections) must load through
/// the converting reader and answer every query identically to the owned
/// index — across all graph families and landmark counts, through both the
/// in-memory and file open paths, validated and trusted alike.
#[test]
fn v2_containers_round_trip_through_the_converting_reader() {
    for (name, g) in testkit::families() {
        for k in [0usize, 1, 4, 16] {
            let idx = HighwayCoverIndex::build(&g, IndexConfig { num_landmarks: k });
            let v2 = hcl_store::serialize_v2_with(&g, &idx, hcl_store::BuildInfo::default())
                .expect("serialize v2");
            let current = hcl_store::serialize(&g, &idx).expect("serialize current");
            assert_ne!(v2, current, "{name} k={k}: versions must differ on disk");

            let store = IndexStore::from_bytes(&v2).expect("v2 loads");
            let meta = store.meta();
            assert_eq!(meta.version, 2, "{name} k={k}");
            assert_eq!(
                meta.build.strategy,
                hcl_store::SelectionStrategy::DegreeRank,
                "{name} k={k}: v2 must report the degree-rank default"
            );
            assert_eq!(meta.label_entries, idx.stats().total_label_entries as u64);
            let sections = store.sections();
            assert_eq!(sections.len(), 8, "{name} k={k}: v2 has split sections");
            assert!(sections.iter().any(|s| s.name == "label_hubs"));
            assert!(sections.iter().any(|s| s.name == "label_dists"));
            assert_store_matches_owned(&format!("{name} k={k} v2 bytes"), &g, &idx, &store);

            // Same answers through a real file, both open modes.
            let path = temp_path(&format!(
                "v2_{}_{k}",
                name.replace(['(', ')', ',', '.', '⊎', '+'], "_")
            ));
            std::fs::write(&path, &v2).expect("write v2 file");
            let opened = IndexStore::open(&path).expect("open v2 file");
            assert_store_matches_owned(&format!("{name} k={k} v2 file"), &g, &idx, &opened);
            drop(opened);
            let trusted = IndexStore::open_trusted(&path).expect("open_trusted v2 file");
            assert_eq!(trusted.meta().version, 2);
            assert_store_matches_owned(&format!("{name} k={k} v2 trusted"), &g, &idx, &trusted);
            drop(trusted);
            std::fs::remove_file(&path).ok();
        }
    }
}

/// The trusted open skips exactly the whole-file CRC pass: it must load
/// pristine containers (agreeing with the validated open everywhere) and
/// must *still* reject everything the structural and semantic validators
/// catch.
#[test]
fn trusted_open_agrees_with_validated_open() {
    let g = testkit::barabasi_albert(120, 3, 5);
    let idx = HighwayCoverIndex::build(&g, IndexConfig { num_landmarks: 8 });
    let path = temp_path("trusted");
    hcl_store::save(&path, &g, &idx).expect("save");

    let validated = IndexStore::open(&path).expect("open");
    let trusted = IndexStore::open_trusted(&path).expect("open_trusted");
    assert_eq!(validated.meta(), trusted.meta());
    let mut ctx = QueryContext::new();
    let mut ctx_t = QueryContext::new();
    for (u, v) in [(0, 1), (5, 117), (42, 42), (119, 60), (3, 77)] {
        assert_eq!(
            validated
                .index()
                .query_with(validated.graph(), &mut ctx, u, v),
            trusted
                .index()
                .query_with(trusted.graph(), &mut ctx_t, u, v),
        );
    }
    drop((validated, trusted));
    std::fs::remove_file(&path).ok();
}

/// The v4 header must round-trip the landmark-selection strategy and its
/// seed — through bytes, a saved file, and the trusted open — for every
/// built-in strategy on every graph family, while the served answers stay
/// equal to the owned index that was actually built with that strategy.
#[test]
fn v4_header_round_trips_strategy_and_seed_on_all_families() {
    use hcl_store::SelectionStrategy;
    let strategies = [
        SelectionStrategy::DegreeRank,
        SelectionStrategy::ApproxCoverage { seed: 42 },
        SelectionStrategy::SeededRandom {
            seed: 0xFEED_F00D_DEAD_BEEF,
        },
    ];
    for (name, g) in testkit::families() {
        for strategy in strategies {
            let idx = HighwayCoverIndex::build_with(
                &g,
                &hcl_index::BuildOptions {
                    num_landmarks: 4,
                    threads: 1,
                    batch_size: 0,
                    selection: Some(strategy),
                },
            );
            let info = hcl_store::BuildInfo {
                threads: 1,
                batch_size: 8,
                strategy,
            };
            let bytes = hcl_store::serialize_with(&g, &idx, info).expect("serialize");
            let store = IndexStore::from_bytes(&bytes).expect("v4 loads");
            assert_eq!(store.meta().version, hcl_store::FORMAT_VERSION);
            assert_eq!(store.meta().build.strategy, strategy, "{name}");
            assert_store_matches_owned(&format!("{name} {strategy}"), &g, &idx, &store);

            let path = temp_path(&format!(
                "v4_{}_{}",
                name.replace(['(', ')', ',', '.', '⊎', '+'], "_"),
                strategy.tag()
            ));
            hcl_store::save_with(&path, &g, &idx, info).expect("save_with");
            let opened = IndexStore::open(&path).expect("open v4");
            assert_eq!(opened.meta().build.strategy, strategy, "{name} file");
            drop(opened);
            let trusted = IndexStore::open_trusted(&path).expect("open_trusted v4");
            assert_eq!(trusted.meta().build.strategy, strategy, "{name} trusted");
            assert_store_matches_owned(&format!("{name} {strategy} trusted"), &g, &idx, &trusted);
            drop(trusted);
            std::fs::remove_file(&path).ok();
        }
    }
}

/// Legacy v3 containers (80-byte header, no strategy fields) must keep
/// loading — reported as `DegreeRank`, the only strategy that existed
/// when they were written — with answers identical to the owned index.
#[test]
fn v3_containers_load_as_degree_rank() {
    for (name, g) in testkit::families() {
        for k in [0usize, 4] {
            let idx = HighwayCoverIndex::build(&g, IndexConfig { num_landmarks: k });
            let v3 = hcl_store::serialize_v3_with(&g, &idx, hcl_store::BuildInfo::default())
                .expect("serialize v3");
            let v4 = hcl_store::serialize(&g, &idx).expect("serialize v4");
            assert_ne!(v3, v4, "{name} k={k}: versions must differ on disk");

            let store = IndexStore::from_bytes(&v3).expect("v3 loads");
            assert_eq!(store.meta().version, 3, "{name} k={k}");
            assert_eq!(
                store.meta().build.strategy,
                hcl_store::SelectionStrategy::DegreeRank,
                "{name} k={k}: v3 must report the degree-rank default"
            );
            assert_store_matches_owned(&format!("{name} k={k} v3"), &g, &idx, &store);
            let trusted = IndexStore::from_bytes_trusted(&v3).expect("v3 trusted");
            assert_eq!(
                trusted.meta().build.strategy,
                hcl_store::SelectionStrategy::DegreeRank
            );
        }
    }
}

#[test]
fn serialize_rejects_mismatched_graph() {
    let g = testkit::path(10);
    let other = testkit::path(11);
    let idx = HighwayCoverIndex::build(&g, IndexConfig::default());
    assert!(matches!(
        hcl_store::serialize(&other, &idx),
        Err(hcl_store::StoreError::GraphIndexMismatch { .. })
    ));
}

/// The v5 `build_stats` section must round-trip the build counters through
/// bytes, a saved file, and the trusted open — while leaving the served
/// answers untouched — and files written *without* stats must report
/// `None` rather than failing.
#[test]
fn v5_build_stats_round_trip_and_optionality() {
    let g = testkit::barabasi_albert(120, 3, 11);
    let (idx, stats) = HighwayCoverIndex::build_with_stats(
        &g,
        &hcl_index::BuildOptions {
            num_landmarks: 6,
            threads: 1,
            batch_size: 0,
            selection: None,
        },
        None,
    );
    let stored = hcl_store::StoredBuildStats::from_build(&stats);
    assert_eq!(stored.landmark_labels.len(), 6);
    assert_eq!(
        stored.label_insertions,
        idx.stats().total_label_entries as u64
    );

    let with = hcl_store::serialize_with_stats(&g, &idx, hcl_store::BuildInfo::default(), &stored)
        .expect("serialize with stats");
    let without = hcl_store::serialize(&g, &idx).expect("serialize without stats");
    assert!(with.len() > without.len(), "stats section adds bytes");

    let store = IndexStore::from_bytes(&with).expect("v5+stats loads");
    assert_eq!(store.meta().version, hcl_store::FORMAT_VERSION);
    assert_eq!(store.build_stats().as_ref(), Some(&stored));
    assert_eq!(store.sections().len(), 8);
    assert!(store.sections().iter().any(|s| s.name == "build_stats"));
    assert_store_matches_owned("v5 stats heap", &g, &idx, &store);

    let plain = IndexStore::from_bytes(&without).expect("v5 no stats loads");
    assert_eq!(plain.meta().version, hcl_store::FORMAT_VERSION);
    assert_eq!(plain.build_stats(), None, "stats section is optional");
    assert_eq!(plain.sections().len(), 7);

    // File path + trusted open.
    let path = temp_path("v5_stats");
    hcl_store::save_with_stats(&path, &g, &idx, hcl_store::BuildInfo::default(), &stored)
        .expect("save_with_stats");
    let opened = IndexStore::open(&path).expect("open v5");
    assert_eq!(opened.build_stats().as_ref(), Some(&stored));
    drop(opened);
    let trusted = IndexStore::open_trusted(&path).expect("open_trusted v5");
    assert_eq!(trusted.build_stats().as_ref(), Some(&stored));
    assert_store_matches_owned("v5 stats trusted", &g, &idx, &trusted);
    drop(trusted);
    std::fs::remove_file(&path).ok();
}

/// Legacy v4 containers (no `build_stats` section kind at all) must keep
/// loading with `build_stats() == None` and identical answers — the
/// compatibility contract deep-inspection tooling relies on.
#[test]
fn v4_containers_load_without_build_stats() {
    for (name, g) in testkit::families() {
        for k in [0usize, 4] {
            let idx = HighwayCoverIndex::build(&g, IndexConfig { num_landmarks: k });
            let info = hcl_store::BuildInfo {
                threads: 2,
                batch_size: 8,
                strategy: hcl_store::SelectionStrategy::ApproxCoverage { seed: 7 },
            };
            let v4 = hcl_store::serialize_v4_with(&g, &idx, info).expect("serialize v4");
            let v5 = hcl_store::serialize_with(&g, &idx, info).expect("serialize v5");
            assert_ne!(v4, v5, "{name} k={k}: version field must differ");

            let store = IndexStore::from_bytes(&v4).expect("v4 loads");
            assert_eq!(store.meta().version, 4, "{name} k={k}");
            assert_eq!(store.meta().build.strategy, info.strategy, "{name} k={k}");
            assert_eq!(
                store.build_stats(),
                None,
                "{name} k={k}: v4 predates build stats"
            );
            assert_store_matches_owned(&format!("{name} k={k} v4"), &g, &idx, &store);
        }
    }
}
