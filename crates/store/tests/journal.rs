//! v6 journal behaviour: replay-on-open answer identity, compaction,
//! graceful degradation on legacy versions, and journal corruption.

use hcl_core::{bfs, testkit, DeltaGraph, EdgeDelta, Graph};
use hcl_index::{BuildOptions, HighwayCoverIndex, QueryContext};
use hcl_store::{
    compact_file, serialize, serialize_v2_with, serialize_v3_with, serialize_v4_with,
    serialize_v5_with, serialize_with_journal, BuildInfo, IndexStore, StoreError, StoredJournal,
};

fn build(graph: &Graph, k: usize) -> HighwayCoverIndex {
    HighwayCoverIndex::build_with(
        graph,
        &BuildOptions {
            num_landmarks: k,
            ..Default::default()
        },
    )
}

/// A deterministic mixed edit script that is effective on the given graph
/// (every delta changes it).
fn script(graph: &Graph, len: usize, seed: u64) -> Vec<EdgeDelta> {
    let mut overlay = DeltaGraph::new(graph.as_view());
    let mut rng = testkit::SplitMix64::new(seed);
    let n = graph.num_vertices() as u64;
    let mut out = Vec::new();
    while out.len() < len {
        let u = rng.next_below(n) as u32;
        let v = rng.next_below(n) as u32;
        if u == v {
            continue;
        }
        let delta = if overlay.has_edge(u, v) {
            EdgeDelta::delete(u, v)
        } else {
            EdgeDelta::insert(u, v)
        };
        assert!(overlay.apply(delta).unwrap());
        out.push(delta);
    }
    out
}

#[test]
fn journalled_open_replays_to_current_answers() {
    let base = testkit::barabasi_albert(80, 3, 11);
    let index = build(&base, 6);
    let deltas = script(&base, 10, 0xD1CE);
    let journal = StoredJournal {
        deltas: deltas.clone(),
        compactions: 0,
    };
    let bytes = serialize_with_journal(&base, &index, BuildInfo::default(), &journal).unwrap();
    let store = IndexStore::from_bytes(&bytes).unwrap();

    assert_eq!(store.meta().version, 6);
    assert_eq!(store.journal().unwrap().deltas, deltas);
    assert!(store.journal_bytes() > 0);
    // Base sections still carry the pre-edit graph; current views don't.
    assert_eq!(store.base_graph().num_edges(), base.num_edges());

    let mut overlay = DeltaGraph::new(base.as_view());
    for &d in &deltas {
        overlay.apply(d).unwrap();
    }
    let edited = overlay.to_graph();
    assert_eq!(store.graph().num_edges(), edited.num_edges());

    // Replayed answers equal ground truth on the edited graph.
    let mut ctx = QueryContext::new();
    let mut scratch = bfs::BfsScratch::new();
    for u in (0..80).step_by(3) {
        for v in (0..80).step_by(7) {
            assert_eq!(
                store.index().query_with(store.graph(), &mut ctx, u, v),
                bfs::distance_with(&edited, u, v, &mut scratch),
                "replayed answer wrong for ({u}, {v})"
            );
        }
    }
}

#[test]
fn empty_journal_serves_base_sections_directly() {
    let base = testkit::grid(5, 5);
    let index = build(&base, 3);
    let journal = StoredJournal {
        deltas: Vec::new(),
        compactions: 4,
    };
    let bytes = serialize_with_journal(&base, &index, BuildInfo::default(), &journal).unwrap();
    let store = IndexStore::from_bytes(&bytes).unwrap();
    assert_eq!(store.journal().unwrap().compactions, 4);
    assert!(store.journal().unwrap().is_empty());
    assert_eq!(store.graph().num_edges(), base.num_edges());
}

#[test]
fn plain_serialize_has_no_journal_section() {
    let base = testkit::path(6);
    let index = build(&base, 2);
    let store = IndexStore::from_bytes(&serialize(&base, &index).unwrap()).unwrap();
    assert_eq!(store.meta().version, 6);
    assert!(store.journal().is_none());
    assert_eq!(store.journal_bytes(), 0);
}

#[test]
fn legacy_versions_open_without_journal() {
    let base = testkit::erdos_renyi(40, 0.15, 3);
    let index = build(&base, 4);
    let build_info = BuildInfo::default();
    let legacy: [(&str, Vec<u8>); 4] = [
        ("v2", serialize_v2_with(&base, &index, build_info).unwrap()),
        ("v3", serialize_v3_with(&base, &index, build_info).unwrap()),
        ("v4", serialize_v4_with(&base, &index, build_info).unwrap()),
        (
            "v5",
            serialize_v5_with(&base, &index, build_info, None).unwrap(),
        ),
    ];
    for (name, bytes) in legacy {
        let store = IndexStore::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("{name} container failed to open: {e}"));
        assert!(store.journal().is_none(), "{name} should carry no journal");
        assert_eq!(store.journal_bytes(), 0);
        assert_eq!(store.graph().num_edges(), base.num_edges());
    }
}

#[test]
fn compact_folds_journal_and_preserves_answers() {
    let dir = tempdir();
    let path = dir.join("compact.hcl");
    let base = testkit::barabasi_albert(60, 3, 21);
    let index = build(&base, 5);
    let deltas = script(&base, 8, 0xC0FFEE);
    let journal = StoredJournal {
        deltas,
        compactions: 2,
    };
    let bytes = serialize_with_journal(&base, &index, BuildInfo::default(), &journal).unwrap();
    std::fs::write(&path, &bytes).unwrap();

    let before = IndexStore::open(&path).unwrap();
    let reference: Vec<Option<u32>> = {
        let mut ctx = QueryContext::new();
        (0..60u32)
            .map(|v| before.index().query_with(before.graph(), &mut ctx, 0, v))
            .collect()
    };
    let edited_edges = before.graph().num_edges();
    drop(before);

    let report = compact_file(&path).unwrap();
    assert_eq!(report.deltas_folded, 8);
    assert_eq!(report.compactions, 3);

    let after = IndexStore::open(&path).unwrap();
    assert!(after.journal().unwrap().is_empty());
    assert_eq!(after.journal().unwrap().compactions, 3);
    // The journal folded into the base sections: base == current now.
    assert_eq!(after.base_graph().num_edges(), edited_edges);
    let mut ctx = QueryContext::new();
    for v in 0..60u32 {
        assert_eq!(
            after.index().query_with(after.graph(), &mut ctx, 0, v),
            reference[v as usize],
            "answer changed across compaction for (0, {v})"
        );
    }

    // Compacting an already-clean v6 file is a no-op.
    let report = compact_file(&path).unwrap();
    assert_eq!(report.deltas_folded, 0);
    assert_eq!(report.compactions, 3);
}

#[test]
fn compact_upgrades_legacy_containers() {
    let dir = tempdir();
    let path = dir.join("legacy.hcl");
    let base = testkit::grid(4, 5);
    let index = build(&base, 3);
    std::fs::write(
        &path,
        serialize_v4_with(&base, &index, BuildInfo::default()).unwrap(),
    )
    .unwrap();
    let report = compact_file(&path).unwrap();
    assert_eq!(report.deltas_folded, 0);
    assert_eq!(report.compactions, 0);
    let store = IndexStore::open(&path).unwrap();
    assert_eq!(store.meta().version, 6);
    assert!(store.journal().unwrap().is_empty());
}

#[test]
fn undecodable_journal_is_a_hard_error() {
    let base = testkit::path(5);
    let index = build(&base, 2);
    let journal = StoredJournal {
        deltas: vec![EdgeDelta::insert(0, 3)],
        compactions: 0,
    };
    let mut bytes = serialize_with_journal(&base, &index, BuildInfo::default(), &journal).unwrap();
    // The journal is the last section: word 0 of its payload is the format
    // tag. Stamp an unknown tag and re-checksum; the open must refuse
    // rather than serve stale base answers.
    let len = bytes.len();
    bytes[len - 5 * 8..len - 4 * 8].copy_from_slice(&99u64.to_le_bytes());
    hcl_store::rewrite_checksum(&mut bytes);
    match IndexStore::from_bytes(&bytes) {
        Err(StoreError::Corrupt { what }) => {
            assert!(what.contains("journal"), "unexpected diagnosis: {what}")
        }
        other => panic!("expected journal corruption error, got {other:?}"),
    }

    // An out-of-range delta is equally fatal.
    let bad = StoredJournal {
        deltas: vec![EdgeDelta::insert(0, 77)],
        compactions: 0,
    };
    let bytes = serialize_with_journal(&base, &index, BuildInfo::default(), &bad).unwrap();
    match IndexStore::from_bytes(&bytes) {
        Err(StoreError::Corrupt { what }) => {
            assert!(what.contains("delta"), "unexpected diagnosis: {what}")
        }
        other => panic!("expected delta corruption error, got {other:?}"),
    }
}

/// Minimal per-test temp dir (no external tempfile dependency).
fn tempdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hcl-journal-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}
