//! Durable atomic publish with a dependency-free injectable I/O layer.
//!
//! Every save entry point in this crate funnels into [`publish_with`],
//! which replaces the old write-temp-then-rename with a **durable
//! publish**: the serialised container goes to a uniquely named temporary
//! sibling in the target's directory, the temp file is fsynced, renamed
//! over the target, and finally the parent directory is fsynced so the
//! rename itself survives a power cut. A crash at any point leaves the
//! target holding either the previous complete container or the new one —
//! never a torn half-write — and leftover `<target>.tmp.*` siblings from
//! crashed publishes are swept on the next save to that path.
//!
//! ```text
//! publish_with(path, bytes, io):
//!   sweep stale <path>.tmp.* siblings          (best effort)
//!   tmp = <path>.tmp.<pid>.<counter>           (collision-proof name)
//!   1. create-temp   File::create(tmp)
//!   2. write-temp    write_all(bytes)
//!   3. sync-temp     fsync(tmp)        — bytes durable before publish
//!   4. rename        rename(tmp, path) — the atomic publish point
//!   5. sync-dir      fsync(parent)     — the rename itself durable
//! ```
//!
//! The I/O layer follows the same zero-cost discipline as `hcl-index`'s
//! `Probe`: [`StoreIo::decide`] defaults to [`IoDecision::Proceed`] with
//! an `#[inline]` body, so the production path ([`SystemIo`])
//! monomorphises to straight-line syscalls with no branches left. Tests
//! implement [`StoreIo`] to replay deterministic fault schedules — short
//! writes, failed fsyncs, simulated power cuts between any two steps —
//! and assert that a subsequent [`IndexStore::open`](crate::IndexStore::open)
//! still yields the old container, the new one, or a typed error.
//!
//! Concurrency: temp names carry the pid plus a process-global counter,
//! so any number of same-process saves to one path proceed without
//! colliding (last rename wins, each file complete). The stale-temp sweep
//! skips temps registered as in flight by this process; concurrent
//! writers in *different* processes were always a last-rename-wins race
//! and remain one.

use crate::error::StoreError;
use std::collections::HashSet;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// One step of the durable-publish sequence, in execution order — the
/// failpoint catalogue a [`StoreIo`] implementation can inject at.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PublishStep {
    /// Create the temporary sibling file.
    CreateTemp,
    /// Write the serialised container into the temp file.
    WriteTemp,
    /// `fsync` the temp file, making its bytes durable before publish.
    SyncTemp,
    /// Atomically rename the temp file over the target path.
    Rename,
    /// `fsync` the target's parent directory, making the rename durable.
    SyncDir,
}

impl PublishStep {
    /// Every step, in execution order — for exhaustive schedule sweeps.
    pub const ALL: [PublishStep; 5] = [
        PublishStep::CreateTemp,
        PublishStep::WriteTemp,
        PublishStep::SyncTemp,
        PublishStep::Rename,
        PublishStep::SyncDir,
    ];

    /// Stable lowercase name, used in [`StoreError::Publish`] diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            PublishStep::CreateTemp => "create-temp",
            PublishStep::WriteTemp => "write-temp",
            PublishStep::SyncTemp => "sync-temp",
            PublishStep::Rename => "rename",
            PublishStep::SyncDir => "sync-dir",
        }
    }
}

/// What an injected I/O layer wants to happen at one publish step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoDecision {
    /// Perform the operation normally (the production default).
    Proceed,
    /// The operation fails with an injected `io::Error`: the publish
    /// aborts with a typed [`StoreError::Publish`], removing its temp
    /// file — the disk-full / EIO path.
    Fail,
    /// Simulated power cut immediately **before** the operation runs:
    /// the publish stops, leaving on disk exactly what the completed
    /// prefix of the sequence produced (no cleanup — the process died).
    CrashBefore,
    /// Simulated power cut **during** [`PublishStep::WriteTemp`] after
    /// this many bytes reached the file — the torn-write case. At any
    /// other step it behaves like [`IoDecision::CrashBefore`].
    CrashDuring(usize),
    /// Simulated power cut immediately **after** the operation completes.
    CrashAfter,
}

/// The injectable I/O layer threaded through the durable publish.
///
/// The default implementation proceeds at every step and inlines to
/// nothing; [`SystemIo`] is that default. Fault simulators override
/// [`decide`](StoreIo::decide) to return a scheduled [`IoDecision`] per
/// step.
pub trait StoreIo {
    /// Called once per [`PublishStep`] before it executes.
    #[inline]
    fn decide(&self, _step: PublishStep) -> IoDecision {
        IoDecision::Proceed
    }
}

/// The zero-cost production I/O layer: every operation proceeds.
#[derive(Clone, Copy, Debug, Default)]
pub struct SystemIo;

impl StoreIo for SystemIo {}

/// How a publish attempt ended when it did not fail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PublishOutcome {
    /// Every step completed: the new container is durably in place.
    Committed,
    /// A simulated power cut stopped the publish at this step; on-disk
    /// state is whatever the completed steps before it left behind.
    /// [`SystemIo`] never produces this outcome.
    Crashed(PublishStep),
}

/// Process-global counter feeding unique temp names: two concurrent
/// saves to one path (same pid) get distinct temps instead of colliding.
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Temp paths this process is currently publishing through, so the
/// stale-temp sweep of a concurrent save cannot delete a live temp.
fn in_flight() -> &'static Mutex<HashSet<PathBuf>> {
    static SET: OnceLock<Mutex<HashSet<PathBuf>>> = OnceLock::new();
    SET.get_or_init(|| Mutex::new(HashSet::new()))
}

fn with_in_flight<R>(f: impl FnOnce(&mut HashSet<PathBuf>) -> R) -> R {
    // The set stays structurally valid across a panic (single insert /
    // remove per critical section), so recovering a poisoned guard is
    // strictly better than cascading the panic into every later save.
    let mut guard = in_flight()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    f(&mut guard)
}

/// Registers a temp path for the duration of one publish attempt;
/// deregisters on drop (including the crash-simulation early returns).
struct TempGuard(PathBuf);

impl TempGuard {
    fn register(path: PathBuf) -> Self {
        with_in_flight(|set| set.insert(path.clone()));
        Self(path)
    }
}

impl Drop for TempGuard {
    fn drop(&mut self) {
        with_in_flight(|set| set.remove(&self.0));
    }
}

/// `<path>.tmp.<pid>.<counter>` — unique per publish attempt.
fn temp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(format!(
        ".tmp.{}.{}",
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    PathBuf::from(os)
}

/// Best-effort sweep of `<path>.tmp.*` siblings left by crashed
/// publishes. Temps registered in flight by this process are skipped.
fn sweep_stale_temps(path: &Path) {
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return;
    };
    let dir = parent_dir(path);
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let prefix = format!("{name}.tmp.");
    for entry in entries.flatten() {
        let entry_name = entry.file_name();
        let Some(entry_name) = entry_name.to_str() else {
            continue;
        };
        if !entry_name.starts_with(&prefix) {
            continue;
        }
        let stale = entry.path();
        if with_in_flight(|set| set.contains(&stale)) {
            continue;
        }
        std::fs::remove_file(&stale).ok();
    }
}

/// The directory whose entry the rename mutates (`.` for bare names).
fn parent_dir(path: &Path) -> &Path {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    }
}

/// `fsync` on a plain file. Skipped under Miri (the interpreter has no
/// durability to enforce); the surrounding sequencing still runs, so
/// injected fsync faults behave identically there.
fn sync_file(file: &File) -> std::io::Result<()> {
    #[cfg(not(miri))]
    {
        file.sync_all()
    }
    #[cfg(miri)]
    {
        let _ = file;
        Ok(())
    }
}

/// `fsync` on the target's parent directory — what makes the rename
/// itself durable. Directory fds are a Unix notion; elsewhere (and under
/// Miri, which cannot open directories) the step is a sequenced no-op.
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    #[cfg(all(unix, not(miri)))]
    {
        File::open(parent_dir(path))?.sync_all()
    }
    #[cfg(not(all(unix, not(miri))))]
    {
        let _ = path;
        Ok(())
    }
}

/// The `io::Error` carried by injected [`IoDecision::Fail`] faults.
fn injected_error(step: PublishStep) -> std::io::Error {
    std::io::Error::other(format!("injected fault at {}", step.name()))
}

/// Maps one step's failure into the typed publish error, removing the
/// temp file first — the target still holds its previous contents.
fn fail(step: PublishStep, source: std::io::Error, tmp: &Path) -> StoreError {
    std::fs::remove_file(tmp).ok();
    StoreError::Publish {
        step: step.name(),
        source,
    }
}

/// Durably publishes `bytes` at `path` through the injectable I/O layer.
///
/// On [`PublishOutcome::Committed`] the new container is in place and
/// durable. On [`StoreError::Publish`] the attempt was abandoned, its
/// temp file removed, and the target path still holds whatever complete
/// container it held before. [`PublishOutcome::Crashed`] only occurs
/// under fault simulation (see [`IoDecision`]); it deliberately leaves
/// the partial on-disk state for the caller to inspect, exactly as a
/// power cut would.
pub fn publish_with<Io: StoreIo>(
    path: &Path,
    bytes: &[u8],
    io: &Io,
) -> Result<PublishOutcome, StoreError> {
    sweep_stale_temps(path);
    let tmp = temp_path(path);
    let _guard = TempGuard::register(tmp.clone());

    // 1. create-temp
    let mut file = match io.decide(PublishStep::CreateTemp) {
        IoDecision::Proceed | IoDecision::CrashAfter => {
            let created = File::create(&tmp).map_err(|e| fail(PublishStep::CreateTemp, e, &tmp))?;
            if io.decide(PublishStep::CreateTemp) == IoDecision::CrashAfter {
                return Ok(PublishOutcome::Crashed(PublishStep::CreateTemp));
            }
            created
        }
        IoDecision::Fail => {
            return Err(fail(
                PublishStep::CreateTemp,
                injected_error(PublishStep::CreateTemp),
                &tmp,
            ))
        }
        IoDecision::CrashBefore | IoDecision::CrashDuring(_) => {
            return Ok(PublishOutcome::Crashed(PublishStep::CreateTemp))
        }
    };

    // 2. write-temp
    match io.decide(PublishStep::WriteTemp) {
        IoDecision::Proceed | IoDecision::CrashAfter => {
            file.write_all(bytes)
                .map_err(|e| fail(PublishStep::WriteTemp, e, &tmp))?;
            if io.decide(PublishStep::WriteTemp) == IoDecision::CrashAfter {
                return Ok(PublishOutcome::Crashed(PublishStep::WriteTemp));
            }
        }
        IoDecision::Fail => {
            return Err(fail(
                PublishStep::WriteTemp,
                injected_error(PublishStep::WriteTemp),
                &tmp,
            ))
        }
        IoDecision::CrashBefore => return Ok(PublishOutcome::Crashed(PublishStep::WriteTemp)),
        IoDecision::CrashDuring(n) => {
            // Torn write: only a prefix reached the file before the cut.
            let cut = n.min(bytes.len());
            file.write_all(&bytes[..cut])
                .map_err(|e| fail(PublishStep::WriteTemp, e, &tmp))?;
            let _ = sync_file(&file);
            return Ok(PublishOutcome::Crashed(PublishStep::WriteTemp));
        }
    }

    // 3. sync-temp
    match io.decide(PublishStep::SyncTemp) {
        IoDecision::Proceed | IoDecision::CrashAfter => {
            sync_file(&file).map_err(|e| fail(PublishStep::SyncTemp, e, &tmp))?;
            if io.decide(PublishStep::SyncTemp) == IoDecision::CrashAfter {
                return Ok(PublishOutcome::Crashed(PublishStep::SyncTemp));
            }
        }
        IoDecision::Fail => {
            return Err(fail(
                PublishStep::SyncTemp,
                injected_error(PublishStep::SyncTemp),
                &tmp,
            ))
        }
        IoDecision::CrashBefore | IoDecision::CrashDuring(_) => {
            return Ok(PublishOutcome::Crashed(PublishStep::SyncTemp))
        }
    }
    drop(file);

    // 4. rename — the atomic publish point.
    match io.decide(PublishStep::Rename) {
        IoDecision::Proceed | IoDecision::CrashAfter => {
            std::fs::rename(&tmp, path).map_err(|e| fail(PublishStep::Rename, e, &tmp))?;
            if io.decide(PublishStep::Rename) == IoDecision::CrashAfter {
                return Ok(PublishOutcome::Crashed(PublishStep::Rename));
            }
        }
        IoDecision::Fail => {
            return Err(fail(
                PublishStep::Rename,
                injected_error(PublishStep::Rename),
                &tmp,
            ))
        }
        IoDecision::CrashBefore | IoDecision::CrashDuring(_) => {
            return Ok(PublishOutcome::Crashed(PublishStep::Rename))
        }
    }

    // 5. sync-dir
    match io.decide(PublishStep::SyncDir) {
        IoDecision::Proceed | IoDecision::CrashAfter => {
            // The rename has already happened, so a failure here must NOT
            // remove the (fully published) target: report the step with
            // the temp already consumed by the rename.
            sync_parent_dir(path).map_err(|e| StoreError::Publish {
                step: PublishStep::SyncDir.name(),
                source: e,
            })?;
            if io.decide(PublishStep::SyncDir) == IoDecision::CrashAfter {
                return Ok(PublishOutcome::Crashed(PublishStep::SyncDir));
            }
        }
        IoDecision::Fail => {
            return Err(StoreError::Publish {
                step: PublishStep::SyncDir.name(),
                source: injected_error(PublishStep::SyncDir),
            })
        }
        IoDecision::CrashBefore | IoDecision::CrashDuring(_) => {
            return Ok(PublishOutcome::Crashed(PublishStep::SyncDir))
        }
    }

    Ok(PublishOutcome::Committed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temp_names_are_unique_within_a_process() {
        let base = Path::new("/some/dir/index.hcl");
        let a = temp_path(base);
        let b = temp_path(base);
        assert_ne!(a, b, "two publishes to one path must not share a temp");
        let pid = std::process::id().to_string();
        for p in [&a, &b] {
            let name = p.file_name().unwrap().to_str().unwrap();
            assert!(name.starts_with("index.hcl.tmp."), "{name}");
            assert!(name.contains(&pid), "{name} should embed the pid");
        }
    }

    #[test]
    fn parent_dir_of_bare_name_is_cwd() {
        assert_eq!(parent_dir(Path::new("index.hcl")), Path::new("."));
        assert_eq!(parent_dir(Path::new("/a/b.hcl")), Path::new("/a"));
    }

    #[test]
    fn in_flight_registration_protects_a_temp_from_the_sweep() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("hcl_durable_guard_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("g.hcl");
        let live = PathBuf::from(format!(
            "{}.tmp.{}.999999",
            target.display(),
            std::process::id()
        ));
        let stale = PathBuf::from(format!("{}.tmp.1.0", target.display()));
        std::fs::write(&live, b"live").unwrap();
        std::fs::write(&stale, b"stale").unwrap();
        {
            let _guard = TempGuard::register(live.clone());
            sweep_stale_temps(&target);
            assert!(live.exists(), "in-flight temp must survive the sweep");
            assert!(!stale.exists(), "stale temp must be swept");
        }
        sweep_stale_temps(&target);
        assert!(
            !live.exists(),
            "after the publish ends its temp is fair game"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
