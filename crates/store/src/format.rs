//! The `.hcl` container format: header, section table, and the
//! serialise/validate pair.
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------
//!      0     8  magic "HCLSTOR1"
//!      8     4  format version (u32 LE)
//!     12     4  section count (u32 LE) — 8 in version 2, 7 in versions
//!               3/4, 7 or 8 in version 5 (the build-stats section is
//!               optional), 7 through 9 in version 6 (build-stats and
//!               journal both optional)
//!     16     8  total file length in bytes (u64 LE)
//!     24     8  CRC-64/ECMA of the whole file with this field zeroed
//!     32     8  num_vertices (u64 LE)
//!     40     8  num_edges (u64 LE)
//!     48     8  num_landmarks (u64 LE)
//!     56     8  total label entries (u64 LE)
//!     64     4  build metadata: builder worker threads (u32 LE, 0 = unrecorded)
//!     68     4  build metadata: landmark batch size (u32 LE, 0 = unrecorded)
//!     72     4  landmark-selection strategy tag (u32 LE, v4+; see
//!               `SelectionStrategy::tag` — 0 = degree-rank)
//!     76     4  reserved (zeroed, ignored on read)
//!     80     8  landmark-selection strategy seed (u64 LE, v4+)
//!     88     8  reserved (zeroed, ignored on read)
//!     96  S·24  section table: {kind u32, elem_size u32, offset u64,
//!               len_bytes u64} per section (S = section count)
//!      …     …  sections, each 8-byte aligned, zero-padded between
//! ```
//!
//! Versions 2 and 3 have an **80-byte header** (the table starts at 80;
//! bytes 72..80 are reserved); version 4 grew it to 96 bytes to record the
//! landmark-selection strategy.
//!
//! ## Packed label entries (v3+)
//!
//! v3 onwards stores each label entry as one `u64` — hub rank in the high
//! 32 bits, distance in the low 32 (`hcl-index`'s
//! [`pack_label_entry`](hcl_index::pack_label_entry)) — in a single
//! `label_entries` section (kind 9, element size 8). That is exactly the
//! in-memory layout of the query hot path, so a mapped file serves with
//! no decode step at all. The seven sections, in canonical order:
//! `graph_offsets` (u64), `graph_neighbors` (u32), `landmarks` (u32),
//! `landmark_rank` (u32), `label_offsets` (u64), `label_entries` (u64),
//! `highway` (u32).
//!
//! ## Version history and compatibility
//!
//! * v1: 64-byte header, no build-metadata block (no longer readable).
//! * v2: appended 16 build-metadata bytes to the header; labels stored as
//!   two parallel `u32` sections, `label_hubs` (kind 6) and `label_dists`
//!   (kind 7).
//! * v3: replaced the two label sections with the packed `label_entries`
//!   section (kind 9).
//! * v4: grew the header from 80 to 96 bytes, recording the
//!   landmark-selection strategy tag and seed
//!   ([`hcl_index::SelectionStrategy`]); sections unchanged from v3.
//! * v5: added an **optional** `build_stats` section (kind 10, `u64`
//!   elements) holding the thread-count-invariant build counters — see
//!   [`StoredBuildStats`] for the payload layout. Header and the seven
//!   core sections are unchanged from v4; a v5 file without the stats
//!   section is byte-identical to a v4 file except for the version field.
//! * v6: added an **optional** `journal` section (kind 11, `u64`
//!   elements): an append-only log of edge deltas not yet folded into the
//!   base sections, plus the container's compaction counter — see
//!   [`StoredJournal`] for the payload layout. The base sections always
//!   describe the graph/index *as last compacted*; opening a file with a
//!   non-empty journal replays the deltas (see
//!   [`IndexStore::open`](crate::IndexStore)). A v6 file without the
//!   journal section is byte-identical to a v5 file except for the
//!   version field.
//!
//! This reader accepts **v2 through v6**. v2 files are served through a
//! converting open: the two `u32` sections are packed once into an owned
//! entry array at load (`O(entries)` time and `8·entries` bytes of heap;
//! the rest of the file still serves zero-copy from the map). v2 and v3
//! files predate recorded selection strategies and load as
//! `SelectionStrategy::DegreeRank` — the only strategy that existed when
//! they were written. Writers always emit v6; [`serialize_v2_with`],
//! [`serialize_v3_with`], [`serialize_v4_with`], and [`serialize_v5_with`]
//! exist so tests and migration tooling can fabricate legacy containers.
//! Unknown versions are rejected with a typed error rather than mis-read.
//!
//! All integers are little-endian, all arrays fixed-width (`u32`/`u64`),
//! all section offsets 8-byte aligned — which is exactly what lets a
//! little-endian host reinterpret the mapped file as the index's slices
//! with no decode step. Validation happens once at open: header, checksum
//! (skipped by the trusted-open path — see
//! [`IndexStore::open_trusted`](crate::IndexStore::open_trusted)),
//! section-table geometry, then the semantic CSR/label invariants via
//! `hcl-core`/`hcl-index`. After that, serving is pointer arithmetic.

use crate::checksum::{crc64_finish, crc64_init, crc64_update};
use crate::error::StoreError;
use hcl_core::{DeltaOp, EdgeDelta, Graph};
use hcl_index::{unpack_label_entry, HighwayCoverIndex, SelectionStrategy};
use std::ops::Range;

/// File magic: "HCLSTOR1".
pub const MAGIC: [u8; 8] = *b"HCLSTOR1";
/// Format version this build writes (v6: v5's layout plus an optional
/// append-only `journal` section of edge deltas). Versions 2 through 6
/// are readable.
pub const FORMAT_VERSION: u32 = 6;
/// Oldest format version this build still reads (v2: split
/// `label_hubs`/`label_dists` sections, served through a converting open).
pub const OLDEST_READABLE_VERSION: u32 = 2;
/// Header length in bytes of the **current** format version. Legacy v2/v3
/// containers have [`LEGACY_HEADER_LEN`]-byte headers; use
/// [`header_len`] when handling arbitrary readable versions.
pub const HEADER_LEN: usize = 96;
/// Header length in bytes of the legacy v2/v3 formats (also the minimum
/// parseable prefix for any readable version).
pub const LEGACY_HEADER_LEN: usize = 80;
/// Byte offset of the checksum field inside the header.
pub const CHECKSUM_OFFSET: usize = 24;
/// Byte offset of the build-metadata block inside the header.
const BUILD_META_OFFSET: usize = 64;
/// Byte offsets of the v4 selection-strategy fields inside the header.
const STRATEGY_TAG_OFFSET: usize = 72;
const STRATEGY_SEED_OFFSET: usize = 80;

/// Header length of a given readable format version.
pub const fn header_len(version: u32) -> usize {
    if version >= 4 {
        HEADER_LEN
    } else {
        LEGACY_HEADER_LEN
    }
}

const SECTION_ENTRY_LEN: usize = 24;
/// Section counts per readable version.
const NUM_SECTIONS_V2: usize = 8;
const NUM_SECTIONS_V3: usize = 7;
/// Highest section-kind discriminant across all readable versions.
const MAX_SECTION_KINDS: usize = 11;

/// Section kinds across all readable versions. Kinds 6/7 only appear in
/// v2 files, kind 9 in v3 and later, kind 10 (optionally) in v5 and
/// later, kind 11 (optionally) in v6 and later.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
enum SectionKind {
    GraphOffsets = 1,
    GraphNeighbors = 2,
    Landmarks = 3,
    LandmarkRank = 4,
    LabelOffsets = 5,
    LabelHubs = 6,
    LabelDists = 7,
    Highway = 8,
    LabelEntries = 9,
    BuildStats = 10,
    Journal = 11,
}

impl SectionKind {
    fn from_u32(v: u32) -> Option<Self> {
        match v {
            1 => Some(Self::GraphOffsets),
            2 => Some(Self::GraphNeighbors),
            3 => Some(Self::Landmarks),
            4 => Some(Self::LandmarkRank),
            5 => Some(Self::LabelOffsets),
            6 => Some(Self::LabelHubs),
            7 => Some(Self::LabelDists),
            8 => Some(Self::Highway),
            9 => Some(Self::LabelEntries),
            10 => Some(Self::BuildStats),
            11 => Some(Self::Journal),
            _ => None,
        }
    }

    fn elem_size(self) -> u32 {
        match self {
            Self::GraphOffsets | Self::LabelOffsets | Self::LabelEntries => 8,
            Self::BuildStats | Self::Journal => 8,
            _ => 4,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Self::GraphOffsets => "graph_offsets",
            Self::GraphNeighbors => "graph_neighbors",
            Self::Landmarks => "landmarks",
            Self::LandmarkRank => "landmark_rank",
            Self::LabelOffsets => "label_offsets",
            Self::LabelHubs => "label_hubs",
            Self::LabelDists => "label_dists",
            Self::Highway => "highway",
            Self::LabelEntries => "label_entries",
            Self::BuildStats => "build_stats",
            Self::Journal => "journal",
        }
    }

    /// Canonical section-table order for one format version. The v5/v6
    /// tables list every *allowed* kind; the trailing `BuildStats` and
    /// (v6) `Journal` sections are optional.
    fn table_for(version: u32) -> &'static [SectionKind] {
        match version {
            2 => &[
                Self::GraphOffsets,
                Self::GraphNeighbors,
                Self::Landmarks,
                Self::LandmarkRank,
                Self::LabelOffsets,
                Self::LabelHubs,
                Self::LabelDists,
                Self::Highway,
            ],
            3 | 4 => &[
                Self::GraphOffsets,
                Self::GraphNeighbors,
                Self::Landmarks,
                Self::LandmarkRank,
                Self::LabelOffsets,
                Self::LabelEntries,
                Self::Highway,
            ],
            5 => &[
                Self::GraphOffsets,
                Self::GraphNeighbors,
                Self::Landmarks,
                Self::LandmarkRank,
                Self::LabelOffsets,
                Self::LabelEntries,
                Self::Highway,
                Self::BuildStats,
            ],
            6 => &[
                Self::GraphOffsets,
                Self::GraphNeighbors,
                Self::Landmarks,
                Self::LandmarkRank,
                Self::LabelOffsets,
                Self::LabelEntries,
                Self::Highway,
                Self::BuildStats,
                Self::Journal,
            ],
            _ => unreachable!("version gated before table lookup"),
        }
    }
}

/// Format tag in word 0 of the `build_stats` section payload; bump when
/// the stats layout changes so old readers degrade to "no stats" instead
/// of mis-decoding.
const STATS_FORMAT_TAG: u64 = 1;

/// The thread-count-invariant build counters persisted in a v5 container's
/// optional `build_stats` section.
///
/// Wall times are deliberately **not** stored: the same graph built with
/// any thread count must produce byte-identical sections (the determinism
/// contract `hcl-index`'s batched build provides), and timings would break
/// that. The payload is a flat `u64` array:
///
/// ```text
/// word  value
/// ----  ---------------------------------------------------------
///    0  stats format tag (currently 1)
///    1  bfs_visits — vertices dequeued across all pruned BFS runs
///    2  label_insertions — label entries written (Σ landmark_labels)
///    3  dominated — vertices cut by domination pruning
///    4  k — landmark count (length of the per-landmark array)
/// 5..5+k  landmark_labels[i] — label entries contributed by rank i
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoredBuildStats {
    /// Vertices dequeued across all pruned landmark BFS runs.
    pub bfs_visits: u64,
    /// Total label entries inserted (equals the index's entry count).
    pub label_insertions: u64,
    /// Vertices cut by domination pruning (visited, neither labelled nor
    /// expanded).
    pub dominated: u64,
    /// Label entries contributed by each landmark, indexed by rank.
    pub landmark_labels: Vec<u64>,
}

impl StoredBuildStats {
    /// The persistable subset of a build's [`hcl_index::BuildStats`]
    /// (counters only — wall times stay in memory).
    pub fn from_build(stats: &hcl_index::BuildStats) -> Self {
        Self {
            bfs_visits: stats.bfs_visits,
            label_insertions: stats.label_insertions,
            dominated: stats.dominated,
            landmark_labels: stats.landmark_labels.clone(),
        }
    }

    /// Fraction of BFS visits cut by domination pruning, in `[0, 1]`.
    pub fn domination_cut_rate(&self) -> f64 {
        if self.bfs_visits == 0 {
            0.0
        } else {
            self.dominated as f64 / self.bfs_visits as f64
        }
    }

    fn encode(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(5 + self.landmark_labels.len());
        words.push(STATS_FORMAT_TAG);
        words.push(self.bfs_visits);
        words.push(self.label_insertions);
        words.push(self.dominated);
        words.push(self.landmark_labels.len() as u64);
        words.extend_from_slice(&self.landmark_labels);
        words
    }

    /// Decodes a stats payload; `None` for unknown tags or inconsistent
    /// geometry, so readers degrade to "no stats" rather than erroring on
    /// containers written by a future format revision.
    pub(crate) fn decode(words: &[u64], num_landmarks: u64) -> Option<Self> {
        if words.len() < 5 || words[0] != STATS_FORMAT_TAG {
            return None;
        }
        let k = words[4];
        if k != num_landmarks || words.len() as u64 != 5 + k {
            return None;
        }
        Some(Self {
            bfs_visits: words[1],
            label_insertions: words[2],
            dominated: words[3],
            landmark_labels: words[5..].to_vec(),
        })
    }
}

/// Format tag in word 0 of the `journal` section payload; bump when the
/// journal layout changes so old readers degrade to "unreadable journal"
/// (a typed error) instead of mis-decoding edits.
const JOURNAL_FORMAT_TAG: u64 = 1;

/// Word encoding of a delta op inside the journal payload.
const JOURNAL_OP_INSERT: u64 = 0;
const JOURNAL_OP_DELETE: u64 = 1;

/// The append-only edge-delta journal persisted in a v6 container's
/// optional `journal` section.
///
/// The base sections of a v6 file always hold the graph and index **as
/// last compacted**; the journal holds the edits applied since, in order.
/// Opening a journalled file replays the deltas (and repairs the labels)
/// to reconstruct current state; `compact` folds the replayed state back
/// into the base sections and empties the journal. The payload is a flat
/// `u64` array:
///
/// ```text
/// word       value
/// ----       ------------------------------------------------------
///    0       journal format tag (currently 1)
///    1       compactions — times this container has been compacted
///    2       delta count D
/// 3+2i       op of delta i (0 = insert, 1 = delete)
/// 4+2i       endpoints of delta i, packed (u << 32) | v
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoredJournal {
    /// Edge edits applied since the last compaction, in application order.
    pub deltas: Vec<EdgeDelta>,
    /// How many times this container's journal has been folded into the
    /// base sections (monotone across the file's lifetime).
    pub compactions: u64,
}

impl StoredJournal {
    /// Whether there are no pending deltas (the compaction counter may
    /// still be non-zero).
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Number of pending deltas.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    fn encode(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(3 + 2 * self.deltas.len());
        words.push(JOURNAL_FORMAT_TAG);
        words.push(self.compactions);
        words.push(self.deltas.len() as u64);
        for d in &self.deltas {
            words.push(match d.op {
                DeltaOp::Insert => JOURNAL_OP_INSERT,
                DeltaOp::Delete => JOURNAL_OP_DELETE,
            });
            words.push(((d.u as u64) << 32) | d.v as u64);
        }
        words
    }

    /// Decodes a journal payload; `None` for unknown tags, unknown ops, or
    /// inconsistent geometry. Unlike build stats, a journal that cannot be
    /// decoded is a hard open error upstream — silently dropping edits
    /// would serve stale answers as if they were current.
    pub(crate) fn decode(words: &[u64]) -> Option<Self> {
        if words.len() < 3 || words[0] != JOURNAL_FORMAT_TAG {
            return None;
        }
        let count = words[2] as usize;
        if words.len() != 3 + count.checked_mul(2)? {
            return None;
        }
        let mut deltas = Vec::with_capacity(count);
        for pair in words[3..].chunks_exact(2) {
            let op = match pair[0] {
                JOURNAL_OP_INSERT => DeltaOp::Insert,
                JOURNAL_OP_DELETE => DeltaOp::Delete,
                _ => return None,
            };
            let u = (pair[1] >> 32) as u32;
            let v = pair[1] as u32;
            deltas.push(EdgeDelta { op, u, v });
        }
        Some(Self {
            deltas,
            compactions: words[1],
        })
    }
}

/// How an index was built, recorded in the container header's
/// build-metadata bytes. It never affects how the file is *served*, but it
/// makes a persisted index reproducible — same graph, same landmark count,
/// same batch size, same selection strategy ⇒ byte-identical sections on
/// any machine — and lets `hcl inspect` and capacity tooling tell builds
/// apart.
///
/// `0` in `threads`/`batch_size` means "unrecorded" (e.g. a file written
/// through the plain [`serialize`]/[`save`](crate::save) entry points).
/// The strategy field always holds a concrete value; v2/v3 files (and
/// plain-serialize v4 files) carry [`SelectionStrategy::DegreeRank`], the
/// only strategy that existed before v4.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BuildInfo {
    /// Worker threads the builder ran with.
    pub threads: u32,
    /// Landmarks per batch (the parameter that shapes the labelling; see
    /// `hcl-index`'s build docs).
    pub batch_size: u32,
    /// Landmark-selection strategy (and its seed) the index was built
    /// with. Recorded as a `(tag, seed)` pair in the v4 header.
    pub strategy: SelectionStrategy,
}

/// Build and graph metadata recorded in the header, available without
/// touching any section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreMeta {
    /// Format version of the file (2 through 5; see the module docs).
    pub version: u32,
    /// Total file length in bytes.
    pub file_len: u64,
    /// CRC-64/ECMA checksum recorded in the header.
    pub checksum: u64,
    /// Vertex count of the stored graph.
    pub num_vertices: u64,
    /// Undirected edge count of the stored graph.
    pub num_edges: u64,
    /// Landmark count of the stored index.
    pub num_landmarks: u64,
    /// Total `(hub, dist)` label entries of the stored index.
    pub label_entries: u64,
    /// How the index was built (zeroed when unrecorded).
    pub build: BuildInfo,
}

/// Location and shape of one section, for inspection tooling.
#[derive(Clone, Copy, Debug)]
pub struct SectionInfo {
    /// Section name (stable, lowercase).
    pub name: &'static str,
    /// Bytes per element (4 or 8).
    pub elem_size: u32,
    /// Byte offset of the section within the file.
    pub offset: u64,
    /// Section length in bytes.
    pub len_bytes: u64,
}

/// Where the label entries live — the one layout difference between the
/// readable versions.
pub(crate) enum LabelRanges {
    /// v3: one packed `u64` section, servable in place.
    Packed {
        /// Byte range of the `label_entries` section.
        entries: Range<usize>,
    },
    /// v2: two parallel `u32` sections, packed into an owned array at open.
    Split {
        /// Byte range of the `label_hubs` section.
        hubs: Range<usize>,
        /// Byte range of the `label_dists` section.
        dists: Range<usize>,
    },
}

/// Validated byte ranges of every section plus the decoded metadata.
pub(crate) struct Layout {
    pub(crate) meta: StoreMeta,
    pub(crate) graph_offsets: Range<usize>,
    pub(crate) graph_neighbors: Range<usize>,
    pub(crate) landmarks: Range<usize>,
    pub(crate) landmark_rank: Range<usize>,
    pub(crate) label_offsets: Range<usize>,
    pub(crate) labels: LabelRanges,
    pub(crate) highway: Range<usize>,
    /// v5's optional `build_stats` section (`None` when absent or legacy).
    pub(crate) build_stats: Option<Range<usize>>,
    /// v6's optional `journal` section (`None` when absent or legacy).
    pub(crate) journal: Option<Range<usize>>,
}

impl Layout {
    pub(crate) fn sections(&self) -> Vec<SectionInfo> {
        let info = |kind: SectionKind, r: &Range<usize>| SectionInfo {
            name: kind.name(),
            elem_size: kind.elem_size(),
            offset: r.start as u64,
            len_bytes: (r.end - r.start) as u64,
        };
        let mut out = vec![
            info(SectionKind::GraphOffsets, &self.graph_offsets),
            info(SectionKind::GraphNeighbors, &self.graph_neighbors),
            info(SectionKind::Landmarks, &self.landmarks),
            info(SectionKind::LandmarkRank, &self.landmark_rank),
            info(SectionKind::LabelOffsets, &self.label_offsets),
        ];
        match &self.labels {
            LabelRanges::Packed { entries } => out.push(info(SectionKind::LabelEntries, entries)),
            LabelRanges::Split { hubs, dists } => {
                out.push(info(SectionKind::LabelHubs, hubs));
                out.push(info(SectionKind::LabelDists, dists));
            }
        }
        out.push(info(SectionKind::Highway, &self.highway));
        if let Some(stats) = &self.build_stats {
            out.push(info(SectionKind::BuildStats, stats));
        }
        if let Some(journal) = &self.journal {
            out.push(info(SectionKind::Journal, journal));
        }
        out
    }
}

enum Payload<'a> {
    U32(&'a [u32]),
    U64(&'a [u64]),
}

impl Payload<'_> {
    fn byte_len(&self) -> usize {
        match self {
            Payload::U32(s) => s.len() * 4,
            Payload::U64(s) => s.len() * 8,
        }
    }

    fn write_le(&self, out: &mut Vec<u8>) {
        match self {
            Payload::U32(s) => {
                for &v in *s {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Payload::U64(s) => {
                for &v in *s {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
    }
}

/// CRC-64 of the file with the header checksum field treated as zero.
/// Version-independent: only the 8 checksum bytes are masked, so it works
/// for every header length.
pub(crate) fn file_checksum(bytes: &[u8]) -> u64 {
    debug_assert!(bytes.len() >= LEGACY_HEADER_LEN);
    let mut state = crc64_init();
    state = crc64_update(state, &bytes[..CHECKSUM_OFFSET]);
    state = crc64_update(state, &[0u8; 8]);
    state = crc64_update(state, &bytes[CHECKSUM_OFFSET + 8..]);
    crc64_finish(state)
}

/// Serialises a graph and its index into an in-memory `.hcl` container
/// (current version), leaving the build-metadata bytes unrecorded (zero).
///
/// Fails with [`StoreError::GraphIndexMismatch`] if the index was built for
/// a different vertex count. Output is deterministic: the same graph and
/// index always produce byte-identical files.
pub fn serialize(graph: &Graph, index: &HighwayCoverIndex) -> Result<Vec<u8>, StoreError> {
    serialize_with(graph, index, BuildInfo::default())
}

/// Serialises a graph and its index (current version), recording how the
/// index was built in the header's build-metadata bytes. See [`serialize`]
/// for everything else; determinism holds per `(graph, index, build)`
/// triple.
pub fn serialize_with(
    graph: &Graph,
    index: &HighwayCoverIndex,
    build: BuildInfo,
) -> Result<Vec<u8>, StoreError> {
    serialize_version(graph, index, build, FORMAT_VERSION, None, None)
}

/// Serialises a graph, its index, and a delta journal into a v6 container.
///
/// The graph and index must describe the **base** (as-last-compacted)
/// state; the journal's deltas are what a reader replays on top to
/// reconstruct current state. Pass an empty journal with a non-zero
/// compaction counter to record "just compacted". Determinism holds per
/// `(graph, index, build, journal)` tuple.
pub fn serialize_with_journal(
    graph: &Graph,
    index: &HighwayCoverIndex,
    build: BuildInfo,
    journal: &StoredJournal,
) -> Result<Vec<u8>, StoreError> {
    serialize_version(
        graph,
        index,
        build,
        FORMAT_VERSION,
        None,
        Some(&journal.encode()),
    )
}

/// Serialises a graph and its index (current version) with the build's
/// thread-count-invariant counters recorded in the optional `build_stats`
/// section. Everything else matches [`serialize_with`]; determinism holds
/// per `(graph, index, build, stats)` tuple — stats carry no wall times,
/// so the same build configuration yields byte-identical files at any
/// thread count.
pub fn serialize_with_stats(
    graph: &Graph,
    index: &HighwayCoverIndex,
    build: BuildInfo,
    stats: &StoredBuildStats,
) -> Result<Vec<u8>, StoreError> {
    serialize_version(
        graph,
        index,
        build,
        FORMAT_VERSION,
        Some(&stats.encode()),
        None,
    )
}

/// Serialises a graph and its index as a **legacy v2 container** (split
/// `label_hubs`/`label_dists` sections, 80-byte header).
///
/// For compatibility tests and migration tooling only — it lets this build
/// fabricate the files older readers expect, and lets the test suite prove
/// the v2 converting open answers queries identically. New files should
/// always be written through [`serialize`]/[`serialize_with`]. The
/// `build.strategy` field is not representable before v4 and is ignored.
pub fn serialize_v2_with(
    graph: &Graph,
    index: &HighwayCoverIndex,
    build: BuildInfo,
) -> Result<Vec<u8>, StoreError> {
    serialize_version(graph, index, build, 2, None, None)
}

/// Serialises a graph and its index as a **legacy v3 container** (packed
/// label entries, 80-byte header without the selection-strategy fields).
///
/// Compatibility-test and migration tooling counterpart of
/// [`serialize_v2_with`]; it lets the suite prove v3 files load with
/// [`SelectionStrategy::DegreeRank`] reported. `build.strategy` is ignored.
pub fn serialize_v3_with(
    graph: &Graph,
    index: &HighwayCoverIndex,
    build: BuildInfo,
) -> Result<Vec<u8>, StoreError> {
    serialize_version(graph, index, build, 3, None, None)
}

/// Serialises a graph and its index as a **legacy v4 container** (96-byte
/// header with the selection strategy, no `build_stats` section).
///
/// Compatibility-test and migration tooling counterpart of
/// [`serialize_v2_with`]/[`serialize_v3_with`]; it lets the suite prove v4
/// files still load, with [`IndexStore::build_stats`]
/// (crate::IndexStore::build_stats) reporting `None`.
pub fn serialize_v4_with(
    graph: &Graph,
    index: &HighwayCoverIndex,
    build: BuildInfo,
) -> Result<Vec<u8>, StoreError> {
    serialize_version(graph, index, build, 4, None, None)
}

/// Serialises a graph and its index as a **legacy v5 container** (no
/// journal section; optionally with build stats).
///
/// Compatibility-test and migration tooling counterpart of the other
/// `serialize_v*_with` fabricators; it lets the suite prove v5 files
/// still load, with an empty journal reported.
pub fn serialize_v5_with(
    graph: &Graph,
    index: &HighwayCoverIndex,
    build: BuildInfo,
    stats: Option<&StoredBuildStats>,
) -> Result<Vec<u8>, StoreError> {
    let words = stats.map(StoredBuildStats::encode);
    serialize_version(graph, index, build, 5, words.as_deref(), None)
}

/// Whether `needle` is a subsequence of `haystack` (order-preserving,
/// not necessarily contiguous) — the shape contract between emitted
/// sections and the canonical per-version table, where trailing optional
/// kinds may be independently absent.
#[cfg(debug_assertions)]
fn is_subsequence(needle: &[SectionKind], haystack: &[SectionKind]) -> bool {
    let mut it = haystack.iter();
    needle.iter().all(|k| it.any(|h| h == k))
}

fn serialize_version(
    graph: &Graph,
    index: &HighwayCoverIndex,
    build: BuildInfo,
    version: u32,
    stats: Option<&[u64]>,
    journal: Option<&[u64]>,
) -> Result<Vec<u8>, StoreError> {
    let gv = graph.as_view();
    let iv = index.as_view();
    if gv.num_vertices() != iv.num_vertices() {
        return Err(StoreError::GraphIndexMismatch {
            graph_vertices: gv.num_vertices(),
            index_vertices: iv.num_vertices(),
        });
    }

    // v2 stores labels as two parallel u32 arrays; unpack into temporaries.
    let (mut hubs, mut dists) = (Vec::new(), Vec::new());
    if version == 2 {
        hubs.reserve_exact(iv.label_entries().len());
        dists.reserve_exact(iv.label_entries().len());
        for &e in iv.label_entries() {
            let (h, d) = unpack_label_entry(e);
            hubs.push(h);
            dists.push(d);
        }
    }

    let mut parts: Vec<(SectionKind, Payload<'_>)> = vec![
        (SectionKind::GraphOffsets, Payload::U64(gv.csr_offsets())),
        (
            SectionKind::GraphNeighbors,
            Payload::U32(gv.csr_neighbors()),
        ),
        (SectionKind::Landmarks, Payload::U32(iv.landmarks())),
        (SectionKind::LandmarkRank, Payload::U32(iv.landmark_rank())),
        (SectionKind::LabelOffsets, Payload::U64(iv.label_offsets())),
    ];
    if version == 2 {
        parts.push((SectionKind::LabelHubs, Payload::U32(&hubs)));
        parts.push((SectionKind::LabelDists, Payload::U32(&dists)));
    } else {
        parts.push((SectionKind::LabelEntries, Payload::U64(iv.label_entries())));
    }
    parts.push((SectionKind::Highway, Payload::U32(iv.highway())));
    if let Some(words) = stats {
        debug_assert!(version >= 5, "build stats require format v5");
        parts.push((SectionKind::BuildStats, Payload::U64(words)));
    }
    if let Some(words) = journal {
        debug_assert!(version >= 6, "delta journals require format v6");
        parts.push((SectionKind::Journal, Payload::U64(words)));
    }
    // The emitted kinds must be a subsequence of the canonical table
    // (trailing optional kinds may be independently absent).
    #[cfg(debug_assertions)]
    debug_assert!(is_subsequence(
        &parts.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
        SectionKind::table_for(version),
    ));

    let hlen = header_len(version);
    let num_sections = parts.len();
    let table_end = hlen + num_sections * SECTION_ENTRY_LEN;
    let mut out = vec![0u8; table_end];
    let mut entries: Vec<(SectionKind, u64, u64)> = Vec::with_capacity(num_sections);
    for (kind, payload) in &parts {
        while out.len() % 8 != 0 {
            out.push(0);
        }
        let offset = out.len() as u64;
        payload.write_le(&mut out);
        entries.push((*kind, offset, payload.byte_len() as u64));
    }

    // Section table.
    for (i, (kind, offset, len)) in entries.iter().enumerate() {
        let at = hlen + i * SECTION_ENTRY_LEN;
        out[at..at + 4].copy_from_slice(&(*kind as u32).to_le_bytes());
        out[at + 4..at + 8].copy_from_slice(&kind.elem_size().to_le_bytes());
        out[at + 8..at + 16].copy_from_slice(&offset.to_le_bytes());
        out[at + 16..at + 24].copy_from_slice(&len.to_le_bytes());
    }

    // Header (checksum patched last).
    out[0..8].copy_from_slice(&MAGIC);
    out[8..12].copy_from_slice(&version.to_le_bytes());
    out[12..16].copy_from_slice(&(num_sections as u32).to_le_bytes());
    let total_len = out.len() as u64;
    out[16..24].copy_from_slice(&total_len.to_le_bytes());
    out[32..40].copy_from_slice(&(gv.num_vertices() as u64).to_le_bytes());
    out[40..48].copy_from_slice(&(gv.num_edges() as u64).to_le_bytes());
    out[48..56].copy_from_slice(&(iv.num_landmarks() as u64).to_le_bytes());
    out[56..64].copy_from_slice(&(iv.label_entries().len() as u64).to_le_bytes());
    out[BUILD_META_OFFSET..BUILD_META_OFFSET + 4].copy_from_slice(&build.threads.to_le_bytes());
    out[BUILD_META_OFFSET + 4..BUILD_META_OFFSET + 8]
        .copy_from_slice(&build.batch_size.to_le_bytes());
    if version >= 4 {
        // Selection strategy tag + seed; bytes 76..80 and 88..96 stay
        // zero (reserved).
        out[STRATEGY_TAG_OFFSET..STRATEGY_TAG_OFFSET + 4]
            .copy_from_slice(&build.strategy.tag().to_le_bytes());
        out[STRATEGY_SEED_OFFSET..STRATEGY_SEED_OFFSET + 8]
            .copy_from_slice(&build.strategy.seed().to_le_bytes());
    }
    // In legacy versions bytes 72..80 stay zero: reserved build metadata.
    let crc = file_checksum(&out);
    out[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].copy_from_slice(&crc.to_le_bytes());
    Ok(out)
}

/// Recomputes and patches the header checksum of a serialised container.
///
/// Intended for tooling and corruption tests that deliberately edit a file
/// and need it internally consistent again; normal writers never need this.
///
/// # Panics
/// Panics if `bytes` is shorter than the fixed header.
pub fn rewrite_checksum(bytes: &mut [u8]) {
    let crc = file_checksum(bytes);
    bytes[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].copy_from_slice(&crc.to_le_bytes());
}

fn u32_le(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("bounds checked"))
}

fn u64_le(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("bounds checked"))
}

fn corrupt(what: impl Into<String>) -> StoreError {
    StoreError::Corrupt { what: what.into() }
}

/// Parses and validates the header and section table, returning the layout.
///
/// Checks, in order: minimum length, magic, version (2 through 6 are
/// readable), version-specific header length, declared vs actual file
/// length (truncation / trailing bytes), checksum (unless
/// `verify_checksum` is false — the trusted-open path), then section-table
/// geometry (version-appropriate kinds, element sizes, 8-byte alignment,
/// in-bounds, non-overlapping) and element counts against the header
/// metadata. Semantic validation of the array *contents* happens
/// afterwards in `IndexStore` via `GraphView::from_csr` /
/// `IndexView::from_parts`.
pub(crate) fn parse_and_validate(
    bytes: &[u8],
    verify_checksum: bool,
) -> Result<Layout, StoreError> {
    // Magic first (when at least 8 bytes exist): "this is not an index
    // file" is a more useful diagnosis than "truncated" for foreign files.
    if bytes.len() >= 8 {
        let magic: [u8; 8] = bytes[0..8].try_into().expect("bounds checked");
        if magic != MAGIC {
            return Err(StoreError::BadMagic { found: magic });
        }
    }
    // Every readable version has at least the legacy header; the version
    // field (inside it) then decides how long this header really is.
    if bytes.len() < LEGACY_HEADER_LEN {
        return Err(StoreError::Truncated {
            expected: LEGACY_HEADER_LEN as u64,
            actual: bytes.len() as u64,
        });
    }
    let version = u32_le(bytes, 8);
    if !(OLDEST_READABLE_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            oldest_supported: OLDEST_READABLE_VERSION,
            supported: FORMAT_VERSION,
        });
    }
    let hlen = header_len(version);
    if bytes.len() < hlen {
        return Err(StoreError::Truncated {
            expected: hlen as u64,
            actual: bytes.len() as u64,
        });
    }
    let file_len = u64_le(bytes, 16);
    if (bytes.len() as u64) < file_len {
        return Err(StoreError::Truncated {
            expected: file_len,
            actual: bytes.len() as u64,
        });
    }
    if (bytes.len() as u64) > file_len {
        return Err(corrupt(format!(
            "{} trailing bytes after declared end of file",
            bytes.len() as u64 - file_len
        )));
    }
    let stored = u64_le(bytes, CHECKSUM_OFFSET);
    if verify_checksum {
        let computed = file_checksum(bytes);
        if stored != computed {
            return Err(StoreError::ChecksumMismatch { stored, computed });
        }
    }

    // v2 has 8 fixed sections, v3/v4 have 7; v5 has 7 plus an optional
    // trailing build-stats section, so 7 and 8 are both well-formed
    // there; v6 adds an optional journal section on top (7 through 9).
    let allowed = SectionKind::table_for(version);
    let section_count = u32_le(bytes, 12) as usize;
    let well_formed = match version {
        2 => section_count == NUM_SECTIONS_V2,
        3 | 4 => section_count == NUM_SECTIONS_V3,
        5 => section_count == NUM_SECTIONS_V3 || section_count == NUM_SECTIONS_V3 + 1,
        _ => (NUM_SECTIONS_V3..=NUM_SECTIONS_V3 + 2).contains(&section_count),
    };
    if !well_formed {
        return Err(corrupt(format!(
            "header declares {section_count} sections, invalid for version {version}"
        )));
    }
    let table_end = hlen + section_count * SECTION_ENTRY_LEN;
    if bytes.len() < table_end {
        return Err(corrupt("section table extends past end of file"));
    }

    // v2/v3 predate recorded selection strategies; degree ranking was the
    // only one that existed, so that is what they load as.
    let strategy = if version >= 4 {
        let tag = u32_le(bytes, STRATEGY_TAG_OFFSET);
        let seed = u64_le(bytes, STRATEGY_SEED_OFFSET);
        SelectionStrategy::from_tag(tag, seed)
            .ok_or_else(|| corrupt(format!("unknown landmark-selection strategy tag {tag}")))?
    } else {
        SelectionStrategy::DegreeRank
    };
    let meta = StoreMeta {
        version,
        file_len,
        checksum: stored,
        num_vertices: u64_le(bytes, 32),
        num_edges: u64_le(bytes, 40),
        num_landmarks: u64_le(bytes, 48),
        label_entries: u64_le(bytes, 56),
        build: BuildInfo {
            threads: u32_le(bytes, BUILD_META_OFFSET),
            batch_size: u32_le(bytes, BUILD_META_OFFSET + 4),
            strategy,
        },
        // The reserved header bytes (72..80 in v2/v3; 76..80 and 88..96
        // in v4) are deliberately not validated: a future writer may use
        // them without breaking this reader.
    };

    let mut ranges: [Option<Range<usize>>; MAX_SECTION_KINDS] = Default::default();
    let mut spans: Vec<(u64, u64)> = Vec::with_capacity(section_count);
    for i in 0..section_count {
        let at = hlen + i * SECTION_ENTRY_LEN;
        let kind_raw = u32_le(bytes, at);
        let kind = SectionKind::from_u32(kind_raw)
            .filter(|k| allowed.contains(k))
            .ok_or_else(|| {
                corrupt(format!(
                    "unknown section kind {kind_raw} for version {version}"
                ))
            })?;
        let elem_size = u32_le(bytes, at + 4);
        let offset = u64_le(bytes, at + 8);
        let len = u64_le(bytes, at + 16);
        let name = kind.name();
        if elem_size != kind.elem_size() {
            return Err(corrupt(format!(
                "section {name} declares element size {elem_size}, expected {}",
                kind.elem_size()
            )));
        }
        if offset % 8 != 0 {
            return Err(corrupt(format!(
                "section {name} offset {offset} not 8-byte aligned"
            )));
        }
        if offset < table_end as u64 {
            return Err(corrupt(format!("section {name} overlaps header/table")));
        }
        let end = offset
            .checked_add(len)
            .ok_or_else(|| corrupt(format!("section {name} length overflows")))?;
        if end > file_len {
            return Err(corrupt(format!("section {name} extends past end of file")));
        }
        if len % elem_size as u64 != 0 {
            return Err(corrupt(format!(
                "section {name} length {len} not a multiple of element size {elem_size}"
            )));
        }
        let slot = &mut ranges[kind as u32 as usize - 1];
        if slot.is_some() {
            return Err(corrupt(format!("duplicate section {name}")));
        }
        *slot = Some(offset as usize..end as usize);
        spans.push((offset, end));
    }
    spans.sort_unstable();
    for pair in spans.windows(2) {
        if pair[1].0 < pair[0].1 {
            return Err(corrupt("overlapping sections"));
        }
    }

    // Every allowed kind except the optional trailing stats/journal
    // sections is required. (For v2–v4 the count match + duplicate
    // rejection already imply presence; for v5/v6 a short file could have
    // smuggled an optional entry in place of a core section, so check
    // explicitly.)
    for &kind in allowed {
        let optional = kind == SectionKind::BuildStats || kind == SectionKind::Journal;
        if !optional && ranges[kind as u32 as usize - 1].is_none() {
            return Err(corrupt(format!("missing section {}", kind.name())));
        }
    }
    let take = |kind: SectionKind| -> Range<usize> {
        ranges[kind as u32 as usize - 1]
            .clone()
            .expect("required kinds checked present above")
    };
    let labels = if version == 2 {
        LabelRanges::Split {
            hubs: take(SectionKind::LabelHubs),
            dists: take(SectionKind::LabelDists),
        }
    } else {
        LabelRanges::Packed {
            entries: take(SectionKind::LabelEntries),
        }
    };
    let layout = Layout {
        meta,
        graph_offsets: take(SectionKind::GraphOffsets),
        graph_neighbors: take(SectionKind::GraphNeighbors),
        landmarks: take(SectionKind::Landmarks),
        landmark_rank: take(SectionKind::LandmarkRank),
        label_offsets: take(SectionKind::LabelOffsets),
        labels,
        highway: take(SectionKind::Highway),
        build_stats: ranges[SectionKind::BuildStats as u32 as usize - 1].clone(),
        journal: ranges[SectionKind::Journal as u32 as usize - 1].clone(),
    };

    // Element counts must agree with the header metadata.
    let elems = |r: &Range<usize>, elem: usize| ((r.end - r.start) / elem) as u64;
    let expect = |name: &str, actual: u64, expected: u64| -> Result<(), StoreError> {
        if actual != expected {
            Err(corrupt(format!(
                "section {name} holds {actual} elements, header metadata implies {expected}"
            )))
        } else {
            Ok(())
        }
    };
    let nv = meta.num_vertices;
    let k = meta.num_landmarks;
    expect(
        "graph_offsets",
        elems(&layout.graph_offsets, 8),
        nv.checked_add(1)
            .ok_or_else(|| corrupt("vertex count overflows"))?,
    )?;
    expect(
        "graph_neighbors",
        elems(&layout.graph_neighbors, 4),
        meta.num_edges
            .checked_mul(2)
            .ok_or_else(|| corrupt("edge count overflows"))?,
    )?;
    expect("landmarks", elems(&layout.landmarks, 4), k)?;
    expect("landmark_rank", elems(&layout.landmark_rank, 4), nv)?;
    expect("label_offsets", elems(&layout.label_offsets, 8), nv + 1)?;
    match &layout.labels {
        LabelRanges::Packed { entries } => {
            expect("label_entries", elems(entries, 8), meta.label_entries)?;
        }
        LabelRanges::Split { hubs, dists } => {
            expect("label_hubs", elems(hubs, 4), meta.label_entries)?;
            expect("label_dists", elems(dists, 4), meta.label_entries)?;
        }
    }
    expect(
        "highway",
        elems(&layout.highway, 4),
        k.checked_mul(k)
            .ok_or_else(|| corrupt("landmark count overflows"))?,
    )?;
    if let Some(stats) = &layout.build_stats {
        // Contents are tag-versioned and decoded leniently (see
        // `StoredBuildStats::decode`); geometry just has to be non-empty.
        if elems(stats, 8) == 0 {
            return Err(corrupt("section build_stats is empty"));
        }
    }
    if let Some(journal) = &layout.journal {
        // Full decoding (and the hard error on an undecodable payload)
        // happens at open; here just require the fixed preamble to exist.
        if elems(journal, 8) < 3 {
            return Err(corrupt("section journal shorter than its preamble"));
        }
    }

    Ok(layout)
}
