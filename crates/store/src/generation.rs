//! Atomically swappable index generations for zero-downtime reload.
//!
//! A long-running serving process wants to pick up a freshly built `.hcl`
//! container **without dropping a single in-flight query**: the old mmap
//! must stay valid until the last query borrowed from it finishes, and new
//! queries must start on the new file immediately. [`GenerationHandle`]
//! packages that pattern: it owns the current [`IndexStore`] behind an
//! `Arc`, hands out `(Arc<IndexStore>, generation)` snapshots to request
//! handlers (one cheap clone per request), and [`swap`](
//! GenerationHandle::swap)s in a replacement atomically. Because
//! [`save_with`](crate::save_with) renames complete files into place and
//! an mmap pins its inode, the whole reload pipeline — writer saves, server
//! re-opens, handle swaps — never exposes a torn or truncated view.
//!
//! The handle is deliberately storage-level: it knows nothing about
//! sockets or request routing, so the same type serves a CLI server, a
//! test harness hammering swaps, or an embedding application.

use crate::IndexStore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// The current index generation of a [`GenerationHandle`] snapshot:
/// which store to query and which reload produced it.
#[derive(Clone)]
pub struct Generation {
    /// The store backing this generation; queries borrow views from it,
    /// and the `Arc` keeps the mapping alive for as long as any in-flight
    /// query still holds the snapshot.
    pub store: Arc<IndexStore>,
    /// 1-based reload counter: the store the handle was created with is
    /// generation 1, the first successful swap makes 2, and so on.
    pub number: u64,
}

/// An atomically swappable handle to the "current" [`IndexStore`].
///
/// Readers call [`current`](GenerationHandle::current) once per request
/// and run the whole request against that snapshot; a concurrent
/// [`swap`](GenerationHandle::swap) never invalidates it — the old store
/// is dropped (and its mmap unmapped) only when the last snapshot goes
/// away. The read path is one `RwLock` read acquisition plus one `Arc`
/// clone, which is noise against µs-scale distance queries.
pub struct GenerationHandle {
    current: RwLock<Generation>,
    /// Lock-free mirror of the current generation number, for metrics
    /// endpoints that want the number without touching the lock.
    number: AtomicU64,
}

impl GenerationHandle {
    /// Wraps `store` as generation 1.
    pub fn new(store: IndexStore) -> Self {
        Self {
            current: RwLock::new(Generation {
                store: Arc::new(store),
                number: 1,
            }),
            number: AtomicU64::new(1),
        }
    }

    /// A consistent snapshot of the current store and its generation
    /// number; hold it for the duration of one request.
    pub fn current(&self) -> Generation {
        // A poisoned lock means a panic during `swap`; the guarded pair
        // is still a coherent, previously-published generation (the store
        // Arc and number are written together under the same guard), so
        // serving continues on it rather than cascading the panic.
        self.current
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// Atomically replaces the current store with `store`, returning the
    /// new generation number. In-flight snapshots keep the old store
    /// alive; requests that take a snapshot after `swap` returns see the
    /// new one.
    pub fn swap(&self, store: IndexStore) -> u64 {
        // See `current` for why recovering from poison is sound here.
        let mut cur = self
            .current
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        cur.store = Arc::new(store);
        cur.number += 1;
        self.number.store(cur.number, Ordering::Release);
        cur.number
    }

    /// The current generation number without taking the lock (may be one
    /// swap stale relative to a racing [`swap`](GenerationHandle::swap) —
    /// fine for metrics, not for correctness decisions).
    pub fn number(&self) -> u64 {
        self.number.load(Ordering::Acquire)
    }
}

impl std::fmt::Debug for GenerationHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GenerationHandle")
            .field("generation", &self.number())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcl_core::testkit;
    use hcl_index::{HighwayCoverIndex, IndexConfig, QueryContext};

    fn store_for(seed: u64, landmarks: usize) -> IndexStore {
        let graph = testkit::barabasi_albert(200, 3, seed);
        let index = HighwayCoverIndex::build(
            &graph,
            IndexConfig {
                num_landmarks: landmarks,
            },
        );
        let bytes = crate::serialize(&graph, &index).expect("serialize");
        IndexStore::from_bytes(&bytes).expect("open")
    }

    #[test]
    fn swap_bumps_generation_and_serves_new_store() {
        let handle = GenerationHandle::new(store_for(1, 4));
        let g1 = handle.current();
        assert_eq!(g1.number, 1);
        assert_eq!(handle.number(), 1);

        assert_eq!(handle.swap(store_for(1, 8)), 2);
        let g2 = handle.current();
        assert_eq!(g2.number, 2);
        assert_eq!(handle.number(), 2);
        assert_eq!(g2.store.meta().num_landmarks, 8);

        // The old snapshot is still fully usable: same graph, same exact
        // answers, even though the handle has moved on.
        let mut ctx = QueryContext::new();
        let d_old = g1
            .store
            .index()
            .query_with(g1.store.graph(), &mut ctx, 0, 7);
        let d_new = g2
            .store
            .index()
            .query_with(g2.store.graph(), &mut ctx, 0, 7);
        assert_eq!(d_old, d_new);
    }

    #[test]
    fn concurrent_readers_always_see_a_complete_generation() {
        let handle = std::sync::Arc::new(GenerationHandle::new(store_for(2, 4)));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));

        let readers: Vec<_> = (0..4)
            .map(|_| {
                let handle = handle.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut ctx = QueryContext::new();
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let gen = handle.current();
                        // Generations only move forward under a reader.
                        assert!(gen.number >= last, "generation went backwards");
                        last = gen.number;
                        let d = gen
                            .store
                            .index()
                            .query_with(gen.store.graph(), &mut ctx, 3, 11);
                        // Both test stores index the same graph, so the
                        // exact answer is generation-independent.
                        assert!(d.is_some(), "connected BA graph pair lost");
                    }
                    last
                })
            })
            .collect();

        let mut swapped = 1;
        for i in 0..20 {
            swapped = handle.swap(if i % 2 == 0 {
                store_for(2, 8)
            } else {
                store_for(2, 4)
            });
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            let seen = r.join().expect("reader panicked");
            assert!(seen <= swapped);
        }
        assert_eq!(handle.number(), swapped);
        assert_eq!(swapped, 21);
    }
}
