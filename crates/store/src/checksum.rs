//! CRC-64 (ECMA-182, reflected) — the integrity checksum of the `.hcl`
//! container.
//!
//! Table-driven, dependency-free, and byte-order independent. This is a
//! corruption detector, not a cryptographic MAC: it reliably catches
//! truncation, bit rot, and sloppy edits, which is all the format promises.

/// Reflected ECMA-182 polynomial (the one used by `xz`).
const POLY: u64 = 0xC96C_5795_D787_0F42;

const fn make_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u64; 256] = make_table();

/// Streaming state for a CRC-64 computation. Start with [`crc64_init`],
/// fold bytes in with [`crc64_update`], finish with [`crc64_finish`].
pub fn crc64_init() -> u64 {
    !0
}

/// Folds `bytes` into a running CRC state.
pub fn crc64_update(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state = TABLE[((state ^ b as u64) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

/// Finalises a CRC state into the checksum value.
pub fn crc64_finish(state: u64) -> u64 {
    !state
}

/// One-shot CRC-64 of a byte slice.
pub fn crc64(bytes: &[u8]) -> u64 {
    crc64_finish(crc64_update(crc64_init(), bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // ECMA-182 reflected CRC of "123456789" is 0x995DC9BBDF1939FA.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"highway cover labelling";
        let mut state = crc64_init();
        for chunk in data.chunks(5) {
            state = crc64_update(state, chunk);
        }
        assert_eq!(crc64_finish(state), crc64(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0xA5u8; 512];
        let clean = crc64(&data);
        data[200] ^= 0x10;
        assert_ne!(crc64(&data), clean);
    }
}
