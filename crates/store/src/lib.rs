//! On-disk persistence for highway-cover indexes: a versioned, checksummed
//! binary container (`.hcl`) served back **zero-copy** through a memory
//! map.
//!
//! The motivating workflow is build-once / serve-many: one process runs the
//! expensive labelling and [`save`]s the result; any number of serving
//! processes [`IndexStore::open`] the file and answer queries immediately —
//! no edge-list parse, no rebuild, no deserialisation. On the supported
//! fast path (64-bit little-endian Unix) the file is `mmap`'d and the
//! little-endian fixed-width sections are reinterpreted in place as the
//! `GraphView` / `IndexView` slices the query engine runs on, so "load
//! time" is one page-table walk plus one validation pass, and resident
//! memory is shared between processes by the page cache.
//!
//! ```no_run
//! # use hcl_core::{Graph, testkit};
//! # use hcl_index::{HighwayCoverIndex, IndexConfig, QueryContext};
//! let graph = testkit::barabasi_albert(10_000, 5, 42);
//! let index = HighwayCoverIndex::build(&graph, IndexConfig::default());
//! hcl_store::save("web.hcl", &graph, &index)?;
//!
//! // …later, in a serving process:
//! let store = hcl_store::IndexStore::open("web.hcl")?;
//! let mut ctx = QueryContext::new();
//! let d = store.index().query_with(store.graph(), &mut ctx, 17, 4711);
//! # Ok::<(), hcl_store::StoreError>(())
//! ```
//!
//! Integrity: the container carries magic, version, declared length, and a
//! CRC-64 over the whole file, and every structural invariant of the CSR
//! arrays is validated once at open. Corrupt, truncated, or tampered input
//! yields a typed [`StoreError`] — never a panic, never UB. The full-file
//! CRC pass is the one validation cost that scales with file size, and it
//! exists to catch *storage* corruption; for files the process just wrote
//! (or the operator vouches for), [`IndexStore::open_trusted`] skips
//! exactly that pass while keeping every header, geometry, and semantic
//! check — making serving fan-out nearly free. See [`format`](self) docs in
//! `format.rs` for the byte layout, including the v3 packed label-entry
//! section and the v2 compatibility path.
//!
//! Platforms without the mmap fast path (or callers preferring a private
//! copy) get the same API via [`IndexStore::open_preloaded`] /
//! [`IndexStore::from_bytes`], which read into an aligned heap buffer.
#![deny(missing_docs)]
// All unsafe in this crate is confined to `backing.rs` (mmap FFI and the
// aligned-buffer casts); inside an unsafe fn every unsafe operation must
// still be in an explicit `unsafe {}` block with its own SAFETY comment.
#![deny(unsafe_op_in_unsafe_fn)]

mod backing;
mod checksum;
pub mod durable;
mod error;
mod format;
mod generation;

pub use checksum::crc64;
pub use error::StoreError;
pub use format::{
    header_len, rewrite_checksum, serialize, serialize_v2_with, serialize_v3_with,
    serialize_v4_with, serialize_v5_with, serialize_with, serialize_with_journal,
    serialize_with_stats, BuildInfo, SectionInfo, StoreMeta, StoredBuildStats, StoredJournal,
    FORMAT_VERSION, HEADER_LEN, LEGACY_HEADER_LEN, MAGIC, OLDEST_READABLE_VERSION,
};
pub use generation::{Generation, GenerationHandle};
// The strategy type recorded in [`BuildInfo`] lives in `hcl-index`;
// re-exported so store-level tooling does not need the extra import.
pub use hcl_index::SelectionStrategy;

use backing::{cast_u32s, cast_u64s, AlignedBuf, Backing};
use format::{LabelRanges, Layout};
use hcl_core::{DeltaGraph, Graph, GraphView, VertexId};
use hcl_index::repair::DynamicIndex;
use hcl_index::{pack_label_entry, BuildContext, HighwayCoverIndex, IndexView};
use std::fs::File;
use std::path::Path;

/// Serialises `graph` and `index` and writes them to `path` atomically,
/// leaving the header's build-metadata bytes unrecorded; see [`save_with`].
pub fn save(
    path: impl AsRef<Path>,
    graph: &Graph,
    index: &HighwayCoverIndex,
) -> Result<u64, StoreError> {
    save_with(path, graph, index, BuildInfo::default())
}

/// Serialises `graph` and `index` — recording `build` (builder threads and
/// landmark batch size) in the container header — and writes them to
/// `path` atomically: the bytes go to a temporary sibling file which is
/// then renamed over the target, so a concurrent reader either sees the
/// old complete container or the new one — never a truncated half-write,
/// and a process already serving the old file via mmap keeps its mapping
/// (the old inode stays alive until unmapped) instead of faulting on
/// truncated pages. Returns the number of bytes written.
pub fn save_with(
    path: impl AsRef<Path>,
    graph: &Graph,
    index: &HighwayCoverIndex,
    build: BuildInfo,
) -> Result<u64, StoreError> {
    let path = path.as_ref();
    let bytes = serialize_with(graph, index, build)?;
    write_atomically(path, &bytes)?;
    Ok(bytes.len() as u64)
}

/// Durable write-to-temporary-then-rename (temp fsync, rename, directory
/// fsync — see [`durable`]), shared by every save entry point.
fn write_atomically(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    // `SystemIo` proceeds at every step, so the outcome is always
    // `Committed`; the `Crashed` arm only exists for fault simulators.
    durable::publish_with(path, bytes, &durable::SystemIo).map(|_| ())
}

/// [`save_with`] plus the build's thread-count-invariant counters recorded
/// in the container's optional `build_stats` section (see
/// [`StoredBuildStats`] for the payload layout and the determinism
/// rationale). Returns the number of bytes written.
pub fn save_with_stats(
    path: impl AsRef<Path>,
    graph: &Graph,
    index: &HighwayCoverIndex,
    build: BuildInfo,
    stats: &StoredBuildStats,
) -> Result<u64, StoreError> {
    let path = path.as_ref();
    let bytes = serialize_with_stats(graph, index, build, stats)?;
    write_atomically(path, &bytes)?;
    Ok(bytes.len() as u64)
}

/// [`save_with`] for a journalled container: `graph`/`index` are the
/// **base** (as-last-compacted) state and `journal` the deltas applied
/// since — see [`serialize_with_journal`]. Returns the bytes written.
pub fn save_with_journal(
    path: impl AsRef<Path>,
    graph: &Graph,
    index: &HighwayCoverIndex,
    build: BuildInfo,
    journal: &StoredJournal,
) -> Result<u64, StoreError> {
    let path = path.as_ref();
    let bytes = serialize_with_journal(graph, index, build, journal)?;
    write_atomically(path, &bytes)?;
    Ok(bytes.len() as u64)
}

/// What [`compact_file`] did, for logging and `inspect`-style tooling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactReport {
    /// Journal deltas folded into the base sections.
    pub deltas_folded: usize,
    /// Container size before compaction, in bytes.
    pub bytes_before: u64,
    /// Container size after compaction, in bytes.
    pub bytes_after: u64,
    /// The container's compaction counter after this compaction.
    pub compactions: u64,
}

/// Folds a container's delta journal into its base sections: opens the
/// file (which replays pending deltas and repairs the labels), then
/// atomically republishes it with the replayed state as the new base, an
/// empty journal, and the compaction counter bumped.
///
/// The write goes through the durable temp-fsync/rename/dir-fsync path
/// ([`durable`]), so a crash mid-compaction leaves the old journalled
/// container intact. A file whose journal is already empty (or absent) is
/// rewritten only when it predates v6, upgrading it in place; otherwise
/// it is left untouched.
pub fn compact_file(path: impl AsRef<Path>) -> Result<CompactReport, StoreError> {
    let path = path.as_ref();
    let store = IndexStore::open(path)?;
    let meta = store.meta();
    let journal = store.journal().cloned().unwrap_or_default();
    if journal.is_empty() && meta.version >= 6 {
        let len = store.len_bytes();
        return Ok(CompactReport {
            deltas_folded: 0,
            bytes_before: len,
            bytes_after: len,
            compactions: journal.compactions,
        });
    }
    let (graph, index) = store.to_owned_parts();
    let folded = StoredJournal {
        deltas: Vec::new(),
        compactions: journal.compactions + u64::from(!journal.is_empty()),
    };
    let bytes = serialize_with_journal(&graph, &index, meta.build, &folded)?;
    write_atomically(path, &bytes)?;
    Ok(CompactReport {
        deltas_folded: journal.len(),
        bytes_before: meta.file_len,
        bytes_after: bytes.len() as u64,
        compactions: folded.compactions,
    })
}

/// How much of the integrity machinery an open pays for; see
/// [`IndexStore::open`] vs [`IndexStore::open_trusted`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpenMode {
    /// Full validation including the whole-file CRC-64 pass.
    Validated,
    /// Skip the CRC pass; header, section geometry, and semantic CSR/label
    /// validation still run.
    Trusted,
}

/// An opened, validated `.hcl` container serving borrowed graph and index
/// views.
///
/// All validation (header, checksum, section geometry, CSR and labelling
/// invariants) happens in the constructors; afterwards [`graph`]
/// (IndexStore::graph) and [`index`](IndexStore::index) are pointer
/// arithmetic over the backing bytes. The store must outlive the views it
/// hands out, which the borrow checker enforces.
///
/// Version-2 files (split hub/distance label sections) are served through
/// a converting open: the label entries are packed into an owned array
/// once at load, while every other section still serves zero-copy.
pub struct IndexStore {
    backing: Backing,
    layout: Layout,
    /// Owned packed label entries for v2 files (`None` for v3, which
    /// serves them straight from the backing).
    converted_entries: Option<Vec<u64>>,
    /// The decoded delta journal of a v6 file (`None` when the file has
    /// no journal section).
    journal: Option<StoredJournal>,
    /// Current graph/index reconstructed by replaying a non-empty journal
    /// over the base sections at open. When present, [`IndexStore::graph`]
    /// and [`IndexStore::index`] serve these instead of the (stale) base
    /// sections.
    replayed: Option<ReplayedState>,
}

/// Owned current state of a journalled container: base sections plus
/// replayed deltas, with labels repaired incrementally at open.
struct ReplayedState {
    graph: Graph,
    index: HighwayCoverIndex,
}

impl std::fmt::Debug for IndexStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexStore")
            .field("backing", &self.backing_kind())
            .field("meta", &self.layout.meta)
            .finish()
    }
}

impl IndexStore {
    /// Opens a container with **full validation**, preferring the
    /// zero-copy memory-mapped backing and falling back to a heap copy
    /// where mmap is unavailable.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_mode(path, OpenMode::Validated)
    }

    /// Opens a container **without the whole-file CRC pass** — for files
    /// this process (or a trusted pipeline stage) just wrote, where the
    /// checksum would only re-verify bytes the page cache already holds.
    ///
    /// Everything cheap still runs: magic, version, declared length,
    /// section-table geometry, and the full semantic CSR/label validation
    /// (`O(n + entries + k²)`, but without touching every payload byte a
    /// second time for the CRC). What is *lost* is detection of silent
    /// storage-level corruption inside array payloads whose values happen
    /// to stay structurally plausible — distances, for instance. A
    /// tampered-but-well-formed file therefore yields wrong answers,
    /// never panics or UB (the same contract as
    /// [`IndexView::from_parts`]); use [`IndexStore::open`] for files of
    /// unknown provenance.
    pub fn open_trusted(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_mode(path, OpenMode::Trusted)
    }

    fn open_mode(path: impl AsRef<Path>, mode: OpenMode) -> Result<Self, StoreError> {
        let path = path.as_ref();
        let file = File::open(path)?;
        let len = file.metadata()?.len();

        // `not(miri)`: Miri cannot execute the mmap FFI, so under Miri
        // every open takes the aligned heap path below — which is exactly
        // what lets the whole store test suite run under the interpreter.
        #[cfg(all(unix, not(miri), target_pointer_width = "64", target_endian = "little"))]
        {
            if len > 0 {
                if let Ok(map) = backing::mmap::Mmap::map(&file, len as usize) {
                    return Self::from_backing(Backing::Mmap(map), mode);
                }
            }
        }
        Self::open_via_read(file, len, mode)
    }

    /// Opens a container by reading it fully into an aligned heap buffer —
    /// the portable path, also useful when the file lives on storage where
    /// mapped page faults are slower than one sequential read.
    pub fn open_preloaded(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        Self::open_via_read(file, len, OpenMode::Validated)
    }

    fn open_via_read(mut file: File, len: u64, mode: OpenMode) -> Result<Self, StoreError> {
        let buf = AlignedBuf::read_from(&mut file, len as usize)?;
        Self::from_backing(Backing::Heap(buf), mode)
    }

    /// Validates an in-memory container image (copied into an aligned heap
    /// buffer). Handy for tests and for receiving index images over the
    /// network.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        Self::from_backing(
            Backing::Heap(AlignedBuf::copy_from(bytes)),
            OpenMode::Validated,
        )
    }

    /// [`from_bytes`](IndexStore::from_bytes) without the CRC pass; the
    /// in-memory counterpart of [`open_trusted`](IndexStore::open_trusted).
    pub fn from_bytes_trusted(bytes: &[u8]) -> Result<Self, StoreError> {
        Self::from_backing(
            Backing::Heap(AlignedBuf::copy_from(bytes)),
            OpenMode::Trusted,
        )
    }

    fn from_backing(backing: Backing, mode: OpenMode) -> Result<Self, StoreError> {
        #[cfg(target_endian = "big")]
        {
            return Err(StoreError::UnsupportedPlatform {
                why: "zero-copy .hcl serving requires a little-endian host",
            });
        }
        #[cfg(not(target_endian = "big"))]
        {
            let layout = format::parse_and_validate(backing.bytes(), mode == OpenMode::Validated)?;

            // v2 files carry labels as two parallel u32 sections; pack them
            // once into the layout the query engine consumes. v3 serves
            // them in place.
            let bytes = backing.bytes();
            let converted_entries = match &layout.labels {
                LabelRanges::Packed { .. } => None,
                LabelRanges::Split { hubs, dists } => {
                    let hubs = cast_u32s(&bytes[hubs.clone()]);
                    let dists = cast_u32s(&bytes[dists.clone()]);
                    Some(
                        hubs.iter()
                            .zip(dists)
                            .map(|(&h, &d)| pack_label_entry(h, d))
                            .collect::<Vec<u64>>(),
                    )
                }
            };

            // Semantic validation, once: afterwards the accessors can use
            // the unchecked view constructors.
            let graph = GraphView::from_csr(
                cast_u64s(&bytes[layout.graph_offsets.clone()]),
                cast_u32s(&bytes[layout.graph_neighbors.clone()]),
            )?;
            let entries = packed_entries(&layout.labels, &converted_entries, bytes);
            let index = IndexView::from_parts(
                cast_u32s(&bytes[layout.landmarks.clone()]),
                cast_u32s(&bytes[layout.landmark_rank.clone()]),
                cast_u64s(&bytes[layout.label_offsets.clone()]),
                entries,
                cast_u32s(&bytes[layout.highway.clone()]),
            )?;
            if graph.num_vertices() != index.num_vertices() {
                return Err(StoreError::GraphIndexMismatch {
                    graph_vertices: graph.num_vertices(),
                    index_vertices: index.num_vertices(),
                });
            }

            // v6: decode the journal and, when it holds pending deltas,
            // replay them over the base sections — applying each edit to a
            // delta overlay and repairing the labels incrementally — so
            // the store serves *current* state. An undecodable journal is
            // a hard error: silently dropping edits would serve stale
            // answers as if they were current.
            let journal =
                match &layout.journal {
                    None => None,
                    Some(range) => {
                        let words = cast_u64s(&bytes[range.clone()]);
                        Some(StoredJournal::decode(words).ok_or(StoreError::Corrupt {
                        what: "journal section cannot be decoded (unknown tag, op, or geometry)"
                            .into(),
                    })?)
                    }
                };
            let replayed = match &journal {
                Some(j) if !j.is_empty() => {
                    let mut overlay = DeltaGraph::new(graph);
                    let mut dynamic = DynamicIndex::from_view(index);
                    let mut cx = BuildContext::new();
                    for (i, &delta) in j.deltas.iter().enumerate() {
                        dynamic
                            .apply_and_repair(&mut overlay, delta, &mut cx)
                            .map_err(|e| StoreError::Corrupt {
                                what: format!("journal delta {i} ({delta}) cannot be applied: {e}"),
                            })?;
                    }
                    Some(ReplayedState {
                        graph: overlay.to_graph(),
                        index: dynamic.to_index(),
                    })
                }
                _ => None,
            };

            Ok(Self {
                backing,
                layout,
                converted_entries,
                journal,
                replayed,
            })
        }
    }

    /// The *current* graph: the replayed state for a journalled container
    /// with pending deltas, otherwise the base sections zero-copy from the
    /// backing.
    pub fn graph(&self) -> GraphView<'_> {
        match &self.replayed {
            Some(state) => state.graph.as_view(),
            None => self.base_graph(),
        }
    }

    /// The *current* index: the replayed (incrementally repaired) state
    /// for a journalled container with pending deltas, otherwise the base
    /// sections (zero-copy for v3+ files; label entries come from the
    /// converted array for v2 files).
    pub fn index(&self) -> IndexView<'_> {
        match &self.replayed {
            Some(state) => state.index.as_view(),
            None => self.base_index(),
        }
    }

    /// The graph exactly as stored in the base sections — the
    /// as-last-compacted state a journalled file's deltas replay over.
    /// Identical to [`graph`](IndexStore::graph) when the journal is
    /// empty or absent.
    pub fn base_graph(&self) -> GraphView<'_> {
        let bytes = self.backing.bytes();
        GraphView::from_csr_unchecked(
            cast_u64s(&bytes[self.layout.graph_offsets.clone()]),
            cast_u32s(&bytes[self.layout.graph_neighbors.clone()]),
        )
    }

    /// The index exactly as stored in the base sections; see
    /// [`base_graph`](IndexStore::base_graph).
    pub fn base_index(&self) -> IndexView<'_> {
        let bytes = self.backing.bytes();
        let entries = packed_entries(&self.layout.labels, &self.converted_entries, bytes);
        IndexView::from_parts_unchecked(
            cast_u32s(&bytes[self.layout.landmarks.clone()]),
            cast_u32s(&bytes[self.layout.landmark_rank.clone()]),
            cast_u64s(&bytes[self.layout.label_offsets.clone()]),
            entries,
            cast_u32s(&bytes[self.layout.highway.clone()]),
        )
    }

    /// The decoded delta journal of a v6 container, or `None` for files
    /// that predate the journal section or were written without one.
    pub fn journal(&self) -> Option<&StoredJournal> {
        self.journal.as_ref()
    }

    /// Size in bytes of the journal section on disk (0 when absent).
    pub fn journal_bytes(&self) -> u64 {
        self.layout
            .journal
            .as_ref()
            .map_or(0, |r| (r.end - r.start) as u64)
    }

    /// Header metadata (counts, version, checksum) — available without
    /// touching section bytes.
    pub fn meta(&self) -> StoreMeta {
        self.layout.meta
    }

    /// Per-section name/offset/size information for inspection tooling
    /// (7 sections for v3/v4 files, 8 for v2, 7 or 8 for v5).
    pub fn sections(&self) -> Vec<SectionInfo> {
        self.layout.sections()
    }

    /// The build counters recorded in the container's optional
    /// `build_stats` section (v5+), or `None` when the file predates the
    /// section, was written without one, or carries a stats layout this
    /// reader does not understand — deep-inspection tooling degrades
    /// gracefully on legacy containers.
    pub fn build_stats(&self) -> Option<StoredBuildStats> {
        let range = self.layout.build_stats.clone()?;
        let words = cast_u64s(&self.backing.bytes()[range]);
        StoredBuildStats::decode(words, self.layout.meta.num_landmarks)
    }

    /// Which backing serves this store: `"mmap"` or `"heap"`.
    pub fn backing_kind(&self) -> &'static str {
        self.backing.kind()
    }

    /// Total size of the container in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.layout.meta.file_len
    }

    /// Copies the stored graph and index into owned structures (a full
    /// deserialisation, for callers that want to drop the file).
    pub fn to_owned_parts(&self) -> (Graph, HighwayCoverIndex) {
        (self.graph().to_owned_graph(), self.index().to_owned_index())
    }

    /// Re-runs the whole-file CRC-64 pass over this store's live backing
    /// bytes, comparing against the checksum recorded in the header.
    ///
    /// This is the integrity-scrubber entry point: a store opened via
    /// [`open_trusted`](IndexStore::open_trusted) (which skipped the CRC
    /// pass), or one mapped long enough for storage rot to matter, can be
    /// re-verified in place without reopening. Returns
    /// [`StoreError::ChecksumMismatch`] when the bytes no longer hash to
    /// the header's value.
    pub fn verify_checksum(&self) -> Result<(), StoreError> {
        let computed = format::file_checksum(self.backing.bytes());
        let stored = self.layout.meta.checksum;
        if computed != stored {
            return Err(StoreError::ChecksumMismatch { stored, computed });
        }
        Ok(())
    }
}

/// Fully validates the container at `path` — header, section geometry,
/// whole-file CRC-64, and semantic CSR/label invariants — by reading it
/// into a heap buffer, without constructing a served store. Returns the
/// header metadata on success.
///
/// This is what the serving-path scrubber runs against a reload *source*:
/// it always re-reads the file's current bytes (an existing mmap of the
/// old inode would keep serving pre-rename contents), costs no mmap
/// bookkeeping, and drops the buffer before returning.
pub fn verify_file(path: impl AsRef<Path>) -> Result<StoreMeta, StoreError> {
    let mut file = File::open(path.as_ref())?;
    let len = file.metadata()?.len();
    let buf = AlignedBuf::read_from(&mut file, len as usize)?;
    let store = IndexStore::from_backing(Backing::Heap(buf), OpenMode::Validated)?;
    Ok(store.layout.meta)
}

/// Resolves the packed label-entry slice for a layout: straight from the
/// backing for v3, from the conversion buffer for v2 — the single source
/// of truth shared by open-time validation and the served view.
fn packed_entries<'a>(
    labels: &LabelRanges,
    converted: &'a Option<Vec<u64>>,
    bytes: &'a [u8],
) -> &'a [u64] {
    match (labels, converted) {
        (LabelRanges::Packed { entries }, _) => cast_u64s(&bytes[entries.clone()]),
        (LabelRanges::Split { .. }, Some(packed)) => packed,
        (LabelRanges::Split { .. }, None) => unreachable!("split labels always convert at open"),
    }
}

// Keep VertexId in the public-API surface story: sections store plain u32
// vertex ids, and this assert documents (at compile time) the assumption
// the 4-byte element size relies on.
const _: () = assert!(std::mem::size_of::<VertexId>() == 4);
