//! On-disk persistence for highway-cover indexes: a versioned, checksummed
//! binary container (`.hcl`) served back **zero-copy** through a memory
//! map.
//!
//! The motivating workflow is build-once / serve-many: one process runs the
//! expensive labelling and [`save`]s the result; any number of serving
//! processes [`IndexStore::open`] the file and answer queries immediately —
//! no edge-list parse, no rebuild, no deserialisation. On the supported
//! fast path (64-bit little-endian Unix) the file is `mmap`'d and the
//! little-endian fixed-width sections are reinterpreted in place as the
//! `GraphView` / `IndexView` slices the query engine runs on, so "load
//! time" is one page-table walk plus one validation pass, and resident
//! memory is shared between processes by the page cache.
//!
//! ```no_run
//! # use hcl_core::{Graph, testkit};
//! # use hcl_index::{HighwayCoverIndex, IndexConfig, QueryContext};
//! let graph = testkit::barabasi_albert(10_000, 5, 42);
//! let index = HighwayCoverIndex::build(&graph, IndexConfig::default());
//! hcl_store::save("web.hcl", &graph, &index)?;
//!
//! // …later, in a serving process:
//! let store = hcl_store::IndexStore::open("web.hcl")?;
//! let mut ctx = QueryContext::new();
//! let d = store.index().query_with(store.graph(), &mut ctx, 17, 4711);
//! # Ok::<(), hcl_store::StoreError>(())
//! ```
//!
//! Integrity: the container carries magic, version, declared length, and a
//! CRC-64 over the whole file, and every structural invariant of the CSR
//! arrays is validated once at open. Corrupt, truncated, or tampered input
//! yields a typed [`StoreError`] — never a panic, never UB. See
//! [`format`](self) docs in `format.rs` for the byte layout.
//!
//! Platforms without the mmap fast path (or callers preferring a private
//! copy) get the same API via [`IndexStore::open_preloaded`] /
//! [`IndexStore::from_bytes`], which read into an aligned heap buffer.
#![deny(missing_docs)]

mod backing;
mod checksum;
mod error;
mod format;

pub use checksum::crc64;
pub use error::StoreError;
pub use format::{
    rewrite_checksum, serialize, serialize_with, BuildInfo, SectionInfo, StoreMeta, FORMAT_VERSION,
    HEADER_LEN, MAGIC,
};

use backing::{cast_u32s, cast_u64s, AlignedBuf, Backing};
use format::Layout;
use hcl_core::{Graph, GraphView, VertexId};
use hcl_index::{HighwayCoverIndex, IndexView};
use std::fs::File;
use std::path::Path;

/// Serialises `graph` and `index` and writes them to `path` atomically,
/// leaving the header's build-metadata bytes unrecorded; see [`save_with`].
pub fn save(
    path: impl AsRef<Path>,
    graph: &Graph,
    index: &HighwayCoverIndex,
) -> Result<u64, StoreError> {
    save_with(path, graph, index, BuildInfo::default())
}

/// Serialises `graph` and `index` — recording `build` (builder threads and
/// landmark batch size) in the container header — and writes them to
/// `path` atomically: the bytes go to a temporary sibling file which is
/// then renamed over the target, so a concurrent reader either sees the
/// old complete container or the new one — never a truncated half-write,
/// and a process already serving the old file via mmap keeps its mapping
/// (the old inode stays alive until unmapped) instead of faulting on
/// truncated pages. Returns the number of bytes written.
pub fn save_with(
    path: impl AsRef<Path>,
    graph: &Graph,
    index: &HighwayCoverIndex,
    build: BuildInfo,
) -> Result<u64, StoreError> {
    let path = path.as_ref();
    let bytes = serialize_with(graph, index, build)?;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, &bytes)?;
    if let Err(e) = std::fs::rename(&tmp, path) {
        std::fs::remove_file(&tmp).ok();
        return Err(e.into());
    }
    Ok(bytes.len() as u64)
}

/// An opened, validated `.hcl` container serving borrowed graph and index
/// views.
///
/// All validation (header, checksum, section geometry, CSR and labelling
/// invariants) happens in the constructors; afterwards [`graph`]
/// (IndexStore::graph) and [`index`](IndexStore::index) are pointer
/// arithmetic over the backing bytes. The store must outlive the views it
/// hands out, which the borrow checker enforces.
pub struct IndexStore {
    backing: Backing,
    layout: Layout,
}

impl std::fmt::Debug for IndexStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexStore")
            .field("backing", &self.backing_kind())
            .field("meta", &self.layout.meta)
            .finish()
    }
}

impl IndexStore {
    /// Opens a container, preferring the zero-copy memory-mapped backing
    /// and falling back to a heap copy where mmap is unavailable.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref();
        let file = File::open(path)?;
        let len = file.metadata()?.len();

        #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
        {
            if len > 0 {
                if let Ok(map) = backing::mmap::Mmap::map(&file, len as usize) {
                    return Self::from_backing(Backing::Mmap(map));
                }
            }
        }
        Self::open_via_read(file, len)
    }

    /// Opens a container by reading it fully into an aligned heap buffer —
    /// the portable path, also useful when the file lives on storage where
    /// mapped page faults are slower than one sequential read.
    pub fn open_preloaded(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        Self::open_via_read(file, len)
    }

    fn open_via_read(mut file: File, len: u64) -> Result<Self, StoreError> {
        let buf = AlignedBuf::read_from(&mut file, len as usize)?;
        Self::from_backing(Backing::Heap(buf))
    }

    /// Validates an in-memory container image (copied into an aligned heap
    /// buffer). Handy for tests and for receiving index images over the
    /// network.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        Self::from_backing(Backing::Heap(AlignedBuf::copy_from(bytes)))
    }

    fn from_backing(backing: Backing) -> Result<Self, StoreError> {
        #[cfg(target_endian = "big")]
        {
            return Err(StoreError::UnsupportedPlatform {
                why: "zero-copy .hcl serving requires a little-endian host",
            });
        }
        #[cfg(not(target_endian = "big"))]
        {
            let layout = format::parse_and_validate(backing.bytes())?;
            let store = Self { backing, layout };
            // Semantic validation, once: afterwards the accessors can use
            // the unchecked view constructors.
            let bytes = store.backing.bytes();
            let graph = GraphView::from_csr(
                cast_u64s(&bytes[store.layout.graph_offsets.clone()]),
                cast_u32s(&bytes[store.layout.graph_neighbors.clone()]),
            )?;
            let index = IndexView::from_parts(
                cast_u32s(&bytes[store.layout.landmarks.clone()]),
                cast_u32s(&bytes[store.layout.landmark_rank.clone()]),
                cast_u64s(&bytes[store.layout.label_offsets.clone()]),
                cast_u32s(&bytes[store.layout.label_hubs.clone()]),
                cast_u32s(&bytes[store.layout.label_dists.clone()]),
                cast_u32s(&bytes[store.layout.highway.clone()]),
            )?;
            if graph.num_vertices() != index.num_vertices() {
                return Err(StoreError::GraphIndexMismatch {
                    graph_vertices: graph.num_vertices(),
                    index_vertices: index.num_vertices(),
                });
            }
            Ok(store)
        }
    }

    /// The stored graph, borrowed zero-copy from the backing.
    pub fn graph(&self) -> GraphView<'_> {
        let bytes = self.backing.bytes();
        GraphView::from_csr_unchecked(
            cast_u64s(&bytes[self.layout.graph_offsets.clone()]),
            cast_u32s(&bytes[self.layout.graph_neighbors.clone()]),
        )
    }

    /// The stored index, borrowed zero-copy from the backing.
    pub fn index(&self) -> IndexView<'_> {
        let bytes = self.backing.bytes();
        IndexView::from_parts_unchecked(
            cast_u32s(&bytes[self.layout.landmarks.clone()]),
            cast_u32s(&bytes[self.layout.landmark_rank.clone()]),
            cast_u64s(&bytes[self.layout.label_offsets.clone()]),
            cast_u32s(&bytes[self.layout.label_hubs.clone()]),
            cast_u32s(&bytes[self.layout.label_dists.clone()]),
            cast_u32s(&bytes[self.layout.highway.clone()]),
        )
    }

    /// Header metadata (counts, version, checksum) — available without
    /// touching section bytes.
    pub fn meta(&self) -> StoreMeta {
        self.layout.meta
    }

    /// Per-section name/offset/size information for inspection tooling.
    pub fn sections(&self) -> Vec<SectionInfo> {
        self.layout.sections().to_vec()
    }

    /// Which backing serves this store: `"mmap"` or `"heap"`.
    pub fn backing_kind(&self) -> &'static str {
        self.backing.kind()
    }

    /// Total size of the container in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.layout.meta.file_len
    }

    /// Copies the stored graph and index into owned structures (a full
    /// deserialisation, for callers that want to drop the file).
    pub fn to_owned_parts(&self) -> (Graph, HighwayCoverIndex) {
        (self.graph().to_owned_graph(), self.index().to_owned_index())
    }
}

// Keep VertexId in the public-API surface story: sections store plain u32
// vertex ids, and this assert documents (at compile time) the assumption
// the 4-byte element size relies on.
const _: () = assert!(std::mem::size_of::<VertexId>() == 4);
