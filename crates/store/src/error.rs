//! Typed load/store errors.
//!
//! Every way a `.hcl` file can be wrong maps to a distinct variant, so
//! callers (and tests) can tell truncation from tampering from version
//! skew. Corrupt input must *never* panic or cause UB — it surfaces here.

use hcl_core::CsrError;
use hcl_index::IndexDataError;
use std::fmt;
use std::io;

/// Failure to serialise, write, open, or validate a `.hcl` index container.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// Underlying filesystem / mmap error.
    Io(io::Error),
    /// The file does not start with the `HCLSTOR1` magic.
    BadMagic {
        /// The first eight bytes actually found.
        found: [u8; 8],
    },
    /// The format version is not one this build can read.
    UnsupportedVersion {
        /// Version number in the file.
        found: u32,
        /// Oldest version this build reads.
        oldest_supported: u32,
        /// Newest version this build reads (the one it writes).
        supported: u32,
    },
    /// The file is shorter than its header claims (or than the header
    /// itself).
    Truncated {
        /// Bytes the file should hold.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The stored checksum does not match the file contents.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum computed over the file.
        computed: u64,
    },
    /// Structurally invalid container (bad section table, overlapping or
    /// out-of-bounds sections, trailing bytes, inconsistent counts).
    Corrupt {
        /// Human-readable description of the inconsistency.
        what: String,
    },
    /// The graph arrays decoded but violate CSR invariants.
    InvalidGraph(CsrError),
    /// The index arrays decoded but violate labelling invariants.
    InvalidIndex(IndexDataError),
    /// Graph and index in the file disagree about the vertex count, or an
    /// index passed to [`serialize`](crate::serialize) was built for a
    /// different graph.
    GraphIndexMismatch {
        /// Vertex count of the graph arrays.
        graph_vertices: usize,
        /// Vertex count the index arrays imply.
        index_vertices: usize,
    },
    /// This build cannot serve the format on the current platform (the
    /// zero-copy path requires a little-endian host).
    UnsupportedPlatform {
        /// Why the platform is unsupported.
        why: &'static str,
    },
    /// The durable publish sequence failed at a named step (create-temp,
    /// write-temp, sync-temp, rename, sync-dir). The attempt's temp file
    /// was removed; the target path still holds whatever complete
    /// container it held before.
    Publish {
        /// Name of the [`PublishStep`](crate::durable::PublishStep) that
        /// failed.
        step: &'static str,
        /// The underlying I/O error (real or injected).
        source: io::Error,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic { found } => {
                write!(f, "not an hcl index file (magic {:02x?})", found)
            }
            StoreError::UnsupportedVersion {
                found,
                oldest_supported,
                supported,
            } => {
                write!(
                    f,
                    "format version {found} unsupported (this build reads \
                     {oldest_supported} through {supported})"
                )
            }
            StoreError::Truncated { expected, actual } => {
                write!(
                    f,
                    "file truncated: expected {expected} bytes, found {actual}"
                )
            }
            StoreError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: header says {stored:#018x}, file hashes to {computed:#018x}"
            ),
            StoreError::Corrupt { what } => write!(f, "corrupt container: {what}"),
            StoreError::InvalidGraph(e) => write!(f, "invalid graph arrays: {e}"),
            StoreError::InvalidIndex(e) => write!(f, "invalid index arrays: {e}"),
            StoreError::GraphIndexMismatch {
                graph_vertices,
                index_vertices,
            } => write!(
                f,
                "graph has {graph_vertices} vertices but index was built for {index_vertices}"
            ),
            StoreError::UnsupportedPlatform { why } => write!(f, "unsupported platform: {why}"),
            StoreError::Publish { step, source } => {
                write!(f, "durable publish failed at {step}: {source}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::InvalidGraph(e) => Some(e),
            StoreError::InvalidIndex(e) => Some(e),
            StoreError::Publish { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CsrError> for StoreError {
    fn from(e: CsrError) -> Self {
        StoreError::InvalidGraph(e)
    }
}

impl From<IndexDataError> for StoreError {
    fn from(e: IndexDataError) -> Self {
        StoreError::InvalidIndex(e)
    }
}
