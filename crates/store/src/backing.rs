//! Storage backings for an opened container: a read-only memory map on
//! platforms that support the zero-copy path, or an 8-byte-aligned heap
//! buffer everywhere (and as the explicit portable fallback).
//!
//! This module owns all the `unsafe` in the workspace. The invariants are
//! narrow and local:
//!
//! * [`Mmap`] wraps a `PROT_READ`/`MAP_PRIVATE` mapping of the whole file;
//!   the pointer is page-aligned (so 8-byte aligned) and valid for `len`
//!   bytes until `munmap` in `Drop`.
//! * [`AlignedBuf`] stores bytes inside a `Vec<u64>`, guaranteeing 8-byte
//!   base alignment for the same zero-copy slice casts the mmap path uses.
//! * [`cast_u32s`] / [`cast_u64s`] reinterpret validated, aligned byte
//!   ranges; both element types accept any bit pattern, so the casts are
//!   sound whenever alignment and length (checked by the format validator)
//!   hold.

/// Read-only whole-file memory mapping (64-bit little-endian Unix only —
/// the only platforms where the zero-copy serving path is enabled).
#[cfg(all(unix, not(miri), target_pointer_width = "64", target_endian = "little"))]
pub(crate) mod mmap {
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;
    use std::os::raw::{c_int, c_void};

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    // Direct libc FFI: the build environment has no registry access, so the
    // usual `memmap2` crate is not available. The symbols below are part of
    // POSIX and linked through std's libc dependency on every Unix target
    // this module compiles for (64-bit, so `off_t` is `i64`).
    extern "C" {
        fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, length: usize) -> c_int;
    }

    /// An immutable, whole-file, private memory mapping.
    pub(crate) struct Mmap {
        ptr: std::ptr::NonNull<c_void>,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ and never handed out mutably;
    // moving ownership of the pointer to another thread is sound.
    unsafe impl Send for Mmap {}
    // SAFETY: all access is through `&self` returning `&[u8]` into
    // read-only pages; concurrent readers cannot race.
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Maps `len` bytes of `file` read-only. `len` must be non-zero and
        /// no larger than the file (enforced by the caller reading the
        /// file's metadata immediately beforehand).
        pub(crate) fn map(file: &File, len: usize) -> io::Result<Self> {
            if len == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "cannot map an empty file",
                ));
            }
            // SAFETY: fd is a valid open file for the duration of the call;
            // we request a fresh private read-only mapping and check for
            // MAP_FAILED ((void*)-1) before trusting the result.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == usize::MAX as *mut c_void || ptr.is_null() {
                return Err(io::Error::last_os_error());
            }
            Ok(Self {
                // SAFETY: checked non-null above.
                ptr: unsafe { std::ptr::NonNull::new_unchecked(ptr) },
                len,
            })
        }

        /// The mapped bytes.
        pub(crate) fn bytes(&self) -> &[u8] {
            // SAFETY: ptr is a live PROT_READ mapping of exactly `len`
            // bytes, page-aligned, valid until Drop unmaps it.
            unsafe { std::slice::from_raw_parts(self.ptr.as_ptr().cast::<u8>(), self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: ptr/len describe a mapping we own and have not
            // unmapped before; failure here is unrecoverable but harmless.
            unsafe {
                munmap(self.ptr.as_ptr(), self.len);
            }
        }
    }
}

/// Bytes stored inside a `Vec<u64>`, guaranteeing the 8-byte base alignment
/// the zero-copy slice casts rely on. Construction is fully safe (chunked
/// `u64::from_le_bytes`); on the little-endian hosts the format serves,
/// [`AlignedBuf::bytes`] reproduces the input bytes exactly.
pub(crate) struct AlignedBuf {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    /// Copies `bytes` into an aligned buffer.
    pub(crate) fn copy_from(bytes: &[u8]) -> Self {
        let mut words = Vec::with_capacity(bytes.len().div_ceil(8));
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            words.push(u64::from_le_bytes(word));
        }
        Self {
            words,
            len: bytes.len(),
        }
    }

    /// Reads exactly `len` bytes from `reader` straight into an aligned
    /// buffer — one copy, no intermediate `Vec<u8>`, so loading a large
    /// container on the heap path costs peak memory of the file size, not
    /// twice it.
    pub(crate) fn read_from(reader: &mut impl std::io::Read, len: usize) -> std::io::Result<Self> {
        let mut words = vec![0u64; len.div_ceil(8)];
        // SAFETY: the Vec owns `words.len() * 8 >= len` bytes at alignment
        // 8 >= 1; u8 accepts any bit pattern, and the tail byte(s) of the
        // last word stay at their zero initialisation.
        let bytes = unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), len) };
        reader.read_exact(bytes)?;
        Ok(Self { words, len })
    }

    /// The stored bytes.
    pub(crate) fn bytes(&self) -> &[u8] {
        // SAFETY: the Vec owns at least `len` bytes (len <= words.len() * 8)
        // at alignment 8 >= 1; u8 accepts any bit pattern.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }
}

/// The storage behind an opened [`IndexStore`](crate::IndexStore).
pub(crate) enum Backing {
    /// Zero-copy memory mapping.
    #[cfg(all(unix, not(miri), target_pointer_width = "64", target_endian = "little"))]
    Mmap(mmap::Mmap),
    /// Heap copy (portable fallback, `from_bytes`, or explicit preload).
    Heap(AlignedBuf),
}

impl Backing {
    pub(crate) fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(all(unix, not(miri), target_pointer_width = "64", target_endian = "little"))]
            Backing::Mmap(m) => m.bytes(),
            Backing::Heap(b) => b.bytes(),
        }
    }

    pub(crate) fn kind(&self) -> &'static str {
        match self {
            #[cfg(all(unix, not(miri), target_pointer_width = "64", target_endian = "little"))]
            Backing::Mmap(_) => "mmap",
            Backing::Heap(_) => "heap",
        }
    }
}

/// Reinterprets an aligned, validated byte range as little-endian `u32`s.
///
/// # Panics
/// Panics if `bytes` is misaligned or not a multiple of 4 long — both are
/// checked by the format validator before any cast, so a panic here means a
/// bug in validation, not bad input.
pub(crate) fn cast_u32s(bytes: &[u8]) -> &[u32] {
    // SAFETY: u32 accepts any bit pattern; `align_to` computes the aligned
    // split, and the assertion confirms the whole range was aligned/sized.
    let (pre, mid, post) = unsafe { bytes.align_to::<u32>() };
    assert!(
        pre.is_empty() && post.is_empty(),
        "section not aligned/sized for u32 despite validation"
    );
    mid
}

/// Reinterprets an aligned, validated byte range as little-endian `u64`s.
///
/// # Panics
/// See [`cast_u32s`].
pub(crate) fn cast_u64s(bytes: &[u8]) -> &[u64] {
    // SAFETY: as in `cast_u32s`, with 8-byte alignment guaranteed by the
    // backing (page- or Vec<u64>-aligned base) plus validated offsets.
    let (pre, mid, post) = unsafe { bytes.align_to::<u64>() };
    assert!(
        pre.is_empty() && post.is_empty(),
        "section not aligned/sized for u64 despite validation"
    );
    mid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_buf_roundtrips_bytes() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let buf = AlignedBuf::copy_from(&data);
            assert_eq!(buf.bytes(), &data[..]);
            assert_eq!(buf.bytes().as_ptr() as usize % 8, 0);
        }
    }

    #[test]
    fn casts_reinterpret_little_endian() {
        let buf = AlignedBuf::copy_from(&[1, 0, 0, 0, 2, 0, 0, 0]);
        assert_eq!(cast_u32s(buf.bytes()), &[1, 2]);
        assert_eq!(cast_u64s(buf.bytes()), &[0x2_0000_0001]);
    }
}
