//! PR 7 benchmark: the probe hooks must be free when nobody is listening,
//! written to `BENCH_pr7.json` at the repo root.
//!
//! PR 7 made every query phase generic over a [`Probe`] so `--explain`,
//! the slow-query log, and the per-mechanism `/metrics` counters can watch
//! the engine work. The promise is that the *un-instrumented* path —
//! `query_with`, which monomorphises with `NoProbe` — compiles to the same
//! machine code as an engine with no hooks at all. This bench pins that:
//!
//! 1. **Baseline**: a faithful in-binary reimplementation of the pre-PR7
//!    query engine (packed-entry labels, linear/galloping merge, hoisted
//!    highway cross product, bitset residual BFS) with no probe parameter
//!    anywhere, run over the *same* index slices. Both engines answer the
//!    identical workload in one process, and the answers are cross-checked
//!    entry for entry, not just checksummed.
//! 2. **NoProbe**: the shipping `query_with` path. Mean latency must stay
//!    within **2 %** of the baseline (the acceptance bar); the best of
//!    several interleaved repetitions is compared so scheduler noise
//!    cannot fake a regression in either direction.
//! 3. **QueryStats**: `query_probed` with a live collector, reported for
//!    context — this is the price `--explain` and the slow-query log
//!    actually pay per query.
//!
//! `HCL_BENCH_SCALE=small` shrinks the graph and workload for CI smoke
//! runs (the JSON is then labelled accordingly).

use hcl_core::{testkit, DenseBitSet, GraphView, VertexId, INFINITY};
use hcl_index::{
    unpack_label_entry, HighwayCoverIndex, IndexConfig, IndexView, QueryContext, QueryStats,
};
use std::time::Instant;

const SEED: u64 = 0x9E37;
const LANDMARKS: usize = 32;
const INF64: u64 = u64::MAX;
const GALLOP_RATIO: usize = 8;

// ---------------------------------------------------------------------------
// Baseline: the pre-PR7 query engine, verbatim minus the probe hooks.
// ---------------------------------------------------------------------------

/// Borrows the live index's slices so both engines read the exact same
/// bytes — any latency difference is code, not data layout.
struct BaselineEngine<'a> {
    label_offsets: &'a [u64],
    label_entries: &'a [u64],
    highway: &'a [u32],
    landmarks: &'a [VertexId],
    num_vertices: usize,
}

#[derive(Default)]
struct BaselineContext {
    dist_fwd: Vec<u32>,
    dist_bwd: Vec<u32>,
    touched: Vec<VertexId>,
    frontier_fwd: Vec<VertexId>,
    frontier_bwd: Vec<VertexId>,
    next: Vec<VertexId>,
    landmark_bits: DenseBitSet,
    landmark_key: Vec<VertexId>,
    landmark_key_n: usize,
}

#[inline]
fn entry_hub(e: u64) -> u32 {
    unpack_label_entry(e).0
}

#[inline]
fn entry_dist(e: u64) -> u32 {
    unpack_label_entry(e).1
}

impl<'a> BaselineEngine<'a> {
    fn from_view(v: IndexView<'a>) -> Self {
        Self {
            label_offsets: v.label_offsets(),
            label_entries: v.label_entries(),
            highway: v.highway(),
            landmarks: v.landmarks(),
            num_vertices: v.num_vertices(),
        }
    }

    fn query(
        &self,
        graph: GraphView<'_>,
        ctx: &mut BaselineContext,
        u: VertexId,
        v: VertexId,
    ) -> Option<u32> {
        let n = self.num_vertices;
        assert_eq!(
            graph.num_vertices(),
            n,
            "index was built for a different graph"
        );
        assert!((u as usize) < n && (v as usize) < n, "vertex out of range");
        if u == v {
            return Some(0);
        }
        let bound = self.label_upper_bound(u, v);
        let best = self.residual_bfs(graph, ctx, u, v, bound);
        if best == INF64 {
            None
        } else {
            Some(best as u32)
        }
    }

    fn label_upper_bound(&self, u: VertexId, v: VertexId) -> u64 {
        let (u_lo, u_hi) = (
            self.label_offsets[u as usize] as usize,
            self.label_offsets[u as usize + 1] as usize,
        );
        let (v_lo, v_hi) = (
            self.label_offsets[v as usize] as usize,
            self.label_offsets[v as usize + 1] as usize,
        );
        let lu = &self.label_entries[u_lo..u_hi];
        let lv = &self.label_entries[v_lo..v_hi];

        let mut best = common_hub_bound(lu, lv);
        if lu.is_empty() || lv.is_empty() {
            return best;
        }

        let min_dv = lv
            .iter()
            .map(|&e| entry_dist(e))
            .filter(|&d| d != INFINITY)
            .min()
            .map_or(INF64, |d| d as u64);
        let k = self.landmarks.len();
        for &eu in lu {
            let (h1, d1u) = (entry_hub(eu) as usize, entry_dist(eu));
            if d1u == INFINITY {
                continue;
            }
            let d1 = d1u as u64;
            if d1.saturating_add(min_dv) >= best {
                continue;
            }
            let row = &self.highway[h1 * k..(h1 + 1) * k];
            for &ev in lv {
                let (h2, d2u) = (entry_hub(ev) as usize, entry_dist(ev));
                if h2 == h1 || d2u == INFINITY {
                    continue;
                }
                let base = d1 + d2u as u64;
                if base >= best {
                    continue;
                }
                let hw = row[h2];
                if hw == INFINITY {
                    continue;
                }
                let cand = base + hw as u64;
                if cand < best {
                    best = cand;
                }
            }
        }
        best
    }

    fn residual_bfs(
        &self,
        graph: GraphView<'_>,
        ctx: &mut BaselineContext,
        u: VertexId,
        v: VertexId,
        bound: u64,
    ) -> u64 {
        let n = self.num_vertices;
        if ctx.dist_fwd.len() < n {
            ctx.dist_fwd.resize(n, INFINITY);
            ctx.dist_bwd.resize(n, INFINITY);
        }
        // The pre-PR7 engine re-validated its cached landmark bitset on
        // every query (value comparison against the view's landmark list);
        // the baseline must pay the same check or it isn't a baseline.
        if ctx.landmark_key_n != n || ctx.landmark_key != self.landmarks {
            ctx.landmark_bits.reset(n);
            for &l in self.landmarks {
                ctx.landmark_bits.insert(l as usize);
            }
            ctx.landmark_key.clear();
            ctx.landmark_key.extend_from_slice(self.landmarks);
            ctx.landmark_key_n = n;
        }
        ctx.frontier_fwd.clear();
        ctx.frontier_bwd.clear();
        ctx.dist_fwd[u as usize] = 0;
        ctx.dist_bwd[v as usize] = 0;
        ctx.touched.push(u);
        ctx.touched.push(v);
        ctx.frontier_fwd.push(u);
        ctx.frontier_bwd.push(v);

        let mut best = bound;
        let mut depth_fwd: u64 = 0;
        let mut depth_bwd: u64 = 0;
        let landmark_bits = &ctx.landmark_bits;

        while !ctx.frontier_fwd.is_empty()
            && !ctx.frontier_bwd.is_empty()
            && depth_fwd + depth_bwd + 1 < best
        {
            let forward = ctx.frontier_fwd.len() <= ctx.frontier_bwd.len();
            let (frontier, dist_mine, dist_other, depth) = if forward {
                (
                    &ctx.frontier_fwd,
                    &mut ctx.dist_fwd,
                    &ctx.dist_bwd,
                    &mut depth_fwd,
                )
            } else {
                (
                    &ctx.frontier_bwd,
                    &mut ctx.dist_bwd,
                    &ctx.dist_fwd,
                    &mut depth_bwd,
                )
            };
            ctx.next.clear();
            let next_depth = (*depth + 1) as u32;
            for &x in frontier {
                for &w in graph.neighbors(x) {
                    let other = dist_other[w as usize];
                    if other != INFINITY {
                        best = best.min(*depth + 1 + other as u64);
                    }
                    if landmark_bits.contains(w as usize) {
                        continue;
                    }
                    if dist_mine[w as usize] == INFINITY {
                        dist_mine[w as usize] = next_depth;
                        ctx.touched.push(w);
                        ctx.next.push(w);
                    }
                }
            }
            *depth += 1;
            if forward {
                std::mem::swap(&mut ctx.frontier_fwd, &mut ctx.next);
            } else {
                std::mem::swap(&mut ctx.frontier_bwd, &mut ctx.next);
            }
        }

        for &x in &ctx.touched {
            ctx.dist_fwd[x as usize] = INFINITY;
            ctx.dist_bwd[x as usize] = INFINITY;
        }
        ctx.touched.clear();
        best
    }
}

fn common_hub_bound(lu: &[u64], lv: &[u64]) -> u64 {
    let (small, large) = if lu.len() <= lv.len() {
        (lu, lv)
    } else {
        (lv, lu)
    };
    if small.is_empty() {
        return INF64;
    }
    if large.len() / small.len() >= GALLOP_RATIO {
        galloping_merge_bound(small, large)
    } else {
        linear_merge_bound(small, large)
    }
}

fn linear_merge_bound(a: &[u64], b: &[u64]) -> u64 {
    let mut best = INF64;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match entry_hub(a[i]).cmp(&entry_hub(b[j])) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let (da, db) = (entry_dist(a[i]), entry_dist(b[j]));
                if da != INFINITY && db != INFINITY {
                    best = best.min(da as u64 + db as u64);
                }
                i += 1;
                j += 1;
            }
        }
    }
    best
}

fn galloping_merge_bound(small: &[u64], large: &[u64]) -> u64 {
    const HUB_MASK: u64 = 0xFFFF_FFFF_0000_0000;
    let mut best = INF64;
    let mut from = 0usize;
    for &es in small {
        let target = es & HUB_MASK;
        let mut step = 1usize;
        while from + step < large.len() && large[from + step] & HUB_MASK < target {
            step *= 2;
        }
        let lo = from + step / 2;
        let hi = (from + step + 1).min(large.len());
        let idx = lo + large[lo..hi].partition_point(|&e| e & HUB_MASK < target);
        if idx >= large.len() {
            break;
        }
        let el = large[idx];
        if el & HUB_MASK == target {
            let (ds, dl) = (entry_dist(es), entry_dist(el));
            if ds != INFINITY && dl != INFINITY {
                best = best.min(ds as u64 + dl as u64);
            }
            from = idx + 1;
        } else {
            from = idx;
        }
        if from >= large.len() {
            break;
        }
    }
    best
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

fn checksum(answers: &[Option<u32>]) -> u64 {
    answers.iter().fold(0u64, |acc, a| {
        acc.wrapping_mul(0x100000001b3)
            .wrapping_add(a.map_or(u64::MAX, |d| d as u64))
    })
}

fn main() {
    let small = std::env::var("HCL_BENCH_SCALE").is_ok_and(|s| s == "small");
    let (num_vertices, num_queries, reps) = if small {
        (2_000usize, 4_000usize, 5usize)
    } else {
        (50_000, 20_000, 7)
    };

    let g = testkit::barabasi_albert(num_vertices, 5, SEED);
    let gv = g.as_view();
    eprintln!(
        "bench graph: BA({num_vertices}, 5), {} edges{}",
        g.num_edges(),
        if small { " [small scale]" } else { "" }
    );
    let index = HighwayCoverIndex::build(
        &g,
        IndexConfig {
            num_landmarks: LANDMARKS,
        },
    );
    let iv = index.as_view();
    let stats = index.stats();
    eprintln!(
        "index: {} landmarks, {} label entries",
        stats.num_landmarks, stats.total_label_entries
    );

    let mut rng = testkit::SplitMix64::new(SEED ^ 0xF00D);
    let pairs: Vec<(VertexId, VertexId)> = (0..num_queries)
        .map(|_| {
            (
                rng.next_below(num_vertices as u64) as VertexId,
                rng.next_below(num_vertices as u64) as VertexId,
            )
        })
        .collect();

    let baseline = BaselineEngine::from_view(iv);
    let mut bctx = BaselineContext::default();
    let mut ctx = QueryContext::new();
    let mut qstats = QueryStats::new();

    // Warm up all three paths (grows buffers, faults pages, primes caches).
    let mut bl_answers: Vec<Option<u32>> = Vec::with_capacity(pairs.len());
    let mut answers: Vec<Option<u32>> = Vec::with_capacity(pairs.len());
    let mut probed_answers: Vec<Option<u32>> = Vec::with_capacity(pairs.len());
    for &(u, v) in pairs.iter().take(500) {
        bl_answers.push(baseline.query(gv, &mut bctx, u, v));
        answers.push(iv.query_with(gv, &mut ctx, u, v));
        probed_answers.push(iv.query_probed(gv, &mut ctx, u, v, &mut qstats));
    }

    // Interleave repetitions (baseline, noprobe, probed, baseline, …) and
    // keep each engine's best rep, so a background hiccup hits one rep of
    // one engine, not the whole comparison.
    let mut best_baseline_ns = u128::MAX;
    let mut best_noprobe_ns = u128::MAX;
    let mut best_probed_ns = u128::MAX;
    for rep in 0..reps {
        bl_answers.clear();
        let t = Instant::now();
        for &(u, v) in &pairs {
            bl_answers.push(baseline.query(gv, &mut bctx, u, v));
        }
        best_baseline_ns = best_baseline_ns.min(t.elapsed().as_nanos());

        answers.clear();
        let t = Instant::now();
        for &(u, v) in &pairs {
            answers.push(iv.query_with(gv, &mut ctx, u, v));
        }
        best_noprobe_ns = best_noprobe_ns.min(t.elapsed().as_nanos());

        probed_answers.clear();
        let t = Instant::now();
        for &(u, v) in &pairs {
            probed_answers.push(iv.query_probed(gv, &mut ctx, u, v, &mut qstats));
        }
        best_probed_ns = best_probed_ns.min(t.elapsed().as_nanos());

        if rep == 0 {
            assert_eq!(
                answers, bl_answers,
                "NoProbe engine disagrees with the pre-probe baseline — a probe changed an answer"
            );
            assert_eq!(
                answers, probed_answers,
                "a live QueryStats probe changed an answer — probes must only observe"
            );
        }
    }

    let n = pairs.len() as f64;
    let mean_baseline = best_baseline_ns as f64 / n;
    let mean_noprobe = best_noprobe_ns as f64 / n;
    let mean_probed = best_probed_ns as f64 / n;
    let overhead_pct = (mean_noprobe / mean_baseline - 1.0) * 100.0;
    let probed_pct = (mean_probed / mean_baseline - 1.0) * 100.0;
    let within_budget = overhead_pct <= 2.0;

    eprintln!("baseline (no hooks):     {mean_baseline:.0} ns/query (best of {reps} reps)");
    eprintln!(
        "query_with (NoProbe):    {mean_noprobe:.0} ns/query ({overhead_pct:+.2} % vs baseline)"
    );
    eprintln!(
        "query_probed (stats):    {mean_probed:.0} ns/query ({probed_pct:+.2} % vs baseline)"
    );
    eprintln!(
        "NoProbe overhead budget ≤ 2 %: {}",
        if within_budget { "PASS" } else { "FAIL" }
    );

    let cs = checksum(&answers);
    assert_eq!(cs, checksum(&bl_answers), "checksum mismatch vs baseline");
    assert_eq!(cs, checksum(&probed_answers), "checksum mismatch vs probed");

    let json = format!(
        "{{\n  \"bench\": \"pr7_probe_overhead\",\n  \"scale\": \"{}\",\n  \
         \"graph\": {{\"family\": \"barabasi_albert\", \"vertices\": {num_vertices}, \
         \"edges\": {}, \"m\": 5, \"seed\": {SEED}}},\n  \
         \"index\": {{\"landmarks\": {}, \"label_entries\": {}}},\n  \
         \"workload\": {{\"queries\": {}, \"reps\": {reps}}},\n  \
         \"baseline_mean_ns\": {mean_baseline:.1},\n  \
         \"noprobe_mean_ns\": {mean_noprobe:.1},\n  \
         \"noprobe_overhead_pct\": {overhead_pct:.3},\n  \
         \"noprobe_within_2pct\": {within_budget},\n  \
         \"querystats_mean_ns\": {mean_probed:.1},\n  \
         \"querystats_overhead_pct\": {probed_pct:.3},\n  \
         \"answers_identical\": true,\n  \
         \"answers_checksum\": {cs}\n}}\n",
        if small { "small" } else { "full" },
        g.num_edges(),
        stats.num_landmarks,
        stats.total_label_entries,
        pairs.len(),
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr7.json");
    std::fs::write(out_path, &json).expect("writing BENCH_pr7.json");
    eprintln!("wrote {out_path}");

    assert!(
        within_budget,
        "NoProbe path is {overhead_pct:.2} % slower than the pre-probe baseline (budget: 2 %)"
    );
}
