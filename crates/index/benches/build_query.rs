//! Micro-benchmark: index build time and query latency on a generated
//! 10k-node Erdős–Rényi graph, written to `BENCH_pr1.json` at the repo
//! root. Runs under `cargo bench` (plain std::time harness; the container
//! has no registry access, so no criterion).

use hcl_core::{testkit, VertexId};
use hcl_index::{HighwayCoverIndex, IndexConfig, QueryContext};
use std::time::Instant;

const NUM_VERTICES: usize = 10_000;
const AVG_DEGREE: f64 = 10.0;
const SEED: u64 = 2024;
const NUM_QUERIES: usize = 20_000;
const BUILD_REPS: usize = 3;

fn percentile(sorted_ns: &[u128], p: f64) -> u128 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx]
}

fn main() {
    // `cargo bench` passes harness flags like `--bench`; ignore them.
    let g = testkit::erdos_renyi_avg_degree(NUM_VERTICES, AVG_DEGREE, SEED);
    eprintln!(
        "bench graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // Index build: best of BUILD_REPS.
    let mut build_ns = Vec::new();
    let mut index = None;
    for _ in 0..BUILD_REPS {
        let t = Instant::now();
        let idx = HighwayCoverIndex::build(&g, IndexConfig::default());
        build_ns.push(t.elapsed().as_nanos());
        index = Some(idx);
    }
    let index = index.expect("BUILD_REPS > 0");
    let stats = index.stats();
    let best_build_ns = *build_ns.iter().min().expect("non-empty");
    eprintln!(
        "build: best of {BUILD_REPS} = {:.2} ms ({} label entries)",
        best_build_ns as f64 / 1e6,
        stats.total_label_entries
    );

    // Query latency over random pairs, per-query timed for percentiles.
    let mut rng = testkit::SplitMix64::new(SEED ^ 0x5eed);
    let pairs: Vec<(VertexId, VertexId)> = (0..NUM_QUERIES)
        .map(|_| {
            (
                rng.next_below(NUM_VERTICES as u64) as VertexId,
                rng.next_below(NUM_VERTICES as u64) as VertexId,
            )
        })
        .collect();

    let mut ctx = QueryContext::new();
    // Warm-up pass (first queries grow the context buffers).
    let mut checksum = 0u64;
    for &(u, v) in pairs.iter().take(100) {
        if let Some(d) = index.query_with(&g, &mut ctx, u, v) {
            checksum = checksum.wrapping_add(d as u64);
        }
    }

    let mut per_query_ns: Vec<u128> = Vec::with_capacity(pairs.len());
    let t_all = Instant::now();
    for &(u, v) in &pairs {
        let t = Instant::now();
        let d = index.query_with(&g, &mut ctx, u, v);
        per_query_ns.push(t.elapsed().as_nanos());
        if let Some(d) = d {
            checksum = checksum.wrapping_add(d as u64);
        }
    }
    let total_query_ns = t_all.elapsed().as_nanos();
    per_query_ns.sort_unstable();
    let (p50, p99) = (
        percentile(&per_query_ns, 0.50),
        percentile(&per_query_ns, 0.99),
    );
    let mean = total_query_ns as f64 / pairs.len() as f64;
    eprintln!(
        "query: {} queries, mean {:.0} ns, p50 {} ns, p99 {} ns (checksum {})",
        pairs.len(),
        mean,
        p50,
        p99,
        checksum
    );

    let json = format!(
        "{{\n  \"bench\": \"pr1_build_query\",\n  \"graph\": {{\"family\": \"erdos_renyi\", \
         \"vertices\": {}, \"edges\": {}, \"avg_degree_target\": {AVG_DEGREE}, \"seed\": {SEED}}},\n  \
         \"index\": {{\"landmarks\": {}, \"label_entries\": {}, \"avg_label_size\": {:.3}, \
         \"bytes\": {}}},\n  \"build\": {{\"reps\": {BUILD_REPS}, \"best_ns\": {best_build_ns}}},\n  \
         \"query\": {{\"count\": {}, \"mean_ns\": {:.1}, \"p50_ns\": {p50}, \"p99_ns\": {p99}, \
         \"checksum\": {checksum}}}\n}}\n",
        g.num_vertices(),
        g.num_edges(),
        stats.num_landmarks,
        stats.total_label_entries,
        stats.avg_label_size,
        stats.bytes,
        pairs.len(),
        mean,
    );

    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr1.json");
    std::fs::write(out_path, &json).expect("writing BENCH_pr1.json");
    eprintln!("wrote {out_path}");

    // Keep the checksum observable so the optimiser cannot delete the loop,
    // and sanity-check a couple of answers against the oracle.
    let (u, v) = pairs[0];
    assert_eq!(index.query(&g, u, v), hcl_core::bfs::distance(&g, u, v));
    let _ = std::hint::black_box(checksum);
}
