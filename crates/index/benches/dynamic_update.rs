//! PR 10 benchmark: incremental label repair vs. full rebuild, written
//! to `BENCH_pr10.json` at the repo root.
//!
//! The dynamic-graphs PR claims that an edge insert can be absorbed by
//! stripping and re-growing only the **affected landmark trees** instead
//! of rebuilding the labelling from scratch. This bench quantifies that
//! on a Barabási–Albert graph (100k vertices at full scale):
//!
//! 1. For each edit-batch size, apply the batch of inserts through
//!    [`DynamicIndex::apply_and_repair`] and record the per-delta repair
//!    latency and how many landmark trees each delta touched.
//! 2. Rebuild the index from scratch on the edited graph and record the
//!    rebuild time — the cost the repair path avoids.
//! 3. **Answer identity**: the repaired and rebuilt indexes answer an
//!    identical random workload, compared entry for entry and recorded
//!    as a checksum in the JSON. A repair that drifted from the rebuild
//!    oracle fails the bench, not just the number.
//! 4. One edge **delete** is timed for context: a delete whose affected
//!    set is non-empty falls back to a full relabel by design (see
//!    `index/src/repair.rs`), so its latency is expected to sit near the
//!    rebuild cost rather than the insert repair cost.
//!
//! `HCL_BENCH_SCALE=small` shrinks the graph and workload for CI smoke
//! runs (the JSON is then labelled accordingly).

use hcl_core::{testkit, DeltaGraph, EdgeDelta, Graph, VertexId};
use hcl_index::{BuildContext, BuildOptions, DynamicIndex, HighwayCoverIndex, QueryContext};
use std::time::Instant;

const SEED: u64 = 0xD15C;
const LANDMARKS: usize = 32;

fn build(graph: &Graph) -> HighwayCoverIndex {
    HighwayCoverIndex::build_with(
        graph,
        &BuildOptions {
            num_landmarks: LANDMARKS,
            ..Default::default()
        },
    )
}

fn answers(
    graph: &Graph,
    index: &HighwayCoverIndex,
    pairs: &[(VertexId, VertexId)],
) -> Vec<Option<u32>> {
    let (gv, iv) = (graph.as_view(), index.as_view());
    let mut ctx = QueryContext::new();
    pairs
        .iter()
        .map(|&(u, v)| iv.query_with(gv, &mut ctx, u, v))
        .collect()
}

fn checksum(answers: &[Option<u32>]) -> u64 {
    answers.iter().fold(0u64, |acc, a| {
        acc.wrapping_mul(0x100000001b3)
            .wrapping_add(a.map_or(u64::MAX, |d| d as u64))
    })
}

/// `count` random non-adjacent pairs of the evolving graph, applied
/// nowhere yet — the insert scripts.
fn pick_non_edges(graph: &Graph, count: usize, rng: &mut testkit::SplitMix64) -> Vec<(u32, u32)> {
    let n = graph.num_vertices() as u64;
    let mut picked = Vec::with_capacity(count);
    while picked.len() < count {
        let a = rng.next_below(n) as u32;
        let b = rng.next_below(n) as u32;
        let (u, v) = (a.min(b), a.max(b));
        if u == v || graph.as_view().neighbors(u).contains(&v) || picked.contains(&(u, v)) {
            continue;
        }
        picked.push((u, v));
    }
    picked
}

fn main() {
    let small = std::env::var("HCL_BENCH_SCALE").is_ok_and(|s| s == "small");
    let (num_vertices, num_queries, batches): (usize, usize, &[usize]) = if small {
        (3_000, 2_000, &[1, 4, 16])
    } else {
        (100_000, 10_000, &[1, 10, 100])
    };

    let base = testkit::barabasi_albert(num_vertices, 5, SEED);
    eprintln!(
        "bench graph: BA({num_vertices}, 5), {} edges{}",
        base.num_edges(),
        if small { " [small scale]" } else { "" }
    );

    let t = Instant::now();
    let base_index = build(&base);
    let base_build_ns = t.elapsed().as_nanos();
    eprintln!("base build: {LANDMARKS} landmarks in {:.2?}", t.elapsed());

    let mut rng = testkit::SplitMix64::new(SEED ^ 0xF00D);
    let pairs: Vec<(VertexId, VertexId)> = (0..num_queries)
        .map(|_| {
            (
                rng.next_below(num_vertices as u64) as VertexId,
                rng.next_below(num_vertices as u64) as VertexId,
            )
        })
        .collect();

    let mut cx = BuildContext::new();
    let mut rows = String::new();
    let mut last_state: Option<(Graph, DynamicIndex)> = None;
    for (i, &batch) in batches.iter().enumerate() {
        // Restart each batch from the pristine base so batch sizes are
        // comparable (every run edits the same starting labelling).
        let mut current = base.clone();
        let mut dynamic = DynamicIndex::from_view(base_index.as_view());
        let script = pick_non_edges(&current, batch, &mut rng);

        let mut trees = 0usize;
        let t = Instant::now();
        for &(u, v) in &script {
            let mut overlay = DeltaGraph::new(current.as_view());
            let outcome = dynamic
                .apply_and_repair(&mut overlay, EdgeDelta::insert(u, v), &mut cx)
                .expect("bench delta must be valid");
            assert!(outcome.applied, "picked non-edge was already present");
            trees += outcome.affected_landmarks;
            current = overlay.to_graph();
        }
        let repair_ns = t.elapsed().as_nanos();
        let repaired = dynamic.to_index();

        let t = Instant::now();
        let rebuilt = build(&current);
        let rebuild_ns = t.elapsed().as_nanos();

        let repaired_answers = answers(&current, &repaired, &pairs);
        let rebuilt_answers = answers(&current, &rebuilt, &pairs);
        assert_eq!(
            repaired_answers, rebuilt_answers,
            "repaired index disagrees with a fresh rebuild at batch size {batch}"
        );
        let cs = checksum(&repaired_answers);

        let per_delta_ns = repair_ns as f64 / batch as f64;
        let speedup = rebuild_ns as f64 / per_delta_ns;
        eprintln!(
            "batch {batch:>4}: {per_delta_ns:>12.0} ns/insert ({:.1} trees/insert), \
             rebuild {rebuild_ns} ns, speedup {speedup:.1}x, checksum {cs}",
            trees as f64 / batch as f64
        );
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"batch\": {batch}, \"insert_mean_ns\": {per_delta_ns:.1}, \
             \"trees_per_insert\": {:.2}, \"rebuild_ns\": {rebuild_ns}, \
             \"speedup_vs_rebuild\": {speedup:.2}, \"answers_identical\": true, \
             \"answers_checksum\": {cs}}}",
            trees as f64 / batch as f64
        ));
        last_state = Some((current, dynamic));
    }

    // One delete for context: deleting an edge the repair path inserted
    // above. Its affected set is non-empty, so this is the full-relabel
    // fallback — honest numbers, not a hidden fast path.
    let (mut current, mut dynamic) = last_state.expect("at least one batch ran");
    let last_edge = {
        let u = (0..current.num_vertices() as u32)
            .max_by_key(|&u| current.as_view().neighbors(u).len())
            .expect("non-empty graph");
        let v = current.as_view().neighbors(u)[0];
        (u, v)
    };
    let t = Instant::now();
    let outcome = {
        let mut overlay = DeltaGraph::new(current.as_view());
        let outcome = dynamic
            .apply_and_repair(
                &mut overlay,
                EdgeDelta::delete(last_edge.0, last_edge.1),
                &mut cx,
            )
            .expect("delete of an existing edge is valid");
        current = overlay.to_graph();
        outcome
    };
    let delete_ns = t.elapsed().as_nanos();
    assert!(outcome.applied);
    let deleted_repaired = dynamic.to_index();
    let t = Instant::now();
    let deleted_rebuilt = build(&current);
    let delete_rebuild_ns = t.elapsed().as_nanos();
    let del_repaired = answers(&current, &deleted_repaired, &pairs);
    assert_eq!(
        del_repaired,
        answers(&current, &deleted_rebuilt, &pairs),
        "delete-repaired index disagrees with a fresh rebuild"
    );
    eprintln!(
        "delete: {delete_ns} ns (full_relabel={}), rebuild {delete_rebuild_ns} ns",
        outcome.full_relabel
    );

    let json = format!(
        "{{\n  \"bench\": \"pr10_dynamic_update\",\n  \"scale\": \"{}\",\n  \
         \"graph\": {{\"family\": \"barabasi_albert\", \"vertices\": {num_vertices}, \
         \"edges\": {}, \"m\": 5, \"seed\": {SEED}}},\n  \
         \"index\": {{\"landmarks\": {LANDMARKS}}},\n  \
         \"workload\": {{\"queries\": {num_queries}}},\n  \
         \"base_build_ns\": {base_build_ns},\n  \
         \"insert_batches\": [\n{rows}\n  ],\n  \
         \"delete\": {{\"repair_ns\": {delete_ns}, \"full_relabel\": {}, \
         \"rebuild_ns\": {delete_rebuild_ns}, \"answers_identical\": true, \
         \"answers_checksum\": {}}}\n}}\n",
        if small { "small" } else { "full" },
        base.num_edges(),
        outcome.full_relabel,
        checksum(&del_repaired),
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr10.json");
    std::fs::write(out_path, &json).expect("writing BENCH_pr10.json");
    eprintln!("wrote {out_path}");
}
