//! Cross-strategy landmark-selection benchmark: build time, label size,
//! and query latency for every built-in [`SelectionStrategy`] on a
//! paper-scale (≥100k-vertex) Barabási–Albert graph, written to
//! `BENCH_pr5.json` at the repo root. Runs under `cargo bench` (plain
//! std::time harness; the container has no registry access, so no
//! criterion).
//!
//! This is the experiment the pluggable-selection tentpole exists for: the
//! paper's degree ranking against a sampled-coverage ordering and a seeded
//! random baseline, on the hub-dominated topology the scheme targets.
//! Expectation (and what the JSON lets CI history confirm): degree and
//! coverage ranking land within a small factor of each other, while the
//! random baseline pays for unlabelled hubs with much larger residual BFS
//! fallbacks — the gap *is* the value of informed selection. A handful of
//! answers per strategy are cross-checked against the BFS oracle, so the
//! numbers can never come from a wrong index.
//!
//! `HCL_BENCH_SCALE=small` shrinks the graph and workload for CI smoke.

use hcl_core::{testkit, VertexId};
use hcl_index::{BuildOptions, HighwayCoverIndex, QueryContext, SelectionStrategy};
use std::time::Instant;

const BA_EDGES_PER_VERTEX: usize = 5;
const SEED: u64 = 2027;
const NUM_LANDMARKS: usize = 32;
const STRATEGY_SEED: u64 = 7;

fn main() {
    let small = std::env::var("HCL_BENCH_SCALE").as_deref() == Ok("small");
    let (num_vertices, num_queries) = if small {
        (5_000, 2_000)
    } else {
        (120_000, 20_000)
    };

    let t = Instant::now();
    let g = testkit::barabasi_albert(num_vertices, BA_EDGES_PER_VERTEX, SEED);
    eprintln!(
        "bench graph: {} vertices, {} edges (generated in {:.1?})",
        g.num_vertices(),
        g.num_edges(),
        t.elapsed()
    );

    let mut rng = testkit::SplitMix64::new(SEED ^ 0x5eed);
    let pairs: Vec<(VertexId, VertexId)> = (0..num_queries)
        .map(|_| {
            (
                rng.next_below(num_vertices as u64) as VertexId,
                rng.next_below(num_vertices as u64) as VertexId,
            )
        })
        .collect();

    let strategies = [
        SelectionStrategy::DegreeRank,
        SelectionStrategy::ApproxCoverage {
            seed: STRATEGY_SEED,
        },
        SelectionStrategy::SeededRandom {
            seed: STRATEGY_SEED,
        },
    ];

    let mut rows: Vec<String> = Vec::new();
    for strategy in strategies {
        let options = BuildOptions {
            num_landmarks: NUM_LANDMARKS,
            threads: 1,
            batch_size: 0,
            selection: Some(strategy),
        };
        let t = Instant::now();
        let index = HighwayCoverIndex::build_with(&g, &options);
        let build_ns = t.elapsed().as_nanos();
        let stats = index.stats();

        let mut ctx = QueryContext::new();
        let mut checksum = 0u64;
        // Warm-up grows the context buffers off the clock.
        for &(u, v) in pairs.iter().take(100) {
            if let Some(d) = index.query_with(&g, &mut ctx, u, v) {
                checksum = checksum.wrapping_add(d as u64);
            }
        }
        let t = Instant::now();
        for &(u, v) in &pairs {
            if let Some(d) = index.query_with(&g, &mut ctx, u, v) {
                checksum = checksum.wrapping_add(d as u64);
            }
        }
        let query_ns = t.elapsed().as_nanos();
        let mean_ns = query_ns as f64 / pairs.len() as f64;

        // Exactness spot-check: selection must never change an answer.
        for &(u, v) in pairs.iter().take(5) {
            assert_eq!(
                index.query(&g, u, v),
                hcl_core::bfs::distance(&g, u, v),
                "strategy {strategy} answered wrong at ({u}, {v})"
            );
        }

        eprintln!(
            "{strategy}: build {:.1} ms, {} entries ({:.2}/vertex), mean query {:.0} ns \
             (checksum {})",
            build_ns as f64 / 1e6,
            stats.total_label_entries,
            stats.avg_label_size,
            mean_ns,
            checksum
        );
        rows.push(format!(
            "{{\"strategy\": \"{strategy}\", \"build_ns\": {build_ns}, \"label_entries\": {}, \
             \"entries_per_vertex\": {:.4}, \"mean_query_ns\": {mean_ns:.1}, \
             \"checksum\": {checksum}}}",
            stats.total_label_entries, stats.avg_label_size
        ));
        std::hint::black_box(checksum);
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"pr5_strategy_compare\",\n  \"available_parallelism\": {cores},\n  \
         \"graph\": {{\"family\": \"barabasi_albert\", \"vertices\": {}, \"edges\": {}, \
         \"m\": {BA_EDGES_PER_VERTEX}, \"seed\": {SEED}}},\n  \
         \"landmarks\": {NUM_LANDMARKS},\n  \"queries\": {},\n  \"strategies\": [\n    {}\n  ]\n}}\n",
        g.num_vertices(),
        g.num_edges(),
        pairs.len(),
        rows.join(",\n    ")
    );
    if small {
        eprintln!("small scale: skipping BENCH_pr5.json write\n{json}");
        return;
    }
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr5.json");
    std::fs::write(out_path, &json).expect("writing BENCH_pr5.json");
    eprintln!("wrote {out_path}");
}
