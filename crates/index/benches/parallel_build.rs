//! Parallel-build benchmark: index construction time at 1/2/4/8 worker
//! threads on a 100k-vertex Barabási–Albert (power-law) graph, written to
//! `BENCH_pr3.json` at the repo root. Runs under `cargo bench` (plain
//! std::time harness; the container has no registry access, so no
//! criterion). Also asserts the builds are identical across thread counts
//! — the determinism contract the speedup must not cost.
//!
//! The JSON records `available_parallelism` alongside the timings: on a
//! single-core machine the thread sweep can only measure oversubscription
//! overhead (speedup ≈ 1), while the per-batch sharding gives near-linear
//! gains up to `min(batch_size, cores)` where cores exist — interpret the
//! speedup column against that field.

use hcl_index::{BuildContext, BuildOptions, HighwayCoverIndex};
use std::time::Instant;

const NUM_VERTICES: usize = 100_000;
const BA_EDGES_PER_VERTEX: usize = 5;
const SEED: u64 = 2026;
const NUM_LANDMARKS: usize = 32;
const BUILD_REPS: usize = 3;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Cheap structural fingerprint: array lengths plus an order-sensitive
/// running hash over every element, enough to catch any divergence.
fn fingerprint(idx: &HighwayCoverIndex) -> u64 {
    let v = idx.as_view();
    let mut h = 0xcbf29ce484222325u64;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x100000001b3);
    };
    mix(v.label_offsets().len() as u64);
    for &x in v.label_offsets() {
        mix(x);
    }
    for &x in v.label_entries() {
        mix(x);
    }
    for &x in v.highway() {
        mix(x as u64);
    }
    for &x in v.landmarks() {
        mix(x as u64);
    }
    h
}

fn main() {
    let t = Instant::now();
    let g = hcl_core::testkit::barabasi_albert(NUM_VERTICES, BA_EDGES_PER_VERTEX, SEED);
    eprintln!(
        "bench graph: {} vertices, {} edges (generated in {:.1?})",
        g.num_vertices(),
        g.num_edges(),
        t.elapsed()
    );

    let mut results: Vec<(usize, u128)> = Vec::new();
    let mut reference: Option<(u64, usize)> = None;
    for threads in THREAD_COUNTS {
        let options = BuildOptions {
            num_landmarks: NUM_LANDMARKS,
            threads,
            batch_size: 0,
            selection: None,
        };
        let mut pool: Vec<BuildContext> = (0..threads).map(|_| BuildContext::new()).collect();
        let mut best_ns = u128::MAX;
        let mut last = None;
        for _ in 0..BUILD_REPS {
            let t = Instant::now();
            let idx = HighwayCoverIndex::build_in(&g, &options, &mut pool);
            best_ns = best_ns.min(t.elapsed().as_nanos());
            last = Some(idx);
        }
        let idx = last.expect("BUILD_REPS > 0");
        let fp = (fingerprint(&idx), idx.stats().total_label_entries);
        match &reference {
            None => reference = Some(fp),
            Some(r) => assert_eq!(
                *r, fp,
                "index built with {threads} threads diverged from the sequential build"
            ),
        }
        eprintln!(
            "build with {threads} thread(s): best of {BUILD_REPS} = {:.1} ms \
             ({} label entries)",
            best_ns as f64 / 1e6,
            idx.stats().total_label_entries
        );
        results.push((threads, best_ns));
    }

    let seq_ns = results[0].1;
    let speedup = |ns: u128| seq_ns as f64 / ns as f64;
    for &(threads, ns) in &results[1..] {
        eprintln!("speedup at {threads} threads: {:.2}x", speedup(ns));
    }

    let (_, entries) = reference.expect("at least one build ran");
    let builds: Vec<String> = results
        .iter()
        .map(|&(threads, ns)| {
            format!(
                "{{\"threads\": {threads}, \"best_ns\": {ns}, \"speedup\": {:.3}}}",
                speedup(ns)
            )
        })
        .collect();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"pr3_parallel_build\",\n  \"available_parallelism\": {cores},\n  \
         \"graph\": {{\"family\": \
         \"barabasi_albert\", \"vertices\": {}, \"edges\": {}, \"m\": {BA_EDGES_PER_VERTEX}, \
         \"seed\": {SEED}}},\n  \"index\": {{\"landmarks\": {NUM_LANDMARKS}, \"batch_size\": {}, \
         \"label_entries\": {entries}}},\n  \"reps\": {BUILD_REPS},\n  \"builds\": [\n    {}\n  \
         ]\n}}\n",
        g.num_vertices(),
        g.num_edges(),
        BuildOptions::DEFAULT_BATCH_SIZE,
        builds.join(",\n    ")
    );

    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr3.json");
    std::fs::write(out_path, &json).expect("writing BENCH_pr3.json");
    eprintln!("wrote {out_path}");
}
