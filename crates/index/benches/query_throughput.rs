//! PR 4 benchmark: the serving hot path, before vs after the overhaul,
//! written to `BENCH_pr4.json` at the repo root.
//!
//! Four measurements on one Barabási–Albert power-law graph:
//!
//! 1. **Single-thread latency, baseline vs current.** The baseline is a
//!    faithful reimplementation of the pre-PR4 query engine (parallel
//!    hub/dist `u32` arrays, linear-only merge, unguarded highway cross
//!    product, `landmark_rank` table lookups in the residual BFS) run over
//!    the same index data, so both engines answer the identical workload
//!    in the same process — the fairest before/after a single binary can
//!    produce. Answers are cross-checked, not just timed.
//! 2. **Worker-sweep throughput** at {1, 2, 4, 8} threads sharing one
//!    `IndexView` with a private `QueryContext` each — the `hcl serve
//!    --workers` shape — with the machine's `available_parallelism`
//!    recorded next to the numbers (a single-core container measures
//!    oversubscription, not speedup), and the multi-worker answers
//!    asserted identical to the single-worker ones.
//! 3. **Validated vs trusted open** of the serialised container: the CRC
//!    pass is the file-size-proportional part of load, and
//!    `open_trusted` exists to skip exactly it.
//!
//! `HCL_BENCH_SCALE=small` shrinks the graph and workload for CI smoke
//! runs (the JSON is then labelled accordingly).

use hcl_core::{testkit, GraphView, VertexId, INFINITY};
use hcl_index::{HighwayCoverIndex, IndexConfig, IndexView, QueryContext};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

const SEED: u64 = 0x9E37;
const LANDMARKS: usize = 32;

// ---------------------------------------------------------------------------
// Baseline: the pre-PR4 query engine, verbatim modulo storage unpacking.
// ---------------------------------------------------------------------------

/// Pre-PR4 index layout: parallel hub/dist arrays, as read from the view.
struct BaselineIndex {
    landmark_rank: Vec<u32>,
    label_offsets: Vec<u64>,
    label_hubs: Vec<u32>,
    label_dists: Vec<u32>,
    highway: Vec<u32>,
    k: usize,
}

const NOT_A_LANDMARK: u32 = u32::MAX;
const INF64: u64 = u64::MAX;

impl BaselineIndex {
    fn from_view(v: IndexView<'_>) -> Self {
        let (mut hubs, mut dists) = (Vec::new(), Vec::new());
        for (h, d) in (0..v.num_vertices() as VertexId).flat_map(|x| v.label(x)) {
            hubs.push(h);
            dists.push(d);
        }
        Self {
            landmark_rank: v.landmark_rank().to_vec(),
            label_offsets: v.label_offsets().to_vec(),
            label_hubs: hubs,
            label_dists: dists,
            highway: v.highway().to_vec(),
            k: v.num_landmarks(),
        }
    }

    fn query(
        &self,
        graph: GraphView<'_>,
        ctx: &mut BaselineContext,
        u: VertexId,
        v: VertexId,
    ) -> Option<u32> {
        if u == v {
            return Some(0);
        }
        let bound = self.label_upper_bound(u, v);
        let best = self.residual_bfs(graph, ctx, u, v, bound);
        if best == INF64 {
            None
        } else {
            Some(best as u32)
        }
    }

    /// The pre-PR4 two-pointer merge + full highway cross product.
    fn label_upper_bound(&self, u: VertexId, v: VertexId) -> u64 {
        let (u_lo, u_hi) = (
            self.label_offsets[u as usize] as usize,
            self.label_offsets[u as usize + 1] as usize,
        );
        let (v_lo, v_hi) = (
            self.label_offsets[v as usize] as usize,
            self.label_offsets[v as usize + 1] as usize,
        );
        let mut best = INF64;
        let (mut i, mut j) = (u_lo, v_lo);
        while i < u_hi && j < v_hi {
            match self.label_hubs[i].cmp(&self.label_hubs[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if self.label_dists[i] != INFINITY && self.label_dists[j] != INFINITY {
                        best = best.min(self.label_dists[i] as u64 + self.label_dists[j] as u64);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        let k = self.k;
        for i in u_lo..u_hi {
            let (h1, d1) = (self.label_hubs[i] as usize, self.label_dists[i] as u64);
            if d1 >= best || self.label_dists[i] == INFINITY {
                continue;
            }
            for j in v_lo..v_hi {
                let h2 = self.label_hubs[j] as usize;
                if h1 == h2 {
                    continue;
                }
                let hw = self.highway[h1 * k + h2];
                if hw == INFINITY || self.label_dists[j] == INFINITY {
                    continue;
                }
                best = best.min(d1 + hw as u64 + self.label_dists[j] as u64);
            }
        }
        best
    }

    /// The pre-PR4 residual BFS: landmark test via the u32 rank table.
    fn residual_bfs(
        &self,
        graph: GraphView<'_>,
        ctx: &mut BaselineContext,
        u: VertexId,
        v: VertexId,
        bound: u64,
    ) -> u64 {
        let n = self.landmark_rank.len();
        if ctx.dist_fwd.len() < n {
            ctx.dist_fwd.resize(n, INFINITY);
            ctx.dist_bwd.resize(n, INFINITY);
        }
        ctx.frontier_fwd.clear();
        ctx.frontier_bwd.clear();
        ctx.dist_fwd[u as usize] = 0;
        ctx.dist_bwd[v as usize] = 0;
        ctx.touched.push(u);
        ctx.touched.push(v);
        ctx.frontier_fwd.push(u);
        ctx.frontier_bwd.push(v);

        let mut best = bound;
        let (mut depth_fwd, mut depth_bwd) = (0u64, 0u64);
        while !ctx.frontier_fwd.is_empty()
            && !ctx.frontier_bwd.is_empty()
            && depth_fwd + depth_bwd + 1 < best
        {
            let forward = ctx.frontier_fwd.len() <= ctx.frontier_bwd.len();
            let (frontier, dist_mine, dist_other, depth) = if forward {
                (
                    &ctx.frontier_fwd,
                    &mut ctx.dist_fwd,
                    &ctx.dist_bwd,
                    &mut depth_fwd,
                )
            } else {
                (
                    &ctx.frontier_bwd,
                    &mut ctx.dist_bwd,
                    &ctx.dist_fwd,
                    &mut depth_bwd,
                )
            };
            ctx.next.clear();
            let next_depth = (*depth + 1) as u32;
            for &x in frontier {
                for &w in graph.neighbors(x) {
                    let other = dist_other[w as usize];
                    if other != INFINITY {
                        best = best.min(*depth + 1 + other as u64);
                    }
                    if self.landmark_rank[w as usize] != NOT_A_LANDMARK {
                        continue;
                    }
                    if dist_mine[w as usize] == INFINITY {
                        dist_mine[w as usize] = next_depth;
                        ctx.touched.push(w);
                        ctx.next.push(w);
                    }
                }
            }
            *depth += 1;
            if forward {
                std::mem::swap(&mut ctx.frontier_fwd, &mut ctx.next);
            } else {
                std::mem::swap(&mut ctx.frontier_bwd, &mut ctx.next);
            }
        }
        for &x in &ctx.touched {
            ctx.dist_fwd[x as usize] = INFINITY;
            ctx.dist_bwd[x as usize] = INFINITY;
        }
        ctx.touched.clear();
        best
    }
}

#[derive(Default)]
struct BaselineContext {
    dist_fwd: Vec<u32>,
    dist_bwd: Vec<u32>,
    touched: Vec<VertexId>,
    frontier_fwd: Vec<VertexId>,
    frontier_bwd: Vec<VertexId>,
    next: Vec<VertexId>,
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

fn checksum(answers: &[Option<u32>]) -> u64 {
    answers.iter().fold(0u64, |acc, a| {
        acc.wrapping_mul(0x100000001b3)
            .wrapping_add(a.map_or(u64::MAX, |d| d as u64))
    })
}

/// Answers the whole workload with `workers` threads sharing `index`,
/// chunks claimed off an atomic cursor — the `serve --workers` shape.
fn answer_with_workers(
    graph: GraphView<'_>,
    index: IndexView<'_>,
    pairs: &[(VertexId, VertexId)],
    workers: usize,
) -> Vec<Option<u32>> {
    const CHUNK: usize = 256;
    let num_chunks = pairs.len().div_ceil(CHUNK);
    let cursor = AtomicUsize::new(0);
    let mut parts: Vec<(usize, Vec<Option<u32>>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                s.spawn(move || {
                    let mut ctx = QueryContext::new();
                    let mut out = Vec::new();
                    loop {
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= num_chunks {
                            break;
                        }
                        let chunk = &pairs[c * CHUNK..((c + 1) * CHUNK).min(pairs.len())];
                        out.push((
                            c,
                            chunk
                                .iter()
                                .map(|&(u, v)| index.query_with(graph, &mut ctx, u, v))
                                .collect(),
                        ));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("bench worker panicked"))
            .collect()
    });
    parts.sort_unstable_by_key(|p| p.0);
    parts.into_iter().flat_map(|p| p.1).collect()
}

fn main() {
    let small = std::env::var("HCL_BENCH_SCALE").is_ok_and(|s| s == "small");
    let (num_vertices, num_queries, open_reps) = if small {
        (2_000usize, 4_000usize, 5usize)
    } else {
        (50_000, 20_000, 10)
    };

    let g = testkit::barabasi_albert(num_vertices, 5, SEED);
    let gv = g.as_view();
    eprintln!(
        "bench graph: BA({num_vertices}, 5), {} edges{}",
        g.num_edges(),
        if small { " [small scale]" } else { "" }
    );
    let t = Instant::now();
    let index = HighwayCoverIndex::build(
        &g,
        IndexConfig {
            num_landmarks: LANDMARKS,
        },
    );
    let build_ns = t.elapsed().as_nanos();
    let iv = index.as_view();
    let stats = index.stats();
    eprintln!(
        "index: {} landmarks, {} label entries, built in {:.1} ms",
        stats.num_landmarks,
        stats.total_label_entries,
        build_ns as f64 / 1e6
    );

    let mut rng = testkit::SplitMix64::new(SEED ^ 0xF00D);
    let pairs: Vec<(VertexId, VertexId)> = (0..num_queries)
        .map(|_| {
            (
                rng.next_below(num_vertices as u64) as VertexId,
                rng.next_below(num_vertices as u64) as VertexId,
            )
        })
        .collect();

    // --- 1. Single-thread latency: baseline engine vs current engine. ---
    let baseline = BaselineIndex::from_view(iv);
    let mut bctx = BaselineContext::default();
    let mut bl_answers = Vec::with_capacity(pairs.len());
    for &(u, v) in pairs.iter().take(200) {
        bl_answers.push(baseline.query(gv, &mut bctx, u, v)); // warm-up
    }
    bl_answers.clear();
    let t = Instant::now();
    for &(u, v) in &pairs {
        bl_answers.push(baseline.query(gv, &mut bctx, u, v));
    }
    let baseline_ns = t.elapsed().as_nanos();

    let mut ctx = QueryContext::new();
    let mut answers = Vec::with_capacity(pairs.len());
    for &(u, v) in pairs.iter().take(200) {
        answers.push(iv.query_with(gv, &mut ctx, u, v)); // warm-up
    }
    answers.clear();
    let t = Instant::now();
    for &(u, v) in &pairs {
        answers.push(iv.query_with(gv, &mut ctx, u, v));
    }
    let current_ns = t.elapsed().as_nanos();

    assert_eq!(
        answers, bl_answers,
        "hot-path overhaul changed an answer — that is a bug, not a speedup"
    );
    let mean_baseline = baseline_ns as f64 / pairs.len() as f64;
    let mean_current = current_ns as f64 / pairs.len() as f64;
    eprintln!(
        "single-thread: baseline {:.0} ns/query, current {:.0} ns/query ({:+.1} %)",
        mean_baseline,
        mean_current,
        (mean_current / mean_baseline - 1.0) * 100.0
    );

    // --- 2. Worker sweep. ---
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut sweep = Vec::new();
    let mut identical = true;
    for workers in [1usize, 2, 4, 8] {
        let t = Instant::now();
        let got = answer_with_workers(gv, iv, &pairs, workers);
        let ns = t.elapsed().as_nanos();
        identical &= got == answers;
        let qps = pairs.len() as f64 / (ns as f64 / 1e9);
        eprintln!(
            "workers {workers}: {:.0} queries/s ({:.0} ns/query wall){}",
            qps,
            ns as f64 / pairs.len() as f64,
            if got == answers {
                ""
            } else {
                "  ANSWERS DIVERGED"
            }
        );
        sweep.push((workers, ns, qps));
    }
    assert!(identical, "worker pool must not change answers");

    // --- 3. Validated vs trusted open of the serialised container. ---
    let bytes = hcl_store::serialize(&g, &index).expect("serialize");
    let mut path = std::env::temp_dir();
    path.push(format!("hcl_bench_pr4_{}.hcl", std::process::id()));
    std::fs::write(&path, &bytes).expect("write bench container");
    let mut open_validated_ns = u128::MAX;
    let mut open_trusted_ns = u128::MAX;
    for _ in 0..open_reps {
        let t = Instant::now();
        let s = hcl_store::IndexStore::open(&path).expect("open");
        open_validated_ns = open_validated_ns.min(t.elapsed().as_nanos());
        drop(s);
        let t = Instant::now();
        let s = hcl_store::IndexStore::open_trusted(&path).expect("open_trusted");
        open_trusted_ns = open_trusted_ns.min(t.elapsed().as_nanos());
        drop(s);
    }
    std::fs::remove_file(&path).ok();
    eprintln!(
        "open ({} KiB file): validated {:.2} ms, trusted {:.2} ms ({:.1}× faster)",
        bytes.len() / 1024,
        open_validated_ns as f64 / 1e6,
        open_trusted_ns as f64 / 1e6,
        open_validated_ns as f64 / open_trusted_ns as f64
    );

    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|(w, ns, qps)| {
            format!("{{\"workers\": {w}, \"total_ns\": {ns}, \"queries_per_s\": {qps:.0}}}")
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"pr4_query_throughput\",\n  \"scale\": \"{}\",\n  \
         \"graph\": {{\"family\": \"barabasi_albert\", \"vertices\": {num_vertices}, \
         \"edges\": {}, \"m\": 5, \"seed\": {SEED}}},\n  \
         \"index\": {{\"landmarks\": {}, \"label_entries\": {}, \"build_ns\": {build_ns}}},\n  \
         \"single_thread\": {{\"queries\": {}, \"baseline_mean_ns\": {mean_baseline:.1}, \
         \"current_mean_ns\": {mean_current:.1}, \"speedup\": {:.3}, \
         \"answers_checksum\": {}}},\n  \
         \"worker_sweep\": {{\"available_parallelism\": {cores}, \
         \"output_identical_to_single_worker\": {identical}, \"runs\": [{}]}},\n  \
         \"open\": {{\"file_bytes\": {}, \"reps\": {open_reps}, \
         \"validated_best_ns\": {open_validated_ns}, \"trusted_best_ns\": {open_trusted_ns}, \
         \"trusted_speedup\": {:.3}}}\n}}\n",
        if small { "small" } else { "full" },
        g.num_edges(),
        stats.num_landmarks,
        stats.total_label_entries,
        pairs.len(),
        mean_baseline / mean_current,
        checksum(&answers),
        sweep_json.join(", "),
        bytes.len(),
        open_validated_ns as f64 / open_trusted_ns as f64,
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr4.json");
    std::fs::write(out_path, &json).expect("writing BENCH_pr4.json");
    eprintln!("wrote {out_path}");
}
