//! Determinism property tests for the batched parallel builder: for a
//! fixed batch size, every thread count must produce an index whose five
//! arrays are **identical** to the sequential (`threads = 1`) build — over
//! every testkit family, multiple landmark counts, and several batch
//! sizes. This is the contract that lets `hcl build --threads N` persist
//! byte-identical `.hcl` containers regardless of the machine it ran on.

use hcl_core::{testkit, GraphView, VertexId};
use hcl_index::{
    BuildContext, BuildOptions, HighwayCoverIndex, LandmarkSelector, SelectionStrategy,
};

/// Array-level equality of two built indexes (stronger than answer-level:
/// the serialised container is a function of exactly these six arrays).
fn assert_identical(name: &str, a: &HighwayCoverIndex, b: &HighwayCoverIndex) {
    let (a, b) = (a.as_view(), b.as_view());
    assert_eq!(a.landmarks(), b.landmarks(), "{name}: landmarks");
    assert_eq!(a.landmark_rank(), b.landmark_rank(), "{name}: rank table");
    assert_eq!(a.label_offsets(), b.label_offsets(), "{name}: offsets");
    assert_eq!(a.label_entries(), b.label_entries(), "{name}: entries");
    assert_eq!(a.highway(), b.highway(), "{name}: highway");
}

#[test]
fn every_thread_count_builds_the_identical_index() {
    for (name, g) in testkit::families() {
        for k in [0usize, 1, 4, 16] {
            let opts = |threads| BuildOptions {
                num_landmarks: k,
                threads,
                batch_size: 0,
                selection: None,
            };
            let sequential = HighwayCoverIndex::build_with(&g, &opts(1));
            for threads in [2usize, 4, 8] {
                let parallel = HighwayCoverIndex::build_with(&g, &opts(threads));
                assert_identical(&format!("{name} k={k} t={threads}"), &sequential, &parallel);
            }
        }
    }
}

#[test]
fn batch_size_shapes_output_identically_across_thread_counts() {
    // Sweep batch sizes, including 1 (fully sequential pruning order) and
    // sizes larger than the landmark count (one batch, no cross-batch
    // pruning at all): each is a distinct canonical output, and every
    // thread count must reproduce it exactly.
    let g = testkit::barabasi_albert(64, 3, 13);
    for batch_size in [1usize, 2, 3, 8, 64] {
        let opts = |threads| BuildOptions {
            num_landmarks: 16,
            threads,
            batch_size,
            selection: None,
        };
        let sequential = HighwayCoverIndex::build_with(&g, &opts(1));
        for threads in [2usize, 4, 8] {
            let parallel = HighwayCoverIndex::build_with(&g, &opts(threads));
            assert_identical(
                &format!("b={batch_size} t={threads}"),
                &sequential,
                &parallel,
            );
        }
    }
}

#[test]
fn build_in_reuses_contexts_across_builds() {
    // A held worker pool must serve repeated builds of different graphs
    // without state leaking between them.
    let opts = BuildOptions {
        num_landmarks: 8,
        threads: 4,
        batch_size: 0,
        selection: None,
    };
    let mut pool: Vec<BuildContext> = (0..4).map(|_| BuildContext::new()).collect();
    for seed in 0..3 {
        let g = testkit::erdos_renyi(40, 0.08, seed);
        let fresh = HighwayCoverIndex::build_with(&g, &opts);
        let reused = HighwayCoverIndex::build_in(&g, &opts, &mut pool);
        assert_identical(&format!("seed {seed}"), &fresh, &reused);
    }
}

#[test]
fn every_strategy_is_thread_count_invariant() {
    // The byte-identity guarantee must hold *per selection strategy*:
    // selection runs once, deterministically, before the batched searches,
    // so the thread count can never change which landmarks anchor the
    // index — or anything downstream of them.
    let strategies = [
        SelectionStrategy::DegreeRank,
        SelectionStrategy::ApproxCoverage { seed: 11 },
        SelectionStrategy::SeededRandom { seed: 11 },
    ];
    for (name, g) in [
        ("ba(64,3)", testkit::barabasi_albert(64, 3, 7)),
        ("er(48,0.08)", testkit::erdos_renyi(48, 0.08, 3)),
        (
            "grid⊎cycle",
            testkit::disjoint_union(&testkit::grid(3, 3), &testkit::cycle(5)),
        ),
    ] {
        for strategy in strategies {
            let opts = |threads| BuildOptions {
                num_landmarks: 8,
                threads,
                batch_size: 0,
                selection: Some(strategy),
            };
            let sequential = HighwayCoverIndex::build_with(&g, &opts(1));
            for threads in [2usize, 4, 8] {
                let parallel = HighwayCoverIndex::build_with(&g, &opts(threads));
                assert_identical(
                    &format!("{name} {strategy} t={threads}"),
                    &sequential,
                    &parallel,
                );
            }
        }
    }
}

/// A selector that panics when consulted — the "poisoned" pluggable
/// strategy case. It pins the worker-panic contract: the build must
/// surface **one coherent panic carrying the worker's payload**, not the
/// old opaque `join().expect("build worker panicked")` secondary panic.
struct PoisonedSelector;

impl LandmarkSelector for PoisonedSelector {
    fn name(&self) -> &'static str {
        "poisoned"
    }

    fn select(&self, _graph: GraphView<'_>, _k: usize) -> Vec<VertexId> {
        panic!("selector poisoned on purpose")
    }
}

#[test]
fn worker_panics_reraise_as_one_coherent_build_panic() {
    let g = testkit::barabasi_albert(40, 2, 3);
    let opts = BuildOptions {
        num_landmarks: 8,
        threads: 4,
        batch_size: 0,
        selection: None,
    };
    // Quiet the panic banner for this *deliberate* panic only: a filtering
    // hook that delegates everything else to the previous hook. Installed
    // once and left in place — swapping the hook back mid-run would race
    // with concurrently failing tests in this binary and could swallow
    // their diagnostics.
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
        if !msg.is_some_and(|m| m.contains("selector poisoned on purpose")) {
            previous(info);
        }
    }));
    let mut contexts: Vec<BuildContext> = (0..4).map(|_| BuildContext::new()).collect();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        HighwayCoverIndex::build_in_with_selector(&g, &opts, &mut contexts, &PoisonedSelector)
    }));

    let Err(payload) = result else {
        panic!("poisoned selector must fail the build");
    };
    let msg = payload
        .downcast_ref::<String>()
        .expect("re-raised build panic carries a String payload");
    assert!(
        msg.contains("index build worker panicked"),
        "missing build context in panic: {msg}"
    );
    assert!(
        msg.contains("selector poisoned on purpose"),
        "worker payload swallowed: {msg}"
    );
}

#[test]
fn parallel_output_stays_exact_against_the_oracle() {
    // Equality above ties every thread count to the sequential output;
    // this ties the batched output itself to ground truth on a graph with
    // unreachable pairs.
    let g = testkit::disjoint_union(&testkit::barabasi_albert(40, 2, 5), &testkit::grid(4, 4));
    let idx = HighwayCoverIndex::build_with(
        &g,
        &BuildOptions {
            num_landmarks: 12,
            threads: 4,
            batch_size: 0,
            selection: None,
        },
    );
    let n = g.num_vertices() as u32;
    let mut ctx = hcl_index::QueryContext::new();
    for u in 0..n {
        let oracle = hcl_core::bfs::distances_from(&g, u);
        for v in 0..n {
            let expected = match oracle[v as usize] {
                hcl_core::INFINITY => None,
                d => Some(d),
            };
            assert_eq!(
                idx.query_with(&g, &mut ctx, u, v),
                expected,
                "parallel-built index wrong at ({u}, {v})"
            );
        }
    }
}
