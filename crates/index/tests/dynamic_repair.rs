//! Property suite for incremental label repair: seeded random edit
//! scripts (mixed insert/delete) over the eleven graph families, asserting
//! after **every** step that the repaired index answers identically to a
//! fresh rebuild on the edited graph — and to the BFS oracle on a sampled
//! pair set — at 1 and 4 build threads.
//!
//! This is the acceptance gate for the dynamic-graphs tentpole: repair is
//! allowed to produce different label *bytes* than a rebuild (pruning
//! decisions are history-dependent), but never a different *answer*.

use hcl_core::testkit::{families, SplitMix64};
use hcl_core::{bfs, DeltaGraph, EdgeDelta};
use hcl_index::repair::DynamicIndex;
use hcl_index::{BuildContext, BuildOptions, HighwayCoverIndex, QueryContext};

const SCRIPT_LEN: usize = 12;

/// Drives one seeded edit script over one family and checks answer
/// identity after every effective step.
fn run_script(name: &str, base: &hcl_core::Graph, threads: usize, seed: u64) {
    let n = base.num_vertices();
    if n < 2 {
        return; // no representable edge edits
    }
    let k = n.min(4);
    let options = BuildOptions {
        num_landmarks: k,
        threads,
        ..Default::default()
    };
    let built = HighwayCoverIndex::build_with(base, &options);
    let mut dynamic = DynamicIndex::from_view(built.as_view());
    let mut graph = DeltaGraph::new(base.as_view());
    let mut cx = BuildContext::new();
    let mut rng = SplitMix64::new(seed);

    for step in 0..SCRIPT_LEN {
        let u = rng.next_below(n as u64) as u32;
        let v = rng.next_below(n as u64) as u32;
        if u == v {
            continue;
        }
        let delta = if graph.has_edge(u, v) {
            EdgeDelta::delete(u, v)
        } else {
            EdgeDelta::insert(u, v)
        };
        let outcome = dynamic
            .apply_and_repair(&mut graph, delta, &mut cx)
            .unwrap_or_else(|e| panic!("[{name}] step {step}: {delta} rejected: {e}"));
        assert!(outcome.applied, "[{name}] step {step}: {delta} was a no-op");

        let edited = graph.to_graph();
        let rebuilt = HighwayCoverIndex::build_with(&edited, &options);
        let repaired = dynamic.to_index();
        let mut cx_rep = QueryContext::new();
        let mut cx_reb = QueryContext::new();
        let mut oracle_scratch = bfs::BfsScratch::new();
        let mut pair_rng = SplitMix64::new(seed ^ (step as u64).wrapping_mul(0x9e37));
        let all_pairs = n <= 40;
        let checks = if all_pairs { n * n } else { 300 };
        for c in 0..checks {
            let (a, b) = if all_pairs {
                ((c / n) as u32, (c % n) as u32)
            } else {
                (
                    pair_rng.next_below(n as u64) as u32,
                    pair_rng.next_below(n as u64) as u32,
                )
            };
            let got = repaired.as_view().query_with(&edited, &mut cx_rep, a, b);
            let want = rebuilt.as_view().query_with(&edited, &mut cx_reb, a, b);
            assert_eq!(
                got, want,
                "[{name}] step {step} ({delta}, threads {threads}): repaired vs rebuilt \
                 diverged on ({a}, {b})"
            );
            // Spot-check against ground truth too, so a bug shared by
            // repair and rebuild cannot slip through as "identical".
            if c % 7 == 0 {
                let truth = bfs::distance_with(&edited, a, b, &mut oracle_scratch);
                assert_eq!(
                    got, truth,
                    "[{name}] step {step} ({delta}): repaired answer wrong vs oracle \
                     on ({a}, {b})"
                );
            }
        }
    }
}

#[test]
fn edit_scripts_match_rebuild_over_all_families_single_thread() {
    for (name, graph) in families() {
        run_script(&name, &graph, 1, 0xA11C_E5ED ^ graph.num_vertices() as u64);
    }
}

#[test]
fn edit_scripts_match_rebuild_over_all_families_four_threads() {
    for (name, graph) in families() {
        run_script(&name, &graph, 4, 0xB0B5_1ED5 ^ graph.num_vertices() as u64);
    }
}

#[test]
fn deltas_never_mutate_the_base_graph() {
    let base = hcl_core::testkit::barabasi_albert(60, 3, 7);
    let before: Vec<Vec<u32>> = (0..60).map(|v| base.neighbors(v).to_vec()).collect();
    let mut graph = DeltaGraph::new(base.as_view());
    let mut rng = SplitMix64::new(99);
    for _ in 0..40 {
        let u = rng.next_below(60) as u32;
        let v = rng.next_below(60) as u32;
        if u == v {
            continue;
        }
        let delta = if graph.has_edge(u, v) {
            EdgeDelta::delete(u, v)
        } else {
            EdgeDelta::insert(u, v)
        };
        graph.apply(delta).unwrap();
    }
    for v in 0..60 {
        assert_eq!(base.neighbors(v), &before[v as usize][..]);
    }
}
