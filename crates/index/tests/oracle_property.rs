//! Property tests: on every generated graph family, for every vertex pair
//! and several landmark counts, the index answer must equal the plain BFS
//! oracle — including `None` for disconnected pairs.

use hcl_core::{bfs, testkit, Graph, INFINITY};
use hcl_index::{BuildOptions, HighwayCoverIndex, IndexConfig, QueryContext, SelectionStrategy};

/// Exhaustively checks `index.query(u, v) == bfs_oracle(u, v)` for all
/// pairs, for each landmark count in `ks`.
fn assert_matches_oracle(name: &str, g: &Graph, ks: &[usize]) {
    let n = g.num_vertices() as u32;
    for &k in ks {
        let idx = HighwayCoverIndex::build(g, IndexConfig { num_landmarks: k });
        let mut ctx = QueryContext::new();
        for u in 0..n {
            let oracle = bfs::distances_from(g, u);
            for v in 0..n {
                let expected = match oracle[v as usize] {
                    INFINITY => None,
                    d => Some(d),
                };
                let got = idx.query_with(g, &mut ctx, u, v);
                assert_eq!(
                    got, expected,
                    "{name}: query({u}, {v}) with k={k} disagrees with BFS oracle"
                );
            }
        }
    }
}

const KS: &[usize] = &[0, 1, 2, 4, 16];

/// Exactness is strategy-independent: whatever vertices a selector picks,
/// every query must still equal the BFS oracle — the labelling and query
/// engine may assume nothing about *why* a vertex is a landmark. All
/// pairs over the shared eleven-family sweep (`testkit::families`), every
/// built-in strategy, several landmark counts.
#[test]
fn every_strategy_matches_oracle_on_all_families() {
    let strategies = [
        SelectionStrategy::DegreeRank,
        SelectionStrategy::ApproxCoverage { seed: 7 },
        SelectionStrategy::SeededRandom { seed: 7 },
    ];
    for (name, g) in testkit::families() {
        for strategy in strategies {
            for &k in &[0usize, 2, 8] {
                let idx = HighwayCoverIndex::build_with(
                    &g,
                    &BuildOptions {
                        num_landmarks: k,
                        threads: 1,
                        batch_size: 0,
                        selection: Some(strategy),
                    },
                );
                let n = g.num_vertices() as u32;
                let mut ctx = QueryContext::new();
                for u in 0..n {
                    let oracle = bfs::distances_from(&g, u);
                    for v in 0..n {
                        let expected = match oracle[v as usize] {
                            INFINITY => None,
                            d => Some(d),
                        };
                        assert_eq!(
                            idx.query_with(&g, &mut ctx, u, v),
                            expected,
                            "{name}: query({u}, {v}) with k={k}, strategy {strategy} \
                             disagrees with BFS oracle"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn family_path() {
    assert_matches_oracle("path(1)", &testkit::path(1), KS);
    assert_matches_oracle("path(2)", &testkit::path(2), KS);
    assert_matches_oracle("path(23)", &testkit::path(23), KS);
}

#[test]
fn family_cycle() {
    assert_matches_oracle("cycle(3)", &testkit::cycle(3), KS);
    assert_matches_oracle("cycle(24)", &testkit::cycle(24), KS);
    assert_matches_oracle("cycle(25)", &testkit::cycle(25), KS);
}

#[test]
fn family_star() {
    assert_matches_oracle("star(2)", &testkit::star(2), KS);
    assert_matches_oracle("star(30)", &testkit::star(30), KS);
}

#[test]
fn family_grid() {
    assert_matches_oracle("grid(1x7)", &testkit::grid(1, 7), KS);
    assert_matches_oracle("grid(5x6)", &testkit::grid(5, 6), KS);
}

#[test]
fn family_erdos_renyi() {
    for seed in 0..4 {
        for &p in &[0.02, 0.05, 0.15] {
            let g = testkit::erdos_renyi(48, p, seed);
            assert_matches_oracle(&format!("er(48, {p}, seed {seed})"), &g, KS);
        }
    }
}

#[test]
fn family_barabasi_albert() {
    // The power-law family the paper's hub-domination argument targets:
    // a few high-degree hubs should cover almost all shortest paths.
    for seed in 0..3 {
        for &m in &[1, 3] {
            let g = testkit::barabasi_albert(42, m, seed);
            assert_matches_oracle(&format!("ba(42, {m}, seed {seed})"), &g, KS);
        }
    }
}

#[test]
fn queries_over_views_match_owned_index() {
    // The same queries must produce identical answers whether the engine
    // runs over the owned index/graph or over borrowed views — this is the
    // abstraction `hcl-store` relies on to serve mmap'd files.
    let g = testkit::barabasi_albert(50, 2, 5);
    let idx = HighwayCoverIndex::build(&g, IndexConfig { num_landmarks: 8 });
    let (gv, iv) = (g.as_view(), idx.as_view());
    let mut ctx = QueryContext::new();
    for u in 0..50 {
        for v in 0..50 {
            assert_eq!(
                iv.query_with(gv, &mut ctx, u, v),
                idx.query_with(&g, &mut ctx, u, v),
                "view/owned disagreement at ({u}, {v})"
            );
        }
    }
}

#[test]
fn family_disconnected_returns_none() {
    // Disjoint union guarantees cross-component pairs; the oracle comparison
    // above already checks them, but assert explicitly that `None` shows up.
    let g = testkit::disjoint_union(&testkit::grid(3, 3), &testkit::cycle(5));
    let idx = HighwayCoverIndex::build(&g, IndexConfig { num_landmarks: 4 });
    assert_eq!(idx.query(&g, 0, 9), None);
    assert_eq!(idx.query(&g, 8, 13), None);
    assert_matches_oracle("grid ⊎ cycle", &g, KS);

    // Sparse ER graphs are naturally fragmented: make sure at least one
    // generated instance actually exercises the unreachable path.
    let g = testkit::erdos_renyi(40, 0.02, 1);
    let oracle = bfs::distances_from(&g, 0);
    assert!(
        oracle.contains(&INFINITY),
        "test graph unexpectedly connected; pick a sparser p or another seed"
    );
    assert_matches_oracle("sparse er", &g, KS);
}

#[test]
fn family_with_isolated_vertices() {
    let mut b = hcl_core::GraphBuilder::new();
    b.add_edge(0, 1).add_edge(1, 2).reserve_vertices(6);
    let g = b.build();
    assert_matches_oracle("path+isolated", &g, &[0, 2, 6]);
}

#[test]
fn query_context_reuse_is_clean() {
    // Reusing one context across many queries must not leak state between
    // them; interleave reachable and unreachable pairs.
    let g = testkit::disjoint_union(&testkit::path(10), &testkit::star(6));
    let idx = HighwayCoverIndex::build(&g, IndexConfig { num_landmarks: 3 });
    let mut ctx = QueryContext::new();
    for _ in 0..3 {
        assert_eq!(idx.query_with(&g, &mut ctx, 0, 9), Some(9));
        assert_eq!(idx.query_with(&g, &mut ctx, 0, 10), None);
        assert_eq!(idx.query_with(&g, &mut ctx, 11, 12), Some(2));
        assert_eq!(idx.query_with(&g, &mut ctx, 5, 5), Some(0));
    }
}

#[test]
fn landmark_endpoints_answer_exactly() {
    let g = testkit::grid(4, 4);
    let idx = HighwayCoverIndex::build(&g, IndexConfig { num_landmarks: 3 });
    let landmark = (0..16).find(|&v| idx.is_landmark(v)).unwrap();
    for v in 0..16 {
        let expected = bfs::distance(&g, landmark, v);
        assert_eq!(idx.query(&g, landmark, v), expected);
        assert_eq!(idx.query(&g, v, landmark), expected);
    }
}
