//! Incremental label repair under edge insertions and deletions.
//!
//! A built [`HighwayCoverIndex`](crate::HighwayCoverIndex) is frozen — its
//! labels are CSR-flattened and its highway closed. This module keeps an
//! *editable* twin, [`DynamicIndex`], that answers the same queries but can
//! be repaired in place after an edge edit instead of rebuilt from scratch.
//!
//! The repair contract is **answer identity, not byte identity**: after any
//! sequence of edits, queries against the repaired index return exactly the
//! distances a fresh rebuild on the edited graph would return. The repaired
//! label *bytes* may differ (pruning decisions depend on history), which is
//! fine — the property suite checks answers against the BFS oracle and a
//! fresh rebuild after every step of seeded edit scripts.
//!
//! # How repair works
//!
//! The landmark set is kept fixed across edits (re-selection would force a
//! full rebuild for no answer-quality gain; the landmarks stay exactly the
//! vertices the original build chose). Each edit is processed as:
//!
//! 1. **Affected-tree detection** on the *pre-edit* graph: two full BFS
//!    runs from the edit's endpoints `u` and `v` give `d(i, u)` and
//!    `d(i, v)` for every landmark `i`. For an **insertion**, landmark
//!    `i`'s distance function can only change if `|d(i,u) − d(i,v)| ≥ 2`
//!    (a new strictly-shorter path must route through the new edge). For a
//!    **deletion**, it can only change if `|d(i,u) − d(i,v)| == 1` (the
//!    edge lies on a shortest path from `i` exactly when the endpoint
//!    depths differ; equal depths mean no shortest path from `i` crosses
//!    it).
//! 2. **Exact highway patch**: each affected row is recomputed by a full
//!    (unpruned) BFS from that landmark on the post-edit graph, then
//!    mirrored to keep the matrix symmetric. Unaffected rows are untouched
//!    — their distance functions did not change. The highway therefore
//!    stays *exact* at all times (the build's Floyd–Warshall closure is
//!    never needed again).
//! 3. **Tree relabel**: stale per-landmark label trees are stripped and
//!    regrown with the same pruned BFS discipline as the builder (landmark
//!    stop + domination pruning against strictly lower-rank entries, in
//!    rank order), reusing [`BuildContext`]'s scratch buffers.
//!
//! The relabel scope differs by edit kind, and the asymmetry is load
//! bearing. An **insertion** only shrinks distances, so repairing just the
//! affected trees preserves the cover property: an unaffected landmark's
//! coverage can only improve when the entries it routes through get
//! tighter. A **deletion** grows distances, which can silently break the
//! coverage of *unaffected* landmarks whose cover routed through an
//! affected hub — so a deletion with a non-empty affected set strips every
//! label and regrows all trees (still cheaper than a rebuild: selection is
//! skipped and unaffected highway rows are reused). A deletion whose
//! affected set is empty is free: no label touches at all.

use crate::build::{sat_add, BuildContext, HighwayCoverIndex, NOT_A_LANDMARK};
use crate::view::IndexView;
use hcl_core::bfs::distances_from_with;
use hcl_core::{DeltaError, DeltaGraph, DeltaOp, DynGraphView, EdgeDelta, VertexId, INFINITY};

/// What one [`DynamicIndex::apply_and_repair`] call did, for logging,
/// metrics, and the benchmark harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Whether the delta changed the graph at all (inserting an existing
    /// edge or deleting a missing one is a no-op and costs nothing beyond
    /// the membership probe).
    pub applied: bool,
    /// Number of landmark trees whose distance function was (possibly)
    /// affected by the edit.
    pub affected_landmarks: usize,
    /// Whether the repair fell back to regrowing every tree (deletions
    /// with a non-empty affected set; see the module docs for why).
    pub full_relabel: bool,
}

/// An editable highway-cover index: same landmarks, labels, and highway as
/// the frozen form, but with per-vertex label vectors that can be stripped
/// and regrown in place.
///
/// Convert a built index in with [`DynamicIndex::from_view`], apply edits
/// with [`DynamicIndex::apply_and_repair`], and flatten back out with
/// [`DynamicIndex::to_index`] whenever a frozen snapshot is needed (for
/// serving or serialisation). The conversion round-trip is lossless.
pub struct DynamicIndex {
    /// Landmark vertices in rank order (frozen across edits).
    landmarks: Vec<VertexId>,
    /// Inverse of `landmarks`: `NOT_A_LANDMARK` for ordinary vertices.
    landmark_rank: Vec<u32>,
    /// Per-vertex `(rank, distance)` labels, kept rank-sorted so the
    /// flattened form is hub-sorted without a final sort pass.
    labels: Vec<Vec<(u32, u32)>>,
    /// Row-major exact `k × k` landmark-to-landmark distances.
    highway: Vec<u32>,
}

impl DynamicIndex {
    /// Unpacks a frozen index (owned or mapped) into editable form.
    pub fn from_view(view: IndexView<'_>) -> Self {
        let n = view.num_vertices();
        let mut labels = Vec::with_capacity(n);
        for v in 0..n {
            labels.push(view.label(v as VertexId).collect());
        }
        Self {
            landmarks: view.landmarks().to_vec(),
            landmark_rank: view.landmark_rank().to_vec(),
            labels,
            highway: view.highway().to_vec(),
        }
    }

    /// Number of landmarks (fixed across edits).
    pub fn num_landmarks(&self) -> usize {
        self.landmarks.len()
    }

    /// Number of vertices the index covers (fixed across edits — the delta
    /// layer does not add vertices).
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Total number of label entries currently held.
    pub fn num_label_entries(&self) -> usize {
        self.labels.iter().map(Vec::len).sum()
    }

    /// Flattens back into the frozen, query-servable form.
    pub fn to_index(&self) -> HighwayCoverIndex {
        let n = self.labels.len();
        let mut label_offsets = Vec::with_capacity(n.saturating_add(1));
        label_offsets.push(0u64);
        let total = self.num_label_entries();
        let mut label_entries = Vec::with_capacity(total);
        for per_vertex in &self.labels {
            for &(hub, d) in per_vertex {
                label_entries.push(crate::view::pack_label_entry(hub, d));
            }
            label_offsets.push(label_entries.len() as u64);
        }
        HighwayCoverIndex {
            landmarks: self.landmarks.clone(),
            landmark_rank: self.landmark_rank.clone(),
            label_offsets,
            label_entries,
            highway: self.highway.clone(),
        }
    }

    /// Applies one edge delta to `graph` and repairs the index so it
    /// answers exactly for the edited graph.
    ///
    /// The delta is validated (range, self-loop) before anything is
    /// touched; on error neither the graph nor the index changes. An
    /// ineffective delta (inserting a present edge, deleting an absent
    /// one) leaves both untouched and reports `applied: false`.
    ///
    /// # Panics
    /// Panics if `graph` does not have the vertex count this index was
    /// built for — the overlay never adds vertices, so a mismatch means
    /// the caller paired the wrong graph with the wrong index.
    pub fn apply_and_repair(
        &mut self,
        graph: &mut DeltaGraph<'_>,
        delta: EdgeDelta,
        cx: &mut BuildContext,
    ) -> Result<RepairOutcome, DeltaError> {
        let n = self.num_vertices();
        let k = self.num_landmarks();
        assert_eq!(graph.num_vertices(), n, "graph/index vertex count mismatch");
        // Probe validity first so detection work is never wasted on a
        // delta that will not apply.
        delta.validate(n)?;
        let effective = match delta.op {
            DeltaOp::Insert => !graph.has_edge(delta.u, delta.v),
            DeltaOp::Delete => graph.has_edge(delta.u, delta.v),
        };
        if !effective {
            return Ok(RepairOutcome::default());
        }

        // Step 1: endpoint BFS on the *pre-edit* graph — the affected-tree
        // tests below are stated in terms of old distances.
        let mut d_landmarks_u = vec![INFINITY; k];
        let mut d_landmarks_v = vec![INFINITY; k];
        if k > 0 {
            distances_from_with(&*graph, delta.u, &mut cx.scratch);
            for (i, &lm) in self.landmarks.iter().enumerate() {
                d_landmarks_u[i] = cx.scratch.dist[lm as usize];
            }
            distances_from_with(&*graph, delta.v, &mut cx.scratch);
            for (i, &lm) in self.landmarks.iter().enumerate() {
                d_landmarks_v[i] = cx.scratch.dist[lm as usize];
            }
            cx.scratch.reset();
        }

        let applied = graph.apply(delta)?;
        debug_assert!(applied, "membership probe and apply disagreed");

        let affected: Vec<usize> = (0..k)
            .filter(|&i| {
                let (a, b) = (d_landmarks_u[i], d_landmarks_v[i]);
                match delta.op {
                    // A new edge only creates shorter paths from landmark i
                    // if hopping it beats the old detour; both endpoints
                    // unreachable stay unreachable (the new edge cannot be
                    // reached from i at all).
                    DeltaOp::Insert => {
                        if a == INFINITY || b == INFINITY {
                            a != b
                        } else {
                            a.abs_diff(b) >= 2
                        }
                    }
                    // A removed edge lies on a shortest path from i exactly
                    // when the endpoint depths differ (by 1, since the edge
                    // existed; equal depths mean no shortest path from i
                    // crosses it, so i's distances cannot change).
                    DeltaOp::Delete => a != b,
                }
            })
            .collect();

        if affected.is_empty() {
            return Ok(RepairOutcome {
                applied: true,
                affected_landmarks: 0,
                full_relabel: false,
            });
        }

        // Step 2: recompute affected highway rows exactly on the post-edit
        // graph, mirroring writes to preserve symmetry. Unaffected rows
        // are already exact — their landmarks' distances did not change.
        let view = graph.as_dyn_view();
        for &i in &affected {
            distances_from_with(view, self.landmarks[i], &mut cx.scratch);
            for j in 0..k {
                let d = cx.scratch.dist[self.landmarks[j] as usize];
                self.highway[i * k + j] = d;
                self.highway[j * k + i] = d;
            }
        }
        cx.scratch.reset();

        // Step 3: strip and regrow stale trees. Insertions repair only the
        // affected trees; deletions with a non-empty affected set regrow
        // everything (see module docs for the coverage argument).
        let full_relabel = matches!(delta.op, DeltaOp::Delete);
        if full_relabel {
            for per_vertex in &mut self.labels {
                per_vertex.clear();
            }
            for rank in 0..k {
                self.relabel_tree(view, rank, cx);
            }
        } else {
            let mut stale = vec![false; k];
            for &i in &affected {
                stale[i] = true;
            }
            for per_vertex in &mut self.labels {
                per_vertex.retain(|&(rank, _)| !stale[rank as usize]);
            }
            for &rank in &affected {
                self.relabel_tree(view, rank, cx);
            }
        }

        Ok(RepairOutcome {
            applied: true,
            affected_landmarks: affected.len(),
            full_relabel,
        })
    }

    /// Regrows one landmark's label tree with the builder's pruned BFS
    /// discipline: stop at other landmarks (the highway row is already
    /// exact, so no seeds are collected), and skip vertices whose existing
    /// *lower-rank* entries already cover them at least as well.
    ///
    /// Restricting domination to strictly lower ranks mirrors the
    /// builder's strict batch ordering and is what makes regrowth sound:
    /// the classic pruned-labelling induction (a pruned vertex is covered
    /// through a smaller-rank hub, recursively) needs the rank order to
    /// terminate.
    fn relabel_tree(&mut self, graph: DynGraphView<'_>, rank: usize, cx: &mut BuildContext) {
        let k = self.landmarks.len();
        let root = self.landmarks[rank];
        let rank32 = rank as u32;

        cx.scratch.reset();
        cx.scratch.ensure_capacity(graph.num_vertices());
        cx.highway_row.clear();
        cx.highway_row
            .extend_from_slice(&self.highway[rank * k..(rank + 1) * k]);

        insert_sorted(&mut self.labels[root as usize], rank32, 0);
        cx.scratch.dist[root as usize] = 0;
        cx.scratch.touched.push(root);
        cx.scratch.queue.push_back(root);

        while let Some(v) = cx.scratch.queue.pop_front() {
            let d = cx.scratch.dist[v as usize];
            if v != root {
                if self.landmark_rank[v as usize] != NOT_A_LANDMARK {
                    // Another landmark: the exact highway already carries
                    // this distance, and searches never expand through
                    // landmarks.
                    continue;
                }
                let dominated = self.labels[v as usize].iter().any(|&(j, dj)| {
                    if j >= rank32 {
                        return false;
                    }
                    let h = cx.highway_row[j as usize];
                    h != INFINITY && sat_add(h, dj) <= d
                });
                if dominated {
                    continue;
                }
                insert_sorted(&mut self.labels[v as usize], rank32, d);
            }
            for &w in graph.neighbors(v) {
                if cx.scratch.dist[w as usize] == INFINITY {
                    cx.scratch.dist[w as usize] = d + 1;
                    cx.scratch.touched.push(w);
                    cx.scratch.queue.push_back(w);
                }
            }
        }
        cx.scratch.reset();
    }
}

/// Inserts `(rank, d)` into a rank-sorted label vector, replacing any
/// existing entry for the same rank (regrowth after a strip never sees one,
/// but root self-entries of unaffected-then-regrown trees do).
fn insert_sorted(entries: &mut Vec<(u32, u32)>, rank: u32, d: u32) {
    match entries.binary_search_by_key(&rank, |&(r, _)| r) {
        Ok(pos) => entries[pos] = (rank, d),
        Err(pos) => entries.insert(pos, (rank, d)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BuildOptions, HighwayCoverIndex, QueryContext};
    use hcl_core::Graph;

    fn assert_answers_match_rebuild(graph: &DeltaGraph<'_>, dynamic: &DynamicIndex, k: usize) {
        let edited = graph.to_graph();
        let rebuilt = HighwayCoverIndex::build_with(
            &edited,
            &BuildOptions {
                num_landmarks: k,
                ..Default::default()
            },
        );
        let repaired = dynamic.to_index();
        let mut cx_a = QueryContext::new();
        let mut cx_b = QueryContext::new();
        let n = edited.num_vertices() as u32;
        for u in 0..n {
            for v in 0..n {
                assert_eq!(
                    repaired.as_view().query_with(&edited, &mut cx_a, u, v),
                    rebuilt.as_view().query_with(&edited, &mut cx_b, u, v),
                    "repaired vs rebuilt answer diverged for ({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn roundtrip_is_lossless() {
        let g = Graph::from_edges(&[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]);
        let built = HighwayCoverIndex::build_with(
            &g,
            &BuildOptions {
                num_landmarks: 2,
                ..Default::default()
            },
        );
        let dynamic = DynamicIndex::from_view(built.as_view());
        let back = dynamic.to_index();
        assert_eq!(back.as_view().landmarks(), built.as_view().landmarks());
        assert_eq!(
            back.as_view().label_entries(),
            built.as_view().label_entries()
        );
        assert_eq!(back.as_view().highway(), built.as_view().highway());
    }

    #[test]
    fn ineffective_deltas_touch_nothing() {
        let g = Graph::from_edges(&[(0, 1), (1, 2)]);
        let built = HighwayCoverIndex::build_with(
            &g,
            &BuildOptions {
                num_landmarks: 1,
                ..Default::default()
            },
        );
        let mut dynamic = DynamicIndex::from_view(built.as_view());
        let mut graph = DeltaGraph::new(g.as_view());
        let mut cx = BuildContext::new();
        let out = dynamic
            .apply_and_repair(&mut graph, EdgeDelta::insert(0, 1), &mut cx)
            .unwrap();
        assert_eq!(out, RepairOutcome::default());
        let out = dynamic
            .apply_and_repair(&mut graph, EdgeDelta::delete(0, 2), &mut cx)
            .unwrap();
        assert_eq!(out, RepairOutcome::default());
        assert!(dynamic
            .apply_and_repair(&mut graph, EdgeDelta::insert(0, 9), &mut cx)
            .is_err());
    }

    #[test]
    fn insert_shortcut_repairs_affected_trees() {
        // A long path: inserting a chord changes many distances.
        let g = Graph::from_edges(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]);
        let built = HighwayCoverIndex::build_with(
            &g,
            &BuildOptions {
                num_landmarks: 3,
                ..Default::default()
            },
        );
        let mut dynamic = DynamicIndex::from_view(built.as_view());
        let mut graph = DeltaGraph::new(g.as_view());
        let mut cx = BuildContext::new();
        let out = dynamic
            .apply_and_repair(&mut graph, EdgeDelta::insert(0, 6), &mut cx)
            .unwrap();
        assert!(out.applied && out.affected_landmarks > 0 && !out.full_relabel);
        assert_answers_match_rebuild(&graph, &dynamic, 3);
    }

    #[test]
    fn delete_bridge_disconnects_and_repairs() {
        // Two triangles joined by a bridge; deleting the bridge splits the
        // graph and must leave cross-component answers at None.
        let g = Graph::from_edges(&[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
        let built = HighwayCoverIndex::build_with(
            &g,
            &BuildOptions {
                num_landmarks: 2,
                ..Default::default()
            },
        );
        let mut dynamic = DynamicIndex::from_view(built.as_view());
        let mut graph = DeltaGraph::new(g.as_view());
        let mut cx = BuildContext::new();
        let out = dynamic
            .apply_and_repair(&mut graph, EdgeDelta::delete(2, 3), &mut cx)
            .unwrap();
        assert!(out.applied);
        assert_answers_match_rebuild(&graph, &dynamic, 2);
    }

    #[test]
    fn mixed_script_stays_exact_on_a_grid() {
        let g = hcl_core::testkit::grid(4, 4);
        let built = HighwayCoverIndex::build_with(
            &g,
            &BuildOptions {
                num_landmarks: 4,
                ..Default::default()
            },
        );
        let mut dynamic = DynamicIndex::from_view(built.as_view());
        let mut graph = DeltaGraph::new(g.as_view());
        let mut cx = BuildContext::new();
        let script = [
            EdgeDelta::insert(0, 15),
            EdgeDelta::delete(5, 6),
            EdgeDelta::insert(3, 12),
            EdgeDelta::delete(0, 1),
            EdgeDelta::delete(0, 15),
        ];
        for delta in script {
            dynamic
                .apply_and_repair(&mut graph, delta, &mut cx)
                .unwrap();
            assert_answers_match_rebuild(&graph, &dynamic, 4);
        }
    }
}
