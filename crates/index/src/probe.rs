//! Query observation: the [`Probe`] trait and the [`QueryStats`] collector.
//!
//! The query engine is generic over a probe so instrumentation is a
//! *compile-time* choice per call site, not a runtime branch on the hot
//! path. Every hook has an empty `#[inline]` default; the un-instrumented
//! entry points monomorphise with [`hcl_core::NoProbe`] and compile to the
//! same machine code as a probe-free engine (the `probe_overhead` bench
//! pins this at ≤ 2 % mean latency against an in-binary pre-probe
//! baseline). Hooks are placed so that even a *live* probe only pays for
//! work the engine already did: counts are derived from loop variables the
//! merge maintains anyway, and per-node hooks sit on paths that touch the
//! node regardless.
//!
//! [`QueryStats`] is the standard collector: it classifies which mechanism
//! produced the answer (label merge, highway routing, or the residual BFS)
//! and records how much work each phase did. The CLI's `query --explain`,
//! the slow-query log, and the `/metrics` per-mechanism counters are all
//! rendered from it.

use hcl_core::BfsProbe;

/// Observation hooks for the query engine, extending the BFS-shaped hooks
/// of [`hcl_core::BfsProbe`] with label-phase events.
///
/// All hooks default to inline no-ops, so `P = NoProbe` costs nothing.
/// A probe is per-thread mutable state; the engine never shares one.
pub trait Probe: BfsProbe {
    /// A new query is starting; collectors should reset themselves.
    #[inline]
    fn query_start(&mut self) {}

    /// The common-hub merge finished. `galloped` says which merge ran,
    /// `entries_scanned` how many label entries it examined (0 when one
    /// label was empty and no merge ran), `bound` the resulting distance
    /// upper bound (`u64::MAX` when no common hub certified anything).
    #[inline]
    fn merge_done(&mut self, galloped: bool, entries_scanned: usize, bound: u64) {
        let _ = (galloped, entries_scanned, bound);
    }

    /// The highway cross-product tightened the label bound to `bound`.
    #[inline]
    fn highway_improved(&mut self, bound: u64) {
        let _ = bound;
    }

    /// The query finished. `trivial` is the `u == v` fast path;
    /// `label_bound` is the phase-1 bound after the highway pass and
    /// `best` the final answer (`u64::MAX` = disconnected).
    #[inline]
    fn query_done(&mut self, trivial: bool, label_bound: u64, best: u64) {
        let _ = (trivial, label_bound, best);
    }
}

/// The zero-cost probe: inherits every no-op default.
impl Probe for hcl_core::NoProbe {}

/// Which mechanism produced the final answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnswerSource {
    /// `u == v`; answered without touching the index.
    Trivial,
    /// No mechanism found a path; the endpoints are disconnected.
    Disconnected,
    /// The common-hub label merge alone was exact.
    LabelHit,
    /// Routing between distinct hubs over the highway matrix tightened
    /// the merge bound to the final answer.
    HighwayBound,
    /// The landmark-avoiding residual BFS beat the label bound.
    ResidualBfs,
}

impl AnswerSource {
    /// Stable lower-case token used by `--explain`, the slow-query log,
    /// and the `/metrics` counter names.
    pub fn as_str(self) -> &'static str {
        match self {
            AnswerSource::Trivial => "trivial",
            AnswerSource::Disconnected => "disconnected",
            AnswerSource::LabelHit => "label-hit",
            AnswerSource::HighwayBound => "highway",
            AnswerSource::ResidualBfs => "residual-bfs",
        }
    }
}

/// Which common-hub merge the label phase used.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeKind {
    /// No merge ran (an endpoint had an empty label).
    None,
    /// Two-pointer linear merge.
    Linear,
    /// Galloping merge (labels were ≥ 8× skewed).
    Galloping,
}

impl MergeKind {
    /// Stable lower-case token used by `--explain` and the slow-query log.
    pub fn as_str(self) -> &'static str {
        match self {
            MergeKind::None => "none",
            MergeKind::Linear => "linear",
            MergeKind::Galloping => "gallop",
        }
    }
}

/// Per-query work breakdown, collected by passing `&mut QueryStats` to
/// [`IndexView::query_probed`](crate::IndexView::query_probed).
///
/// One collector can be reused across queries — it resets itself on the
/// engine's `query_start` hook, so after each query it describes exactly
/// that query.
#[derive(Clone, Debug)]
pub struct QueryStats {
    /// Which mechanism produced the final answer.
    pub source: AnswerSource,
    /// Which common-hub merge ran.
    pub merge: MergeKind,
    /// Label entries examined by the common-hub merge.
    pub hub_entries_scanned: u64,
    /// How many times the highway cross-product tightened the bound.
    pub highway_improvements: u64,
    /// Vertices expanded by the residual BFS (frontier pops).
    pub bfs_nodes_expanded: u64,
    /// Peak residual-BFS frontier width.
    pub bfs_frontier_peak: u64,
    /// Phase-1 bound from the merge alone (`u64::MAX` = none).
    pub merge_bound: u64,
    /// Phase-1 bound after the highway pass (`u64::MAX` = none).
    pub label_bound: u64,
}

impl QueryStats {
    /// A fresh collector (equivalent to the post-`query_start` state).
    pub fn new() -> Self {
        QueryStats {
            source: AnswerSource::Trivial,
            merge: MergeKind::None,
            hub_entries_scanned: 0,
            highway_improvements: 0,
            bfs_nodes_expanded: 0,
            bfs_frontier_peak: 0,
            merge_bound: u64::MAX,
            label_bound: u64::MAX,
        }
    }
}

impl Default for QueryStats {
    fn default() -> Self {
        Self::new()
    }
}

impl BfsProbe for QueryStats {
    #[inline]
    fn bfs_node_expanded(&mut self) {
        self.bfs_nodes_expanded += 1;
    }

    #[inline]
    fn bfs_level(&mut self, frontier_len: usize) {
        self.bfs_frontier_peak = self.bfs_frontier_peak.max(frontier_len as u64);
    }
}

impl Probe for QueryStats {
    #[inline]
    fn query_start(&mut self) {
        *self = QueryStats::new();
    }

    #[inline]
    fn merge_done(&mut self, galloped: bool, entries_scanned: usize, bound: u64) {
        self.merge = if entries_scanned == 0 {
            MergeKind::None
        } else if galloped {
            MergeKind::Galloping
        } else {
            MergeKind::Linear
        };
        self.hub_entries_scanned = entries_scanned as u64;
        self.merge_bound = bound;
        self.label_bound = bound;
    }

    #[inline]
    fn highway_improved(&mut self, bound: u64) {
        self.highway_improvements += 1;
        self.label_bound = bound;
    }

    #[inline]
    fn query_done(&mut self, trivial: bool, label_bound: u64, best: u64) {
        self.label_bound = label_bound;
        self.source = if trivial {
            AnswerSource::Trivial
        } else if best == u64::MAX {
            AnswerSource::Disconnected
        } else if best < label_bound {
            AnswerSource::ResidualBfs
        } else if label_bound < self.merge_bound {
            AnswerSource::HighwayBound
        } else {
            AnswerSource::LabelHit
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_classifies_each_mechanism() {
        let mut s = QueryStats::new();

        // Trivial.
        s.query_start();
        s.query_done(true, u64::MAX, 0);
        assert_eq!(s.source, AnswerSource::Trivial);

        // Label hit: merge bound survives as the answer.
        s.query_start();
        s.merge_done(false, 6, 4);
        s.query_done(false, 4, 4);
        assert_eq!(s.source, AnswerSource::LabelHit);
        assert_eq!(s.merge, MergeKind::Linear);
        assert_eq!(s.hub_entries_scanned, 6);

        // Highway: the cross-product tightened the merge bound.
        s.query_start();
        s.merge_done(true, 3, 9);
        s.highway_improved(5);
        s.query_done(false, 5, 5);
        assert_eq!(s.source, AnswerSource::HighwayBound);
        assert_eq!(s.merge, MergeKind::Galloping);
        assert_eq!(s.highway_improvements, 1);

        // Residual BFS beat the label bound.
        s.query_start();
        s.merge_done(false, 2, 7);
        s.bfs_level(3);
        s.bfs_node_expanded();
        s.bfs_node_expanded();
        s.query_done(false, 7, 3);
        assert_eq!(s.source, AnswerSource::ResidualBfs);
        assert_eq!(s.bfs_nodes_expanded, 2);
        assert_eq!(s.bfs_frontier_peak, 3);

        // Disconnected; also checks reset between queries.
        s.query_start();
        s.merge_done(false, 0, u64::MAX);
        s.query_done(false, u64::MAX, u64::MAX);
        assert_eq!(s.source, AnswerSource::Disconnected);
        assert_eq!(s.merge, MergeKind::None);
        assert_eq!(s.bfs_nodes_expanded, 0);
    }

    #[test]
    fn tokens_are_stable() {
        assert_eq!(AnswerSource::LabelHit.as_str(), "label-hit");
        assert_eq!(AnswerSource::HighwayBound.as_str(), "highway");
        assert_eq!(AnswerSource::ResidualBfs.as_str(), "residual-bfs");
        assert_eq!(AnswerSource::Trivial.as_str(), "trivial");
        assert_eq!(AnswerSource::Disconnected.as_str(), "disconnected");
        assert_eq!(MergeKind::Galloping.as_str(), "gallop");
        assert_eq!(MergeKind::Linear.as_str(), "linear");
        assert_eq!(MergeKind::None.as_str(), "none");
    }
}
