//! Highway-cover 2-hop hub labelling for exact shortest-path distance
//! queries on complex networks.
//!
//! This crate implements the labelling scheme of the source paper
//! (conf_edbt_Farhan021): pick the top-`k` highest-degree vertices as
//! *landmarks*, run a *pruned* BFS from each landmark to build compact
//! per-vertex label arrays plus a small `k × k` *highway* of
//! landmark-to-landmark distances, and answer queries as
//!
//! ```text
//! d(u, v) = min( label/highway upper bound,
//!                distance over paths avoiding all landmarks )
//! ```
//!
//! where the second term is computed by a bidirectional BFS that never
//! expands through a landmark and is cut off by the first term. Both halves
//! are cheap — labels are tiny because high-degree landmarks cover most
//! shortest paths in complex networks, and the fallback BFS explores only
//! the sparse landmark-free residue of the graph.
//!
//! Construction runs the per-landmark pruned searches in deterministic
//! rank-ordered batches, optionally sharded over scoped worker threads
//! ([`BuildOptions`] / [`BuildContext`]); for a fixed batch size the built
//! index is byte-identical at every thread count — see the `build` module
//! docs for the visibility argument. *Which* vertices become landmarks is
//! pluggable ([`LandmarkSelector`] / [`SelectionStrategy`]): degree
//! ranking (the paper's default), greedy sampled-BFS coverage, or a seeded
//! random baseline, each deterministic so the guarantee holds per
//! strategy.
//!
//! Storage comes in two backings sharing one query engine:
//!
//! * [`HighwayCoverIndex`] — owned `Vec`s, produced by a build;
//! * [`IndexView`] — five borrowed slices over the identical flat layout
//!   (label entries are packed `(hub << 32) | dist` words — see
//!   [`pack_label_entry`]), which is what `hcl-store` serves straight out
//!   of a memory-mapped file. Untrusted slices are admitted through
//!   [`IndexView::from_parts`], which validates every invariant the engine
//!   indexes by.
//!
//! Every query result is exact; the test suite property-checks the engine
//! against the plain BFS oracle from `hcl-core` over multiple graph
//! families, seeds, and landmark counts.
//!
//! Observability is a compile-time opt-in: the query path is generic over
//! the [`Probe`] trait (no-op by default, so un-instrumented queries pay
//! nothing) and [`QueryStats`] is the standard collector; builds report
//! deterministic pruning counters and per-phase wall times through
//! [`BuildStats`] / [`HighwayCoverIndex::build_with_stats`].
#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod build;
mod probe;
mod query;
pub mod repair;
mod select;
mod view;

pub use build::{
    BuildContext, BuildOptions, BuildStats, HighwayCoverIndex, IndexConfig, IndexStats,
};
pub use probe::{AnswerSource, MergeKind, Probe, QueryStats};
pub use query::QueryContext;
pub use repair::{DynamicIndex, RepairOutcome};
pub use select::{ApproxCoverage, DegreeRank, LandmarkSelector, SeededRandom, SelectionStrategy};
pub use view::{pack_label_entry, unpack_label_entry, IndexDataError, IndexView};
