//! The sequential build driver — the `threads = 1` case of the batched
//! algorithm.
//!
//! Identical schedule to [`parallel`](super::parallel): searches within a
//! batch run against the batch-start snapshot (merges are deferred to the
//! end of the batch), so the output is byte-identical to any multi-threaded
//! run with the same batch size. The only difference is that the searches
//! run one after another in the calling thread, reusing one
//! [`BuildContext`](super::BuildContext).

use super::state::{pruned_bfs, BuildState};
use super::{BuildContext, Observer};
use hcl_core::GraphView;
use std::time::Instant;

pub(crate) fn run(
    graph: GraphView<'_>,
    state: &mut BuildState,
    batch_size: usize,
    cx: &mut BuildContext,
    obs: &mut Observer<'_, '_>,
) {
    let k = state.num_landmarks();
    let mut start = 0usize;
    while start < k {
        let end = (start + batch_size).min(k);
        // Collect the whole batch before merging: `pruned_bfs` holds the
        // state by shared reference, so later searches in the batch cannot
        // accidentally observe earlier ones — same visibility as workers.
        let t = Instant::now();
        let frags: Vec<_> = (start..end)
            .map(|rank| pruned_bfs(graph, state, rank, cx))
            .collect();
        obs.record_batch(start, end, k, t.elapsed().as_micros() as u64, &frags);
        let t = Instant::now();
        for frag in frags {
            state.merge(frag);
        }
        obs.stats.merge_us += t.elapsed().as_micros() as u64;
        start = end;
    }
}
