//! Index construction: pruned landmark BFS, deterministic batching, and
//! the highway matrix.
//!
//! # The batched build and why it parallelises
//!
//! The labelling is one pruned BFS per landmark. Each search reads two
//! pieces of shared state — the labels recorded by earlier landmarks and
//! the highway row of its own landmark — and produces two fragments: the
//! vertices it labels and the landmark-to-landmark depths it discovers.
//! The searches are therefore independent *modulo* that shared state, and
//! this module exploits it deterministically:
//!
//! * Landmarks are processed in **rank-ordered batches** of fixed size
//!   ([`BuildOptions::batch_size`], default
//!   [`BuildOptions::DEFAULT_BATCH_SIZE`]).
//! * Every search in a batch runs against a **read-only snapshot** of the
//!   shared state as it stood when the batch started — domination pruning
//!   consults only labels and highway entries from strictly earlier
//!   batches, plus the highway depths the search itself discovers.
//! * After a batch completes, a **merge in landmark-rank order** folds the
//!   per-landmark fragments back into the shared state.
//!
//! Because a search never observes a batch-mate's results, the output is a
//! pure function of the graph, the landmark count, and the batch size —
//! **byte-identical for every thread count**, which
//! `tests/parallel_build.rs` asserts across all testkit families. The
//! sequential builder ([`sequential`]) is literally the `threads = 1` case
//! of the same batched algorithm; [`parallel`] shards each batch over
//! `std::thread::scope` workers, each with its own reusable
//! [`BuildContext`].
//!
//! Batch-local blindness can only *weaken* pruning (a batch-mate's label
//! that would have dominated a vertex is not visible yet), so labels may
//! hold slightly more entries than a fully sequential ordering would
//! produce — never any wrong ones, and exactness of every query is
//! unaffected (the oracle property tests run over the batched output).

mod state;

pub(crate) mod parallel;
pub(crate) mod sequential;

use crate::select::{self, LandmarkSelector, SelectionStrategy};
use crate::view::IndexView;
use hcl_core::bfs::BfsScratch;
use hcl_core::{Graph, VertexId};
use state::{BuildState, LandmarkFragment};
use std::time::Instant;

/// Sentinel rank for vertices that are not landmarks.
pub(crate) const NOT_A_LANDMARK: u32 = u32::MAX;

/// Construction parameters for [`HighwayCoverIndex`].
#[derive(Clone, Copy, Debug)]
pub struct IndexConfig {
    /// Number of landmarks (highest-degree vertices). Clamped to the vertex
    /// count at build time. More landmarks shrink the fallback search at the
    /// cost of larger labels and a longer build.
    pub num_landmarks: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self { num_landmarks: 16 }
    }
}

/// Full construction options: landmark count plus the parallel-build knobs.
///
/// [`IndexConfig`] stays the simple "how many landmarks" surface;
/// `BuildOptions` adds worker-thread and batching control for
/// [`HighwayCoverIndex::build_with`]. The batch size — not the thread
/// count — is what shapes the output: for a fixed batch size the built
/// index is byte-identical at every thread count (see the module docs).
#[derive(Clone, Copy, Debug)]
pub struct BuildOptions {
    /// Number of landmarks; clamped to the vertex count at build time.
    pub num_landmarks: usize,
    /// Worker threads. `0` means auto: the `HCL_BUILD_THREADS` environment
    /// variable if set to a positive integer, otherwise `1` (the
    /// sequential path). The thread count never changes the output.
    pub threads: usize,
    /// Landmarks per batch. `0` means [`Self::DEFAULT_BATCH_SIZE`]. Larger
    /// batches expose more parallelism but weaken domination pruning
    /// (batch-mates cannot prune against each other), so labels grow;
    /// `1` reproduces the fully sequential pruning order exactly.
    pub batch_size: usize,
    /// Landmark-selection strategy. `None` means auto: the
    /// `HCL_BUILD_STRATEGY` environment variable if set to a valid
    /// `name[:seed]` spelling, otherwise
    /// [`SelectionStrategy::DegreeRank`]. Unlike threads and batch size,
    /// the strategy *shapes the output* (it decides which vertices anchor
    /// the labelling), so persisted containers record it in their header.
    pub selection: Option<SelectionStrategy>,
}

impl BuildOptions {
    /// Default landmarks-per-batch when [`BuildOptions::batch_size`] is 0.
    pub const DEFAULT_BATCH_SIZE: usize = 8;

    /// The worker-thread count this configuration resolves to (see
    /// [`BuildOptions::threads`]).
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        Self::threads_from_env(1)
    }

    /// Thread count requested via the `HCL_BUILD_THREADS` environment
    /// variable, or `fallback` when unset/invalid/zero.
    ///
    /// The single authority on the env var's semantics: the library's auto
    /// mode falls back to `1` (never surprise a host process with
    /// parallelism), while the CLI passes all available cores.
    pub fn threads_from_env(fallback: usize) -> usize {
        std::env::var("HCL_BUILD_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or(fallback)
    }

    /// The batch size this configuration resolves to (see
    /// [`BuildOptions::batch_size`]).
    pub fn resolved_batch_size(&self) -> usize {
        if self.batch_size > 0 {
            self.batch_size
        } else {
            Self::DEFAULT_BATCH_SIZE
        }
    }

    /// The landmark-selection strategy this configuration resolves to:
    /// the explicit [`BuildOptions::selection`] if set, else the
    /// `HCL_BUILD_STRATEGY` environment variable, else degree ranking.
    pub fn resolved_selection(&self) -> SelectionStrategy {
        self.selection
            .or_else(SelectionStrategy::from_env)
            .unwrap_or_default()
    }
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self {
            num_landmarks: IndexConfig::default().num_landmarks,
            threads: 0,
            batch_size: 0,
            selection: None,
        }
    }
}

impl From<IndexConfig> for BuildOptions {
    fn from(config: IndexConfig) -> Self {
        Self {
            num_landmarks: config.num_landmarks,
            ..Self::default()
        }
    }
}

/// Reusable scratch space for one build worker, mirroring
/// [`QueryContext`](crate::QueryContext) on the query side.
///
/// A pruned landmark BFS needs a distance array, a queue, a touched-list
/// (all provided by [`BfsScratch`] from `hcl-core`), and a private copy of
/// its landmark's highway row. One context serves any number of searches —
/// buffers are reset via the touched-list, so reuse costs `O(visited)` per
/// search, not `O(n)`. Create one per worker thread; callers that rebuild
/// indexes repeatedly can hold a pool and pass it to
/// [`HighwayCoverIndex::build_in`].
#[derive(Default)]
pub struct BuildContext {
    pub(crate) scratch: BfsScratch,
    pub(crate) highway_row: Vec<u32>,
}

impl BuildContext {
    /// Creates an empty context; buffers grow lazily to the graph size.
    pub fn new() -> Self {
        Self::default()
    }
}

/// `a + b` in distance arithmetic: saturating addition.
///
/// Because [`INFINITY`](hcl_core::INFINITY) is `u32::MAX`, saturation
/// doubles as absorption — anything plus unreachable stays unreachable, and
/// a sum that would wrap clamps to the sentinel instead of turning into a
/// small bogus "distance". Used by the Floyd–Warshall closure and the
/// domination check, where operands can sit near the sentinel when fed a
/// hostile (well-formed but semantically tampered) index file.
#[inline]
pub(crate) fn sat_add(a: u32, b: u32) -> u32 {
    a.saturating_add(b)
}

/// Per-build instrumentation: phase wall times and pruning counters,
/// produced by [`HighwayCoverIndex::build_with_stats`].
///
/// The counters (`bfs_visits`, `label_insertions`, `dominated`,
/// `landmark_labels`) are **thread-count-invariant**: they are pure
/// functions of the graph, selection, and batch size, exactly like the
/// built index itself — which is why they are safe to persist in the
/// container (`hcl-store` section kind 10) without breaking the build's
/// byte-identity guarantee. The wall times are, of course, per-run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Wall time of landmark selection, in microseconds.
    pub selection_us: u64,
    /// Wall time of each landmark batch's pruned searches, in
    /// microseconds, in batch order.
    pub batch_us: Vec<u64>,
    /// Cumulative wall time of folding fragments back into the shared
    /// state, in microseconds.
    pub merge_us: u64,
    /// Wall time of the highway Floyd–Warshall closure plus the CSR label
    /// flatten, in microseconds.
    pub closure_us: u64,
    /// Whole-build wall time, in microseconds.
    pub total_us: u64,
    /// Vertices dequeued across all pruned landmark searches.
    pub bfs_visits: u64,
    /// Label entries inserted (including each landmark's own root entry).
    pub label_insertions: u64,
    /// Visited vertices cut by domination pruning.
    pub dominated: u64,
    /// Label entries contributed by each landmark, in rank order.
    pub landmark_labels: Vec<u64>,
}

impl BuildStats {
    /// Fraction of visited vertices cut by domination pruning, in `0..=1`
    /// (`0` when nothing was visited).
    pub fn domination_cut_rate(&self) -> f64 {
        if self.bfs_visits == 0 {
            0.0
        } else {
            self.dominated as f64 / self.bfs_visits as f64
        }
    }
}

/// Driver-side observation state: the stats being accumulated plus an
/// optional live progress sink (one human-readable line per event).
pub(crate) struct Observer<'s, 'p> {
    pub(crate) stats: &'s mut BuildStats,
    pub(crate) progress: Option<&'p mut dyn FnMut(String)>,
}

impl Observer<'_, '_> {
    fn emit(&mut self, line: impl FnOnce() -> String) {
        if let Some(sink) = self.progress.as_mut() {
            sink(line());
        }
    }

    /// Records one completed batch: `frags` must already be in rank order
    /// (both drivers guarantee it), `us` is the batch's search wall time.
    pub(crate) fn record_batch(
        &mut self,
        start: usize,
        end: usize,
        k: usize,
        us: u64,
        frags: &[LandmarkFragment],
    ) {
        let mut visits = 0u64;
        let mut labels = 0u64;
        let mut dominated = 0u64;
        for frag in frags {
            visits += frag.visits;
            labels += frag.labelled.len() as u64;
            dominated += frag.dominated;
            self.stats.landmark_labels[frag.rank] = frag.labelled.len() as u64;
        }
        self.stats.batch_us.push(us);
        self.stats.bfs_visits += visits;
        self.stats.label_insertions += labels;
        self.stats.dominated += dominated;
        let batch = self.stats.batch_us.len();
        self.emit(|| {
            format!(
                "batch {batch}: landmarks {start}..{end} of {k} in {us} µs \
                 (visits {visits}, labels {labels}, dominated {dominated})"
            )
        });
    }
}

/// Size and shape statistics of a built index, for logging and tuning.
#[derive(Clone, Copy, Debug)]
pub struct IndexStats {
    /// Number of landmarks actually used (≤ configured).
    pub num_landmarks: usize,
    /// Total `(hub, dist)` entries across all vertex labels.
    pub total_label_entries: usize,
    /// Mean label entries per vertex.
    pub avg_label_size: f64,
    /// Largest single vertex label.
    pub max_label_size: usize,
    /// Approximate flat footprint of the index arrays in bytes.
    pub bytes: usize,
}

/// A built highway-cover 2-hop labelling over one [`Graph`] — the owned,
/// `Vec`-backed storage of the index.
///
/// The index borrows nothing: it is a standalone snapshot that answers
/// queries together with the graph it was built from (the fallback BFS
/// needs adjacency). Label arrays are stored CSR-style in flat vectors with
/// fixed-width elements, so the layout matches `hcl-store`'s on-disk format
/// and a file can be served back as a borrowed
/// [`IndexView`](crate::IndexView) without copying. All read paths delegate
/// through [`HighwayCoverIndex::as_view`].
pub struct HighwayCoverIndex {
    /// Landmark rank → vertex id, in ranking order (rank 0 = highest degree).
    pub(crate) landmarks: Vec<VertexId>,
    /// Vertex id → landmark rank, or [`NOT_A_LANDMARK`]; length is the
    /// vertex count of the build graph.
    pub(crate) landmark_rank: Vec<u32>,
    /// CSR offsets into `label_entries`; length `n + 1`.
    pub(crate) label_offsets: Vec<u64>,
    /// Packed `(hub << 32) | dist` label entries
    /// ([`pack_label_entry`](crate::pack_label_entry)), hub-ascending
    /// within each vertex.
    pub(crate) label_entries: Vec<u64>,
    /// Row-major `k × k` landmark-to-landmark distances, closed under
    /// shortest paths (Floyd–Warshall), [`INFINITY`](hcl_core::INFINITY)
    /// when disconnected.
    pub(crate) highway: Vec<u32>,
}

impl HighwayCoverIndex {
    /// Builds the index for `graph` with the given configuration.
    ///
    /// Runs one pruned BFS per landmark (see the module docs for the
    /// batched schedule). A BFS from landmark `r` stops at two kinds of
    /// vertices:
    ///
    /// * another landmark — its depth seeds the highway matrix and the
    ///   search does not continue through it, so every recorded label
    ///   distance is over a path whose interior avoids landmarks;
    /// * a vertex whose distance to `r` is already covered at least as well
    ///   via an earlier-batch landmark and the highway (*domination
    ///   pruning*) — this is what keeps labels small on complex networks.
    ///
    /// The highway matrix is then closed with Floyd–Warshall over the `k`
    /// landmarks so it holds exact landmark-to-landmark distances.
    ///
    /// Thread count defaults to auto (`HCL_BUILD_THREADS` or sequential);
    /// use [`HighwayCoverIndex::build_with`] for explicit control.
    pub fn build(graph: &Graph, config: IndexConfig) -> Self {
        Self::build_with(graph, &BuildOptions::from(config))
    }

    /// Builds the index with explicit thread/batch control.
    ///
    /// For a fixed batch size the result is **byte-identical at every
    /// thread count**; `threads = 1` runs fully in the calling thread with
    /// one [`BuildContext`].
    pub fn build_with(graph: &Graph, options: &BuildOptions) -> Self {
        // A batch holds at most batch_size searches, so extra workers
        // beyond that could never receive work — don't create them.
        let threads = options
            .resolved_threads()
            .clamp(1, options.resolved_batch_size());
        let mut contexts: Vec<BuildContext> = (0..threads).map(|_| BuildContext::new()).collect();
        Self::build_in(graph, options, &mut contexts)
    }

    /// [`HighwayCoverIndex::build_with`] plus instrumentation: returns the
    /// index together with [`BuildStats`] (phase wall times, pruning
    /// counters, per-landmark label contributions), and streams one
    /// human-readable line per build event to `progress` when given (the
    /// CLI's `build --progress` prints them to stderr as phases finish).
    ///
    /// Instrumentation never changes the output: the index is byte-
    /// identical to a [`build_with`](Self::build_with) run, and the stats
    /// counters are thread-count-invariant (see [`BuildStats`]).
    pub fn build_with_stats(
        graph: &Graph,
        options: &BuildOptions,
        progress: Option<&mut dyn FnMut(String)>,
    ) -> (Self, BuildStats) {
        let threads = options
            .resolved_threads()
            .clamp(1, options.resolved_batch_size());
        let mut contexts: Vec<BuildContext> = (0..threads).map(|_| BuildContext::new()).collect();
        let selector = options.resolved_selection().selector();
        let mut stats = BuildStats::default();
        let index = Self::build_observed(
            graph,
            options,
            &mut contexts,
            selector.as_ref(),
            &mut stats,
            progress,
        );
        (index, stats)
    }

    /// Builds the index reusing caller-owned worker scratch — the
    /// allocation-amortising form of [`HighwayCoverIndex::build_with`] for
    /// repeated builds (benchmarks, rebuild loops).
    ///
    /// One worker runs per context, so `contexts.len()` — not
    /// [`BuildOptions::threads`] — is the thread count here, capped at the
    /// per-batch job count (extra workers could never receive work). An
    /// empty slice builds sequentially with a temporary context. Landmarks
    /// are chosen by [`BuildOptions::selection`] (resolved via
    /// [`BuildOptions::resolved_selection`]).
    pub fn build_in(graph: &Graph, options: &BuildOptions, contexts: &mut [BuildContext]) -> Self {
        let selector = options.resolved_selection().selector();
        Self::build_in_with_selector(graph, options, contexts, selector.as_ref())
    }

    /// [`HighwayCoverIndex::build_in`] with a caller-supplied
    /// [`LandmarkSelector`] — the fully pluggable entry point for
    /// strategies beyond the built-in [`SelectionStrategy`] tags.
    ///
    /// `options.selection` is ignored here (the explicit `selector` wins);
    /// everything else behaves as in [`HighwayCoverIndex::build_in`]. The
    /// selector's output is validated (exactly `min(k, n)` distinct
    /// in-range ids) and the build panics with a message naming the
    /// selector if the contract is violated. In a *multi-threaded* build
    /// the selector runs under the same worker-panic capture as the
    /// landmark searches, so a faulty strategy surfaces as one coherent
    /// `index build worker panicked: …` panic instead of the old opaque
    /// join failure; a single-threaded build runs the selector inline,
    /// where its panic already propagates coherently (original payload and
    /// location) without wrapping.
    pub fn build_in_with_selector(
        graph: &Graph,
        options: &BuildOptions,
        contexts: &mut [BuildContext],
        selector: &dyn LandmarkSelector,
    ) -> Self {
        Self::build_observed(
            graph,
            options,
            contexts,
            selector,
            &mut BuildStats::default(),
            None,
        )
    }

    /// The one real build path: every public entry point funnels here.
    /// `stats` is always populated (the un-instrumented entries hand in a
    /// throwaway — the bookkeeping is a handful of timestamps and counter
    /// folds per *batch*, noise next to the searches a batch contains);
    /// `progress` streams per-phase lines when given.
    fn build_observed(
        graph: &Graph,
        options: &BuildOptions,
        contexts: &mut [BuildContext],
        selector: &dyn LandmarkSelector,
        stats: &mut BuildStats,
        progress: Option<&mut dyn FnMut(String)>,
    ) -> Self {
        let t_total = Instant::now();
        let graph = graph.as_view();
        let batch_size = options.resolved_batch_size();
        let num_landmarks = options.num_landmarks.min(graph.num_vertices());
        // Contexts beyond the per-batch job count could never receive
        // work; cap the pool so no idle worker threads get spawned.
        let workers = contexts.len().min(batch_size).min(num_landmarks);
        let t = Instant::now();
        let landmarks = if workers > 1 {
            parallel::run_selection(graph, selector, num_landmarks)
        } else {
            select::checked_select(selector, graph, num_landmarks)
        };
        stats.selection_us = t.elapsed().as_micros() as u64;
        stats.landmark_labels = vec![0; landmarks.len()];
        let sel_us = stats.selection_us;
        let mut obs = Observer { stats, progress };
        obs.emit(|| {
            format!(
                "select: {} landmark(s) [{}] in {sel_us} µs",
                landmarks.len(),
                selector.name()
            )
        });
        let mut state = BuildState::new(graph, landmarks);
        match &mut contexts[..workers] {
            [] => sequential::run(
                graph,
                &mut state,
                batch_size,
                &mut BuildContext::new(),
                &mut obs,
            ),
            [cx] => sequential::run(graph, &mut state, batch_size, cx, &mut obs),
            many => parallel::run(graph, &mut state, batch_size, many, &mut obs),
        }
        let t = Instant::now();
        let index = state.finish();
        obs.stats.closure_us = t.elapsed().as_micros() as u64;
        let closure_us = obs.stats.closure_us;
        obs.emit(|| format!("closure: highway closed + labels flattened in {closure_us} µs"));
        obs.stats.total_us = t_total.elapsed().as_micros() as u64;
        let (total, cut) = (obs.stats.total_us, obs.stats.domination_cut_rate());
        obs.emit(|| {
            format!(
                "build: done in {total} µs (domination cut {:.1} %)",
                cut * 100.0
            )
        });
        index
    }

    /// A borrowed, `Copy` view of this index. Cheap; this is the type the
    /// whole query engine is implemented on, shared with mmap-backed
    /// storage.
    pub fn as_view(&self) -> IndexView<'_> {
        IndexView {
            landmarks: &self.landmarks,
            landmark_rank: &self.landmark_rank,
            label_offsets: &self.label_offsets,
            label_entries: &self.label_entries,
            highway: &self.highway,
        }
    }

    /// Number of landmarks in the index.
    pub fn num_landmarks(&self) -> usize {
        self.landmarks.len()
    }

    /// Vertex count of the graph this index was built for.
    pub fn num_vertices(&self) -> usize {
        self.landmark_rank.len()
    }

    /// The `(hub rank, distance)` label entries of vertex `v`, hub-sorted.
    pub fn label(&self, v: VertexId) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.as_view().label(v)
    }

    /// Whether vertex `v` is a landmark.
    pub fn is_landmark(&self, v: VertexId) -> bool {
        self.as_view().is_landmark(v)
    }

    /// Size statistics for logging and tuning.
    pub fn stats(&self) -> IndexStats {
        self.as_view().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcl_core::testkit;
    use hcl_core::INFINITY;

    #[test]
    fn star_landmark_is_the_centre() {
        let g = testkit::star(10);
        // Pin the strategy: this test asserts *degree-rank* behaviour, so
        // it must not float with the HCL_BUILD_STRATEGY ambient default
        // (a random selector is free to pick a leaf).
        let idx = HighwayCoverIndex::build_with(
            &g,
            &BuildOptions {
                num_landmarks: 1,
                selection: Some(SelectionStrategy::DegreeRank),
                ..BuildOptions::default()
            },
        );
        assert_eq!(idx.num_landmarks(), 1);
        assert!(idx.is_landmark(0));
        // Every leaf is labelled with the centre at distance 1.
        for leaf in 1..10 {
            assert_eq!(idx.label(leaf).collect::<Vec<_>>(), vec![(0, 1)]);
        }
    }

    #[test]
    fn landmark_count_clamps_to_vertex_count() {
        let g = testkit::path(3);
        let idx = HighwayCoverIndex::build(&g, IndexConfig { num_landmarks: 100 });
        assert_eq!(idx.num_landmarks(), 3);
    }

    #[test]
    fn labels_are_hub_sorted() {
        let g = testkit::erdos_renyi(60, 0.08, 3);
        let idx = HighwayCoverIndex::build(&g, IndexConfig { num_landmarks: 8 });
        for v in 0..60 {
            let hubs: Vec<u32> = idx.label(v).map(|(h, _)| h).collect();
            let mut sorted = hubs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(hubs, sorted, "label of {v} not sorted/deduped");
        }
    }

    #[test]
    fn stats_report_plausible_sizes() {
        let g = testkit::grid(8, 8);
        let idx = HighwayCoverIndex::build(&g, IndexConfig::default());
        let s = idx.stats();
        assert_eq!(s.num_landmarks, 16);
        assert!(s.total_label_entries > 0);
        assert!(s.max_label_size <= 16);
        assert!(s.bytes > 0);
    }

    #[test]
    fn sat_add_is_saturating_and_infinity_absorbing() {
        assert_eq!(sat_add(2, 3), 5);
        assert_eq!(sat_add(INFINITY, 0), INFINITY);
        assert_eq!(sat_add(0, INFINITY), INFINITY);
        assert_eq!(sat_add(INFINITY, INFINITY), INFINITY);
        // Near-sentinel operands must clamp, never wrap to a small value.
        assert_eq!(sat_add(INFINITY - 1, 1), INFINITY);
        assert_eq!(sat_add(INFINITY - 1, INFINITY - 1), INFINITY);
        assert_eq!(sat_add(INFINITY - 5, 2), INFINITY - 3);
    }

    #[test]
    fn batch_size_one_matches_sequential_pruning_order() {
        // Batch size 1 reproduces the fully sequential pruning order; the
        // batched default can only label the same vertices or more.
        let g = testkit::barabasi_albert(80, 3, 11);
        let opts = |batch_size| BuildOptions {
            num_landmarks: 16,
            threads: 1,
            batch_size,
            selection: None,
        };
        let tight = HighwayCoverIndex::build_with(&g, &opts(1));
        let batched = HighwayCoverIndex::build_with(&g, &opts(0));
        assert!(tight.stats().total_label_entries <= batched.stats().total_label_entries);
        // Both remain exact: spot-check a few pairs against the oracle.
        for (u, v) in [(0, 79), (3, 41), (17, 17), (60, 2)] {
            let expected = hcl_core::bfs::distance(&g, u, v);
            assert_eq!(tight.query(&g, u, v), expected);
            assert_eq!(batched.query(&g, u, v), expected);
        }
    }

    #[test]
    fn build_stats_counters_are_thread_invariant_and_consistent() {
        let g = testkit::barabasi_albert(80, 3, 7);
        let opts = |threads| BuildOptions {
            num_landmarks: 12,
            threads,
            ..BuildOptions::default()
        };
        let mut lines = Vec::new();
        let mut sink = |l: String| lines.push(l);
        let (idx1, s1) = HighwayCoverIndex::build_with_stats(&g, &opts(1), Some(&mut sink));
        let (idx4, s4) = HighwayCoverIndex::build_with_stats(&g, &opts(4), None);

        // The counters are pure functions of (graph, selection, batch
        // size) — identical across thread counts, like the index itself.
        assert_eq!(s1.bfs_visits, s4.bfs_visits);
        assert_eq!(s1.label_insertions, s4.label_insertions);
        assert_eq!(s1.dominated, s4.dominated);
        assert_eq!(s1.landmark_labels, s4.landmark_labels);
        assert_eq!(
            idx1.stats().total_label_entries,
            idx4.stats().total_label_entries
        );

        // Internal consistency: insertions account for every label entry,
        // and every visit was either another landmark, dominated, or
        // labelled.
        assert_eq!(s1.label_insertions, idx1.stats().total_label_entries as u64);
        assert_eq!(s1.landmark_labels.iter().sum::<u64>(), s1.label_insertions);
        assert!(s1.bfs_visits >= s1.label_insertions + s1.dominated);
        assert!(s1.domination_cut_rate() >= 0.0 && s1.domination_cut_rate() <= 1.0);

        // 12 landmarks at the default batch size of 8 → 2 batches.
        assert_eq!(s1.batch_us.len(), 2);

        // The progress sink saw every phase.
        assert!(lines.iter().any(|l| l.starts_with("select: ")));
        assert!(lines.iter().any(|l| l.starts_with("batch 1: ")));
        assert!(lines.iter().any(|l| l.starts_with("batch 2: ")));
        assert!(lines.iter().any(|l| l.starts_with("closure: ")));
        assert!(lines.iter().any(|l| l.starts_with("build: done")));
    }

    #[test]
    fn build_options_resolve_explicit_values() {
        let opts = BuildOptions::default();
        assert_eq!(opts.resolved_batch_size(), BuildOptions::DEFAULT_BATCH_SIZE);
        let explicit = BuildOptions {
            threads: 3,
            batch_size: 5,
            ..BuildOptions::default()
        };
        assert_eq!(explicit.resolved_threads(), 3);
        assert_eq!(explicit.resolved_batch_size(), 5);
    }
}
