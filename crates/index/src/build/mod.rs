//! Index construction: pruned landmark BFS, deterministic batching, and
//! the highway matrix.
//!
//! # The batched build and why it parallelises
//!
//! The labelling is one pruned BFS per landmark. Each search reads two
//! pieces of shared state — the labels recorded by earlier landmarks and
//! the highway row of its own landmark — and produces two fragments: the
//! vertices it labels and the landmark-to-landmark depths it discovers.
//! The searches are therefore independent *modulo* that shared state, and
//! this module exploits it deterministically:
//!
//! * Landmarks are processed in **rank-ordered batches** of fixed size
//!   ([`BuildOptions::batch_size`], default
//!   [`BuildOptions::DEFAULT_BATCH_SIZE`]).
//! * Every search in a batch runs against a **read-only snapshot** of the
//!   shared state as it stood when the batch started — domination pruning
//!   consults only labels and highway entries from strictly earlier
//!   batches, plus the highway depths the search itself discovers.
//! * After a batch completes, a **merge in landmark-rank order** folds the
//!   per-landmark fragments back into the shared state.
//!
//! Because a search never observes a batch-mate's results, the output is a
//! pure function of the graph, the landmark count, and the batch size —
//! **byte-identical for every thread count**, which
//! `tests/parallel_build.rs` asserts across all testkit families. The
//! sequential builder ([`sequential`]) is literally the `threads = 1` case
//! of the same batched algorithm; [`parallel`] shards each batch over
//! `std::thread::scope` workers, each with its own reusable
//! [`BuildContext`].
//!
//! Batch-local blindness can only *weaken* pruning (a batch-mate's label
//! that would have dominated a vertex is not visible yet), so labels may
//! hold slightly more entries than a fully sequential ordering would
//! produce — never any wrong ones, and exactness of every query is
//! unaffected (the oracle property tests run over the batched output).

mod state;

pub(crate) mod parallel;
pub(crate) mod sequential;

use crate::select::{self, LandmarkSelector, SelectionStrategy};
use crate::view::IndexView;
use hcl_core::bfs::BfsScratch;
use hcl_core::{Graph, VertexId};
use state::BuildState;

/// Sentinel rank for vertices that are not landmarks.
pub(crate) const NOT_A_LANDMARK: u32 = u32::MAX;

/// Construction parameters for [`HighwayCoverIndex`].
#[derive(Clone, Copy, Debug)]
pub struct IndexConfig {
    /// Number of landmarks (highest-degree vertices). Clamped to the vertex
    /// count at build time. More landmarks shrink the fallback search at the
    /// cost of larger labels and a longer build.
    pub num_landmarks: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self { num_landmarks: 16 }
    }
}

/// Full construction options: landmark count plus the parallel-build knobs.
///
/// [`IndexConfig`] stays the simple "how many landmarks" surface;
/// `BuildOptions` adds worker-thread and batching control for
/// [`HighwayCoverIndex::build_with`]. The batch size — not the thread
/// count — is what shapes the output: for a fixed batch size the built
/// index is byte-identical at every thread count (see the module docs).
#[derive(Clone, Copy, Debug)]
pub struct BuildOptions {
    /// Number of landmarks; clamped to the vertex count at build time.
    pub num_landmarks: usize,
    /// Worker threads. `0` means auto: the `HCL_BUILD_THREADS` environment
    /// variable if set to a positive integer, otherwise `1` (the
    /// sequential path). The thread count never changes the output.
    pub threads: usize,
    /// Landmarks per batch. `0` means [`Self::DEFAULT_BATCH_SIZE`]. Larger
    /// batches expose more parallelism but weaken domination pruning
    /// (batch-mates cannot prune against each other), so labels grow;
    /// `1` reproduces the fully sequential pruning order exactly.
    pub batch_size: usize,
    /// Landmark-selection strategy. `None` means auto: the
    /// `HCL_BUILD_STRATEGY` environment variable if set to a valid
    /// `name[:seed]` spelling, otherwise
    /// [`SelectionStrategy::DegreeRank`]. Unlike threads and batch size,
    /// the strategy *shapes the output* (it decides which vertices anchor
    /// the labelling), so persisted containers record it in their header.
    pub selection: Option<SelectionStrategy>,
}

impl BuildOptions {
    /// Default landmarks-per-batch when [`BuildOptions::batch_size`] is 0.
    pub const DEFAULT_BATCH_SIZE: usize = 8;

    /// The worker-thread count this configuration resolves to (see
    /// [`BuildOptions::threads`]).
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        Self::threads_from_env(1)
    }

    /// Thread count requested via the `HCL_BUILD_THREADS` environment
    /// variable, or `fallback` when unset/invalid/zero.
    ///
    /// The single authority on the env var's semantics: the library's auto
    /// mode falls back to `1` (never surprise a host process with
    /// parallelism), while the CLI passes all available cores.
    pub fn threads_from_env(fallback: usize) -> usize {
        std::env::var("HCL_BUILD_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or(fallback)
    }

    /// The batch size this configuration resolves to (see
    /// [`BuildOptions::batch_size`]).
    pub fn resolved_batch_size(&self) -> usize {
        if self.batch_size > 0 {
            self.batch_size
        } else {
            Self::DEFAULT_BATCH_SIZE
        }
    }

    /// The landmark-selection strategy this configuration resolves to:
    /// the explicit [`BuildOptions::selection`] if set, else the
    /// `HCL_BUILD_STRATEGY` environment variable, else degree ranking.
    pub fn resolved_selection(&self) -> SelectionStrategy {
        self.selection
            .or_else(SelectionStrategy::from_env)
            .unwrap_or_default()
    }
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self {
            num_landmarks: IndexConfig::default().num_landmarks,
            threads: 0,
            batch_size: 0,
            selection: None,
        }
    }
}

impl From<IndexConfig> for BuildOptions {
    fn from(config: IndexConfig) -> Self {
        Self {
            num_landmarks: config.num_landmarks,
            ..Self::default()
        }
    }
}

/// Reusable scratch space for one build worker, mirroring
/// [`QueryContext`](crate::QueryContext) on the query side.
///
/// A pruned landmark BFS needs a distance array, a queue, a touched-list
/// (all provided by [`BfsScratch`] from `hcl-core`), and a private copy of
/// its landmark's highway row. One context serves any number of searches —
/// buffers are reset via the touched-list, so reuse costs `O(visited)` per
/// search, not `O(n)`. Create one per worker thread; callers that rebuild
/// indexes repeatedly can hold a pool and pass it to
/// [`HighwayCoverIndex::build_in`].
#[derive(Default)]
pub struct BuildContext {
    pub(crate) scratch: BfsScratch,
    pub(crate) highway_row: Vec<u32>,
}

impl BuildContext {
    /// Creates an empty context; buffers grow lazily to the graph size.
    pub fn new() -> Self {
        Self::default()
    }
}

/// `a + b` in distance arithmetic: saturating addition.
///
/// Because [`INFINITY`](hcl_core::INFINITY) is `u32::MAX`, saturation
/// doubles as absorption — anything plus unreachable stays unreachable, and
/// a sum that would wrap clamps to the sentinel instead of turning into a
/// small bogus "distance". Used by the Floyd–Warshall closure and the
/// domination check, where operands can sit near the sentinel when fed a
/// hostile (well-formed but semantically tampered) index file.
#[inline]
pub(crate) fn sat_add(a: u32, b: u32) -> u32 {
    a.saturating_add(b)
}

/// Size and shape statistics of a built index, for logging and tuning.
#[derive(Clone, Copy, Debug)]
pub struct IndexStats {
    /// Number of landmarks actually used (≤ configured).
    pub num_landmarks: usize,
    /// Total `(hub, dist)` entries across all vertex labels.
    pub total_label_entries: usize,
    /// Mean label entries per vertex.
    pub avg_label_size: f64,
    /// Largest single vertex label.
    pub max_label_size: usize,
    /// Approximate flat footprint of the index arrays in bytes.
    pub bytes: usize,
}

/// A built highway-cover 2-hop labelling over one [`Graph`] — the owned,
/// `Vec`-backed storage of the index.
///
/// The index borrows nothing: it is a standalone snapshot that answers
/// queries together with the graph it was built from (the fallback BFS
/// needs adjacency). Label arrays are stored CSR-style in flat vectors with
/// fixed-width elements, so the layout matches `hcl-store`'s on-disk format
/// and a file can be served back as a borrowed
/// [`IndexView`](crate::IndexView) without copying. All read paths delegate
/// through [`HighwayCoverIndex::as_view`].
pub struct HighwayCoverIndex {
    /// Landmark rank → vertex id, in ranking order (rank 0 = highest degree).
    pub(crate) landmarks: Vec<VertexId>,
    /// Vertex id → landmark rank, or [`NOT_A_LANDMARK`]; length is the
    /// vertex count of the build graph.
    pub(crate) landmark_rank: Vec<u32>,
    /// CSR offsets into `label_entries`; length `n + 1`.
    pub(crate) label_offsets: Vec<u64>,
    /// Packed `(hub << 32) | dist` label entries
    /// ([`pack_label_entry`](crate::pack_label_entry)), hub-ascending
    /// within each vertex.
    pub(crate) label_entries: Vec<u64>,
    /// Row-major `k × k` landmark-to-landmark distances, closed under
    /// shortest paths (Floyd–Warshall), [`INFINITY`](hcl_core::INFINITY)
    /// when disconnected.
    pub(crate) highway: Vec<u32>,
}

impl HighwayCoverIndex {
    /// Builds the index for `graph` with the given configuration.
    ///
    /// Runs one pruned BFS per landmark (see the module docs for the
    /// batched schedule). A BFS from landmark `r` stops at two kinds of
    /// vertices:
    ///
    /// * another landmark — its depth seeds the highway matrix and the
    ///   search does not continue through it, so every recorded label
    ///   distance is over a path whose interior avoids landmarks;
    /// * a vertex whose distance to `r` is already covered at least as well
    ///   via an earlier-batch landmark and the highway (*domination
    ///   pruning*) — this is what keeps labels small on complex networks.
    ///
    /// The highway matrix is then closed with Floyd–Warshall over the `k`
    /// landmarks so it holds exact landmark-to-landmark distances.
    ///
    /// Thread count defaults to auto (`HCL_BUILD_THREADS` or sequential);
    /// use [`HighwayCoverIndex::build_with`] for explicit control.
    pub fn build(graph: &Graph, config: IndexConfig) -> Self {
        Self::build_with(graph, &BuildOptions::from(config))
    }

    /// Builds the index with explicit thread/batch control.
    ///
    /// For a fixed batch size the result is **byte-identical at every
    /// thread count**; `threads = 1` runs fully in the calling thread with
    /// one [`BuildContext`].
    pub fn build_with(graph: &Graph, options: &BuildOptions) -> Self {
        // A batch holds at most batch_size searches, so extra workers
        // beyond that could never receive work — don't create them.
        let threads = options
            .resolved_threads()
            .clamp(1, options.resolved_batch_size());
        let mut contexts: Vec<BuildContext> = (0..threads).map(|_| BuildContext::new()).collect();
        Self::build_in(graph, options, &mut contexts)
    }

    /// Builds the index reusing caller-owned worker scratch — the
    /// allocation-amortising form of [`HighwayCoverIndex::build_with`] for
    /// repeated builds (benchmarks, rebuild loops).
    ///
    /// One worker runs per context, so `contexts.len()` — not
    /// [`BuildOptions::threads`] — is the thread count here, capped at the
    /// per-batch job count (extra workers could never receive work). An
    /// empty slice builds sequentially with a temporary context. Landmarks
    /// are chosen by [`BuildOptions::selection`] (resolved via
    /// [`BuildOptions::resolved_selection`]).
    pub fn build_in(graph: &Graph, options: &BuildOptions, contexts: &mut [BuildContext]) -> Self {
        let selector = options.resolved_selection().selector();
        Self::build_in_with_selector(graph, options, contexts, selector.as_ref())
    }

    /// [`HighwayCoverIndex::build_in`] with a caller-supplied
    /// [`LandmarkSelector`] — the fully pluggable entry point for
    /// strategies beyond the built-in [`SelectionStrategy`] tags.
    ///
    /// `options.selection` is ignored here (the explicit `selector` wins);
    /// everything else behaves as in [`HighwayCoverIndex::build_in`]. The
    /// selector's output is validated (exactly `min(k, n)` distinct
    /// in-range ids) and the build panics with a message naming the
    /// selector if the contract is violated. In a *multi-threaded* build
    /// the selector runs under the same worker-panic capture as the
    /// landmark searches, so a faulty strategy surfaces as one coherent
    /// `index build worker panicked: …` panic instead of the old opaque
    /// join failure; a single-threaded build runs the selector inline,
    /// where its panic already propagates coherently (original payload and
    /// location) without wrapping.
    pub fn build_in_with_selector(
        graph: &Graph,
        options: &BuildOptions,
        contexts: &mut [BuildContext],
        selector: &dyn LandmarkSelector,
    ) -> Self {
        let graph = graph.as_view();
        let batch_size = options.resolved_batch_size();
        let num_landmarks = options.num_landmarks.min(graph.num_vertices());
        // Contexts beyond the per-batch job count could never receive
        // work; cap the pool so no idle worker threads get spawned.
        let workers = contexts.len().min(batch_size).min(num_landmarks);
        let landmarks = if workers > 1 {
            parallel::run_selection(graph, selector, num_landmarks)
        } else {
            select::checked_select(selector, graph, num_landmarks)
        };
        let mut state = BuildState::new(graph, landmarks);
        match &mut contexts[..workers] {
            [] => sequential::run(graph, &mut state, batch_size, &mut BuildContext::new()),
            [cx] => sequential::run(graph, &mut state, batch_size, cx),
            many => parallel::run(graph, &mut state, batch_size, many),
        }
        state.finish()
    }

    /// A borrowed, `Copy` view of this index. Cheap; this is the type the
    /// whole query engine is implemented on, shared with mmap-backed
    /// storage.
    pub fn as_view(&self) -> IndexView<'_> {
        IndexView {
            landmarks: &self.landmarks,
            landmark_rank: &self.landmark_rank,
            label_offsets: &self.label_offsets,
            label_entries: &self.label_entries,
            highway: &self.highway,
        }
    }

    /// Number of landmarks in the index.
    pub fn num_landmarks(&self) -> usize {
        self.landmarks.len()
    }

    /// Vertex count of the graph this index was built for.
    pub fn num_vertices(&self) -> usize {
        self.landmark_rank.len()
    }

    /// The `(hub rank, distance)` label entries of vertex `v`, hub-sorted.
    pub fn label(&self, v: VertexId) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.as_view().label(v)
    }

    /// Whether vertex `v` is a landmark.
    pub fn is_landmark(&self, v: VertexId) -> bool {
        self.as_view().is_landmark(v)
    }

    /// Size statistics for logging and tuning.
    pub fn stats(&self) -> IndexStats {
        self.as_view().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcl_core::testkit;
    use hcl_core::INFINITY;

    #[test]
    fn star_landmark_is_the_centre() {
        let g = testkit::star(10);
        // Pin the strategy: this test asserts *degree-rank* behaviour, so
        // it must not float with the HCL_BUILD_STRATEGY ambient default
        // (a random selector is free to pick a leaf).
        let idx = HighwayCoverIndex::build_with(
            &g,
            &BuildOptions {
                num_landmarks: 1,
                selection: Some(SelectionStrategy::DegreeRank),
                ..BuildOptions::default()
            },
        );
        assert_eq!(idx.num_landmarks(), 1);
        assert!(idx.is_landmark(0));
        // Every leaf is labelled with the centre at distance 1.
        for leaf in 1..10 {
            assert_eq!(idx.label(leaf).collect::<Vec<_>>(), vec![(0, 1)]);
        }
    }

    #[test]
    fn landmark_count_clamps_to_vertex_count() {
        let g = testkit::path(3);
        let idx = HighwayCoverIndex::build(&g, IndexConfig { num_landmarks: 100 });
        assert_eq!(idx.num_landmarks(), 3);
    }

    #[test]
    fn labels_are_hub_sorted() {
        let g = testkit::erdos_renyi(60, 0.08, 3);
        let idx = HighwayCoverIndex::build(&g, IndexConfig { num_landmarks: 8 });
        for v in 0..60 {
            let hubs: Vec<u32> = idx.label(v).map(|(h, _)| h).collect();
            let mut sorted = hubs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(hubs, sorted, "label of {v} not sorted/deduped");
        }
    }

    #[test]
    fn stats_report_plausible_sizes() {
        let g = testkit::grid(8, 8);
        let idx = HighwayCoverIndex::build(&g, IndexConfig::default());
        let s = idx.stats();
        assert_eq!(s.num_landmarks, 16);
        assert!(s.total_label_entries > 0);
        assert!(s.max_label_size <= 16);
        assert!(s.bytes > 0);
    }

    #[test]
    fn sat_add_is_saturating_and_infinity_absorbing() {
        assert_eq!(sat_add(2, 3), 5);
        assert_eq!(sat_add(INFINITY, 0), INFINITY);
        assert_eq!(sat_add(0, INFINITY), INFINITY);
        assert_eq!(sat_add(INFINITY, INFINITY), INFINITY);
        // Near-sentinel operands must clamp, never wrap to a small value.
        assert_eq!(sat_add(INFINITY - 1, 1), INFINITY);
        assert_eq!(sat_add(INFINITY - 1, INFINITY - 1), INFINITY);
        assert_eq!(sat_add(INFINITY - 5, 2), INFINITY - 3);
    }

    #[test]
    fn batch_size_one_matches_sequential_pruning_order() {
        // Batch size 1 reproduces the fully sequential pruning order; the
        // batched default can only label the same vertices or more.
        let g = testkit::barabasi_albert(80, 3, 11);
        let opts = |batch_size| BuildOptions {
            num_landmarks: 16,
            threads: 1,
            batch_size,
            selection: None,
        };
        let tight = HighwayCoverIndex::build_with(&g, &opts(1));
        let batched = HighwayCoverIndex::build_with(&g, &opts(0));
        assert!(tight.stats().total_label_entries <= batched.stats().total_label_entries);
        // Both remain exact: spot-check a few pairs against the oracle.
        for (u, v) in [(0, 79), (3, 41), (17, 17), (60, 2)] {
            let expected = hcl_core::bfs::distance(&g, u, v);
            assert_eq!(tight.query(&g, u, v), expected);
            assert_eq!(batched.query(&g, u, v), expected);
        }
    }

    #[test]
    fn build_options_resolve_explicit_values() {
        let opts = BuildOptions::default();
        assert_eq!(opts.resolved_batch_size(), BuildOptions::DEFAULT_BATCH_SIZE);
        let explicit = BuildOptions {
            threads: 3,
            batch_size: 5,
            ..BuildOptions::default()
        };
        assert_eq!(explicit.resolved_threads(), 3);
        assert_eq!(explicit.resolved_batch_size(), 5);
    }
}
