//! Shared build state, the pruned landmark BFS, and the deterministic
//! merge that folds per-landmark fragments back in rank order.
//!
//! The contract that makes the build thread-count-invariant lives here:
//! [`pruned_bfs`] takes the state by shared reference (a worker can never
//! observe a batch-mate's results), and [`BuildState::merge`] is the only
//! mutation point, called by the drivers strictly in landmark-rank order
//! after each batch.

use super::{sat_add, BuildContext, HighwayCoverIndex, NOT_A_LANDMARK};
use hcl_core::{GraphView, VertexId, INFINITY};

/// Everything a pruned BFS reads and a merge writes: the landmark set, the
/// per-vertex labels accumulated so far, and the (unclosed) highway matrix.
pub(crate) struct BuildState {
    k: usize,
    landmarks: Vec<VertexId>,
    landmark_rank: Vec<u32>,
    /// Per-vertex labels, grown batch by batch in landmark-rank order so
    /// each vector is already hub-sorted when flattened at the end.
    labels: Vec<Vec<(u32, u32)>>,
    /// Row-major `k × k`, diagonal zero, [`INFINITY`] elsewhere until
    /// seeded by merges and closed by [`BuildState::finish`].
    highway: Vec<u32>,
}

/// What one pruned BFS produces: the vertices it labels (in discovery
/// order, starting with its own root at distance 0) and the depth at which
/// it reached each other landmark.
pub(crate) struct LandmarkFragment {
    pub(crate) rank: usize,
    /// `(vertex, distance)` pairs to become `(rank, distance)` labels.
    pub(crate) labelled: Vec<(VertexId, u32)>,
    /// `(other rank, depth)` highway seeds discovered by this search.
    highway_seeds: Vec<(u32, u32)>,
    /// Vertices the search dequeued (pruned or not) — the BFS's raw work.
    pub(crate) visits: u64,
    /// Vertices cut by domination pruning (visited, neither labelled nor
    /// expanded).
    pub(crate) dominated: u64,
}

impl BuildState {
    /// `landmarks` is the already-selected, already-validated landmark
    /// list in rank order (see `select::checked_select`): the state layer
    /// is strategy-agnostic.
    pub(crate) fn new(graph: GraphView<'_>, landmarks: Vec<VertexId>) -> Self {
        let n = graph.num_vertices();
        let k = landmarks.len();
        let mut landmark_rank = vec![NOT_A_LANDMARK; n];
        for (rank, &v) in landmarks.iter().enumerate() {
            landmark_rank[v as usize] = rank as u32;
        }

        let mut highway = vec![INFINITY; k * k];
        for i in 0..k {
            highway[i * k + i] = 0;
        }

        Self {
            k,
            landmarks,
            landmark_rank,
            labels: vec![Vec::new(); n],
            highway,
        }
    }

    pub(crate) fn num_landmarks(&self) -> usize {
        self.k
    }

    /// Folds one fragment into the shared state. Must be called in
    /// landmark-rank order (the drivers sort each batch before merging);
    /// this ordering is what keeps per-vertex labels hub-sorted and the
    /// output independent of worker scheduling.
    pub(crate) fn merge(&mut self, frag: LandmarkFragment) {
        let (i, k) = (frag.rank, self.k);
        for (v, d) in frag.labelled {
            self.labels[v as usize].push((i as u32, d));
        }
        for (j, d) in frag.highway_seeds {
            let j = j as usize;
            let best = self.highway[i * k + j].min(d);
            self.highway[i * k + j] = best;
            self.highway[j * k + i] = best;
        }
    }

    /// Closes the highway and flattens the labels into the final index.
    pub(crate) fn finish(self) -> HighwayCoverIndex {
        let Self {
            k,
            landmarks,
            landmark_rank,
            labels,
            mut highway,
        } = self;

        // Close the highway so it holds exact landmark-to-landmark
        // distances: a shortest landmark-to-landmark path decomposes into
        // landmark-free segments, each of which the pruned BFS measured.
        // Saturating adds keep near-INFINITY operands from wrapping into
        // small bogus distances.
        for mid in 0..k {
            for a in 0..k {
                let via_a = highway[a * k + mid];
                if via_a == INFINITY {
                    continue;
                }
                for b in 0..k {
                    let via_b = highway[mid * k + b];
                    if via_b == INFINITY {
                        continue;
                    }
                    let cand = sat_add(via_a, via_b);
                    let entry = &mut highway[a * k + b];
                    if cand < *entry {
                        *entry = cand;
                    }
                }
            }
        }

        // Flatten labels CSR-style into the packed single-array layout the
        // query hot path (and the v3 store section) consumes directly.
        let n = labels.len();
        let mut label_offsets = Vec::with_capacity(n + 1);
        label_offsets.push(0);
        let total: usize = labels.iter().map(Vec::len).sum();
        let mut label_entries = Vec::with_capacity(total);
        for per_vertex in &labels {
            for &(hub, d) in per_vertex {
                label_entries.push(crate::view::pack_label_entry(hub, d));
            }
            label_offsets.push(label_entries.len() as u64);
        }

        HighwayCoverIndex {
            landmarks,
            landmark_rank,
            label_offsets,
            label_entries,
            highway,
        }
    }
}

/// One pruned BFS from the landmark of rank `rank`, against a read-only
/// snapshot of the shared state.
///
/// The search carries a private copy of its landmark's highway row
/// (`cx.highway_row`): it starts from the snapshot and absorbs the depths
/// the search itself discovers, so domination decisions see exactly what a
/// fully sequential run with the same batch schedule would see — nothing a
/// concurrent batch-mate produces.
pub(crate) fn pruned_bfs(
    graph: GraphView<'_>,
    state: &BuildState,
    rank: usize,
    cx: &mut BuildContext,
) -> LandmarkFragment {
    let k = state.k;
    let root = state.landmarks[rank];
    let mut frag = LandmarkFragment {
        rank,
        labelled: vec![(root, 0)],
        highway_seeds: Vec::new(),
        visits: 0,
        dominated: 0,
    };

    cx.scratch.reset();
    cx.scratch.ensure_capacity(graph.num_vertices());
    cx.highway_row.clear();
    cx.highway_row
        .extend_from_slice(&state.highway[rank * k..(rank + 1) * k]);

    cx.scratch.dist[root as usize] = 0;
    cx.scratch.touched.push(root);
    cx.scratch.queue.push_back(root);

    while let Some(v) = cx.scratch.queue.pop_front() {
        frag.visits += 1;
        let d = cx.scratch.dist[v as usize];
        if v != root {
            let other = state.landmark_rank[v as usize];
            if other != NOT_A_LANDMARK {
                // Reached another landmark: seed the highway, prune.
                let j = other as usize;
                if d < cx.highway_row[j] {
                    cx.highway_row[j] = d;
                }
                frag.highway_seeds.push((other, d));
                continue;
            }
            // Domination pruning: if an earlier-batch landmark already
            // covers this vertex at least as well (via the highway row as
            // this search knows it), neither label nor expand.
            let dominated = state.labels[v as usize].iter().any(|&(j, dj)| {
                let h = cx.highway_row[j as usize];
                h != INFINITY && sat_add(h, dj) <= d
            });
            if dominated {
                frag.dominated += 1;
                continue;
            }
            frag.labelled.push((v, d));
        }
        for &w in graph.neighbors(v) {
            if cx.scratch.dist[w as usize] == INFINITY {
                cx.scratch.dist[w as usize] = d + 1;
                cx.scratch.touched.push(w);
                cx.scratch.queue.push_back(w);
            }
        }
    }

    cx.scratch.reset();
    frag
}
