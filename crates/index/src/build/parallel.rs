//! The multi-threaded build driver: scoped-thread landmark sharding.
//!
//! Rayon-free by design (the build environment has no registry access):
//! each batch opens a `std::thread::scope`, one worker per
//! [`BuildContext`], and workers pull landmark ranks from a shared atomic
//! cursor — cheap dynamic load balancing, since pruned-BFS cost varies by
//! landmark. Workers return their fragments through the join handles; the
//! driver sorts them by rank and merges, so the result is byte-identical
//! to the sequential driver regardless of how the OS schedules workers.
//!
//! Spawning per batch keeps the lifetimes trivial (the scope's shared
//! borrow of the state ends before the merge needs it mutably) and costs
//! microseconds per batch — noise next to the BFS work a batch contains.

use super::state::{pruned_bfs, BuildState, LandmarkFragment};
use super::BuildContext;
use hcl_core::GraphView;
use std::sync::atomic::{AtomicUsize, Ordering};

pub(crate) fn run(
    graph: GraphView<'_>,
    state: &mut BuildState,
    batch_size: usize,
    contexts: &mut [BuildContext],
) {
    let k = state.num_landmarks();
    let mut start = 0usize;
    while start < k {
        let end = (start + batch_size).min(k);
        let cursor = AtomicUsize::new(start);
        let snapshot: &BuildState = state;
        let mut frags: Vec<LandmarkFragment> = std::thread::scope(|s| {
            let handles: Vec<_> = contexts
                .iter_mut()
                .map(|cx| {
                    let cursor = &cursor;
                    s.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let rank = cursor.fetch_add(1, Ordering::Relaxed);
                            if rank >= end {
                                break;
                            }
                            out.push(pruned_bfs(graph, snapshot, rank, cx));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("build worker panicked"))
                .collect()
        });
        frags.sort_unstable_by_key(|f| f.rank);
        for frag in frags {
            state.merge(frag);
        }
        start = end;
    }
}
