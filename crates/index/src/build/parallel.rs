//! The multi-threaded build driver: scoped-thread landmark sharding.
//!
//! Rayon-free by design (the build environment has no registry access):
//! each batch opens a `std::thread::scope`, one worker per
//! [`BuildContext`], and workers pull landmark ranks from a shared atomic
//! cursor — cheap dynamic load balancing, since pruned-BFS cost varies by
//! landmark. Workers return their fragments through the join handles; the
//! driver sorts them by rank and merges, so the result is byte-identical
//! to the sequential driver regardless of how the OS schedules workers.
//!
//! Spawning per batch keeps the lifetimes trivial (the scope's shared
//! borrow of the state ends before the merge needs it mutably) and costs
//! microseconds per batch — noise next to the BFS work a batch contains.

use super::state::{pruned_bfs, BuildState, LandmarkFragment};
use super::{BuildContext, Observer};
use crate::select::{checked_select, LandmarkSelector};
use hcl_core::{GraphView, VertexId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread::ScopedJoinHandle;
use std::time::Instant;

/// Joins every handle, collecting the results; if any worker panicked,
/// re-raises **after all workers are joined** as one coherent build panic.
///
/// Without this, a panicking worker used to surface as the driver's own
/// `expect("build worker panicked")` — an opaque secondary panic that
/// swallowed the worker's actual payload. String-ish payloads (the
/// overwhelmingly common case: `panic!`, assertion failures, slice-index
/// messages) are wrapped with build context; anything else is re-raised
/// verbatim via `resume_unwind` so custom payloads still reach the caller.
/// When several workers panic in one batch, the first (by spawn order)
/// wins — one build failure, one report.
fn join_workers<T>(handles: Vec<ScopedJoinHandle<'_, T>>) -> Vec<T> {
    let mut out = Vec::with_capacity(handles.len());
    let mut panicked: Option<Box<dyn std::any::Any + Send>> = None;
    for handle in handles {
        match handle.join() {
            Ok(value) => out.push(value),
            Err(payload) => {
                panicked.get_or_insert(payload);
            }
        }
    }
    if let Some(payload) = panicked {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned());
        match msg {
            Some(msg) => panic!("index build worker panicked: {msg}"),
            None => std::panic::resume_unwind(payload),
        }
    }
    out
}

/// Runs landmark selection on a scoped worker thread, under the same
/// [`join_workers`] capture-and-re-raise discipline as the batched
/// searches.
///
/// Selection strategies are *pluggable* code — the one part of the build a
/// caller can inject — so the multi-threaded driver gives their panics the
/// same single coherent surfacing as any other build-worker panic.
/// (Single-threaded builds run the selector inline instead: there a panic
/// already reaches the caller with its original payload and location, so
/// no wrapping is needed.)
pub(crate) fn run_selection(
    graph: GraphView<'_>,
    selector: &dyn LandmarkSelector,
    num_landmarks: usize,
) -> Vec<VertexId> {
    std::thread::scope(|s| {
        let handle = s.spawn(move || checked_select(selector, graph, num_landmarks));
        join_workers(vec![handle])
            .pop()
            .expect("one selection worker, one result")
    })
}

pub(crate) fn run(
    graph: GraphView<'_>,
    state: &mut BuildState,
    batch_size: usize,
    contexts: &mut [BuildContext],
    obs: &mut Observer<'_, '_>,
) {
    let k = state.num_landmarks();
    let mut start = 0usize;
    while start < k {
        let end = (start + batch_size).min(k);
        let cursor = AtomicUsize::new(start);
        let snapshot: &BuildState = state;
        let t = Instant::now();
        let mut frags: Vec<LandmarkFragment> = std::thread::scope(|s| {
            let handles: Vec<_> = contexts
                .iter_mut()
                .map(|cx| {
                    let cursor = &cursor;
                    s.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let rank = cursor.fetch_add(1, Ordering::Relaxed);
                            if rank >= end {
                                break;
                            }
                            out.push(pruned_bfs(graph, snapshot, rank, cx));
                        }
                        out
                    })
                })
                .collect();
            join_workers(handles).into_iter().flatten().collect()
        });
        frags.sort_unstable_by_key(|f| f.rank);
        obs.record_batch(start, end, k, t.elapsed().as_micros() as u64, &frags);
        let t = Instant::now();
        for frag in frags {
            state.merge(frag);
        }
        obs.stats.merge_us += t.elapsed().as_micros() as u64;
        start = end;
    }
}
