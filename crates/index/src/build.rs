//! Index construction: pruned landmark BFS and the highway matrix.

use crate::view::IndexView;
use hcl_core::{Graph, VertexId, INFINITY};
use std::collections::VecDeque;

/// Sentinel rank for vertices that are not landmarks.
pub(crate) const NOT_A_LANDMARK: u32 = u32::MAX;

/// Construction parameters for [`HighwayCoverIndex`].
#[derive(Clone, Copy, Debug)]
pub struct IndexConfig {
    /// Number of landmarks (highest-degree vertices). Clamped to the vertex
    /// count at build time. More landmarks shrink the fallback search at the
    /// cost of larger labels and a longer build.
    pub num_landmarks: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self { num_landmarks: 16 }
    }
}

/// Size and shape statistics of a built index, for logging and tuning.
#[derive(Clone, Copy, Debug)]
pub struct IndexStats {
    /// Number of landmarks actually used (≤ configured).
    pub num_landmarks: usize,
    /// Total `(hub, dist)` entries across all vertex labels.
    pub total_label_entries: usize,
    /// Mean label entries per vertex.
    pub avg_label_size: f64,
    /// Largest single vertex label.
    pub max_label_size: usize,
    /// Approximate flat footprint of the index arrays in bytes.
    pub bytes: usize,
}

/// A built highway-cover 2-hop labelling over one [`Graph`] — the owned,
/// `Vec`-backed storage of the index.
///
/// The index borrows nothing: it is a standalone snapshot that answers
/// queries together with the graph it was built from (the fallback BFS
/// needs adjacency). Label arrays are stored CSR-style in flat vectors with
/// fixed-width elements, so the layout matches `hcl-store`'s on-disk format
/// and a file can be served back as a borrowed
/// [`IndexView`](crate::IndexView) without copying. All read paths delegate
/// through [`HighwayCoverIndex::as_view`].
pub struct HighwayCoverIndex {
    /// Landmark rank → vertex id, in ranking order (rank 0 = highest degree).
    pub(crate) landmarks: Vec<VertexId>,
    /// Vertex id → landmark rank, or [`NOT_A_LANDMARK`]; length is the
    /// vertex count of the build graph.
    pub(crate) landmark_rank: Vec<u32>,
    /// CSR offsets into `label_hubs` / `label_dists`; length `n + 1`.
    pub(crate) label_offsets: Vec<u64>,
    /// Hub (landmark rank) per label entry, ascending within each vertex.
    pub(crate) label_hubs: Vec<u32>,
    /// Distance to the hub per label entry.
    pub(crate) label_dists: Vec<u32>,
    /// Row-major `k × k` landmark-to-landmark distances, closed under
    /// shortest paths (Floyd–Warshall), [`INFINITY`] when disconnected.
    pub(crate) highway: Vec<u32>,
}

impl HighwayCoverIndex {
    /// Builds the index for `graph` with the given configuration.
    ///
    /// Runs one pruned BFS per landmark. A BFS from landmark `r` stops at
    /// two kinds of vertices:
    ///
    /// * another landmark — its depth seeds the highway matrix and the
    ///   search does not continue through it, so every recorded label
    ///   distance is over a path whose interior avoids landmarks;
    /// * a vertex whose distance to `r` is already covered at least as well
    ///   via an earlier landmark and the highway (*domination pruning*) —
    ///   this is what keeps labels small on complex networks.
    ///
    /// The highway matrix is then closed with Floyd–Warshall over the `k`
    /// landmarks so it holds exact landmark-to-landmark distances.
    pub fn build(graph: &Graph, config: IndexConfig) -> Self {
        let n = graph.num_vertices();
        let k = config.num_landmarks.min(n);

        let ranking = graph.rank_by_degree();
        let landmarks: Vec<VertexId> = ranking[..k].to_vec();
        let mut landmark_rank = vec![NOT_A_LANDMARK; n];
        for (rank, &v) in landmarks.iter().enumerate() {
            landmark_rank[v as usize] = rank as u32;
        }

        let mut highway = vec![INFINITY; k * k];
        for i in 0..k {
            highway[i * k + i] = 0;
        }

        // Per-vertex labels, built in landmark-rank order so each vector is
        // already sorted by hub rank when flattened below.
        let mut labels: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];

        let mut dist = vec![INFINITY; n];
        let mut touched: Vec<VertexId> = Vec::new();
        let mut queue: VecDeque<VertexId> = VecDeque::new();

        for i in 0..k {
            let root = landmarks[i];
            dist[root as usize] = 0;
            touched.push(root);
            queue.push_back(root);
            labels[root as usize].push((i as u32, 0));

            while let Some(v) = queue.pop_front() {
                let d = dist[v as usize];
                if v != root {
                    let rank = landmark_rank[v as usize];
                    if rank != NOT_A_LANDMARK {
                        // Reached another landmark: seed the highway, prune.
                        let j = rank as usize;
                        let entry = &mut highway[i * k + j];
                        *entry = (*entry).min(d);
                        highway[j * k + i] = *entry;
                        continue;
                    }
                    // Domination pruning: if an earlier landmark already
                    // covers this vertex at least as well (via the highway
                    // entries discovered so far), neither label nor expand.
                    let dominated = labels[v as usize].iter().any(|&(j, dj)| {
                        let h = highway[i * k + j as usize];
                        h != INFINITY && h + dj <= d
                    });
                    if dominated {
                        continue;
                    }
                    labels[v as usize].push((i as u32, d));
                }
                for &w in graph.neighbors(v) {
                    if dist[w as usize] == INFINITY {
                        dist[w as usize] = d + 1;
                        touched.push(w);
                        queue.push_back(w);
                    }
                }
            }

            for &v in &touched {
                dist[v as usize] = INFINITY;
            }
            touched.clear();
        }

        // Close the highway so it holds exact landmark-to-landmark
        // distances: a shortest landmark-to-landmark path decomposes into
        // landmark-free segments, each of which the pruned BFS measured.
        for mid in 0..k {
            for a in 0..k {
                let via_a = highway[a * k + mid];
                if via_a == INFINITY {
                    continue;
                }
                for b in 0..k {
                    let via_b = highway[mid * k + b];
                    if via_b == INFINITY {
                        continue;
                    }
                    let cand = via_a + via_b;
                    let entry = &mut highway[a * k + b];
                    if cand < *entry {
                        *entry = cand;
                    }
                }
            }
        }

        // Flatten labels CSR-style.
        let mut label_offsets = Vec::with_capacity(n + 1);
        label_offsets.push(0);
        let total: usize = labels.iter().map(Vec::len).sum();
        let mut label_hubs = Vec::with_capacity(total);
        let mut label_dists = Vec::with_capacity(total);
        for per_vertex in &labels {
            for &(hub, d) in per_vertex {
                label_hubs.push(hub);
                label_dists.push(d);
            }
            label_offsets.push(label_hubs.len() as u64);
        }

        Self {
            landmarks,
            landmark_rank,
            label_offsets,
            label_hubs,
            label_dists,
            highway,
        }
    }

    /// A borrowed, `Copy` view of this index. Cheap; this is the type the
    /// whole query engine is implemented on, shared with mmap-backed
    /// storage.
    pub fn as_view(&self) -> IndexView<'_> {
        IndexView {
            landmarks: &self.landmarks,
            landmark_rank: &self.landmark_rank,
            label_offsets: &self.label_offsets,
            label_hubs: &self.label_hubs,
            label_dists: &self.label_dists,
            highway: &self.highway,
        }
    }

    /// Number of landmarks in the index.
    pub fn num_landmarks(&self) -> usize {
        self.landmarks.len()
    }

    /// Vertex count of the graph this index was built for.
    pub fn num_vertices(&self) -> usize {
        self.landmark_rank.len()
    }

    /// The `(hub rank, distance)` label entries of vertex `v`, hub-sorted.
    pub fn label(&self, v: VertexId) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.as_view().label(v)
    }

    /// Whether vertex `v` is a landmark.
    pub fn is_landmark(&self, v: VertexId) -> bool {
        self.as_view().is_landmark(v)
    }

    /// Size statistics for logging and tuning.
    pub fn stats(&self) -> IndexStats {
        self.as_view().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcl_core::testkit;

    #[test]
    fn star_landmark_is_the_centre() {
        let g = testkit::star(10);
        let idx = HighwayCoverIndex::build(&g, IndexConfig { num_landmarks: 1 });
        assert_eq!(idx.num_landmarks(), 1);
        assert!(idx.is_landmark(0));
        // Every leaf is labelled with the centre at distance 1.
        for leaf in 1..10 {
            assert_eq!(idx.label(leaf).collect::<Vec<_>>(), vec![(0, 1)]);
        }
    }

    #[test]
    fn landmark_count_clamps_to_vertex_count() {
        let g = testkit::path(3);
        let idx = HighwayCoverIndex::build(&g, IndexConfig { num_landmarks: 100 });
        assert_eq!(idx.num_landmarks(), 3);
    }

    #[test]
    fn labels_are_hub_sorted() {
        let g = testkit::erdos_renyi(60, 0.08, 3);
        let idx = HighwayCoverIndex::build(&g, IndexConfig { num_landmarks: 8 });
        for v in 0..60 {
            let hubs: Vec<u32> = idx.label(v).map(|(h, _)| h).collect();
            let mut sorted = hubs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(hubs, sorted, "label of {v} not sorted/deduped");
        }
    }

    #[test]
    fn stats_report_plausible_sizes() {
        let g = testkit::grid(8, 8);
        let idx = HighwayCoverIndex::build(&g, IndexConfig::default());
        let s = idx.stats();
        assert_eq!(s.num_landmarks, 16);
        assert!(s.total_label_entries > 0);
        assert!(s.max_label_size <= 16);
        assert!(s.bytes > 0);
    }
}
