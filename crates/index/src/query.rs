//! Query evaluation: label merge upper bound + landmark-avoiding
//! bounded bidirectional BFS.
//!
//! Everything here is implemented on [`IndexView`], the borrowed
//! label-storage abstraction, so the identical machine code serves an owned
//! [`HighwayCoverIndex`] and a memory-mapped `hcl-store` file. The owned
//! type's query methods are thin delegations through
//! [`HighwayCoverIndex::as_view`].
//!
//! # Hot-path layout
//!
//! Labels are packed `(hub << 32) | dist` words walked as **one** array
//! stream per endpoint (no parallel hub/dist pointers). The common-hub
//! join switches from a linear merge to a **galloping merge** when the two
//! labels are badly skewed — on power-law graphs a hub vertex can carry a
//! label orders of magnitude longer than a leaf's, and galloping makes the
//! join `O(small · log large)` instead of `O(small + large)`. The highway
//! cross-product runs behind hoisted lower-bound checks (`d1 + min_dv`,
//! `d1 + d2`) so rows that cannot beat the current best never touch the
//! matrix, and the residual BFS tests landmark membership against a dense
//! bitset — one bit per vertex instead of a 4-byte rank-table load.

//!
//! # Observability
//!
//! Every phase is generic over a [`Probe`]: the public `query_with` entry
//! monomorphises with [`NoProbe`] (all hooks are empty inline defaults, so
//! the compiler erases them), while [`IndexView::query_probed`] accepts a
//! caller-supplied collector such as [`crate::QueryStats`] that records
//! which mechanism answered and how much work each phase did.

use crate::build::HighwayCoverIndex;
use crate::probe::Probe;
use crate::view::{entry_dist, entry_hub, IndexView};
use hcl_core::{DenseBitSet, Graph, GraphView, NoProbe, VertexId, INFINITY};

const INF64: u64 = u64::MAX;

/// When one label is at least this many times longer than the other, the
/// common-hub join gallops through the long label instead of scanning it.
const GALLOP_RATIO: usize = 8;

/// Reusable scratch space for queries.
///
/// A query needs two distance arrays, a few frontier vectors, and a dense
/// landmark-membership bitset; allocating them per call would dominate the
/// cost of cheap queries. Create one context per thread (or per serving
/// task) and pass it to [`IndexView::query_with`]. All buffers are reset
/// between queries via touched-lists, so reuse is `O(visited)`, not
/// `O(n)`. One context can be shared across different indexes and
/// backings; buffers grow to the largest graph seen, and the landmark
/// bitset is rebuilt automatically whenever the context notices it is
/// serving a different landmark set (an `O(k)` comparison per query, an
/// `O(n / 64 + k)` rebuild only on an actual switch).
#[derive(Default)]
pub struct QueryContext {
    dist_fwd: Vec<u32>,
    dist_bwd: Vec<u32>,
    touched: Vec<VertexId>,
    frontier_fwd: Vec<VertexId>,
    frontier_bwd: Vec<VertexId>,
    next: Vec<VertexId>,
    /// Dense landmark membership for the residual BFS, keyed by the
    /// `(vertex count, landmark list)` it was built from.
    landmark_bits: DenseBitSet,
    landmark_key: Vec<VertexId>,
    landmark_key_n: usize,
}

impl QueryContext {
    /// Creates an empty context; buffers grow lazily to the graph size.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_capacity(&mut self, n: usize) {
        if self.dist_fwd.len() < n {
            self.dist_fwd.resize(n, INFINITY);
            self.dist_bwd.resize(n, INFINITY);
        }
    }

    /// Makes `landmark_bits` describe exactly `view`'s landmark set.
    ///
    /// The cache key is the landmark list *by value* (plus the vertex
    /// count), so the check stays sound when a context hops between
    /// indexes, backings, or reallocated owned indexes — there is no
    /// pointer identity to go stale.
    fn ensure_landmark_bits(&mut self, view: &IndexView<'_>) {
        let n = view.num_vertices();
        if self.landmark_key_n == n && self.landmark_key == view.landmarks {
            return;
        }
        self.landmark_bits.reset(n);
        for &v in view.landmarks {
            self.landmark_bits.insert(v as usize);
        }
        self.landmark_key.clear();
        self.landmark_key.extend_from_slice(view.landmarks);
        self.landmark_key_n = n;
    }
}

impl HighwayCoverIndex {
    /// Exact distance between `u` and `v`, or `None` if disconnected.
    ///
    /// Convenience wrapper that allocates a **fresh [`QueryContext`] on
    /// every call** — six buffers plus the landmark bitset, which the
    /// first query then has to grow to the graph size. On a µs-scale
    /// query that allocation and warm-up is comparable to the query
    /// itself, so anything issuing more than a handful of queries (batch
    /// runs, serving loops, benchmarks) should hold one context per
    /// thread and call [`query_with`](Self::query_with) instead; the CLI's
    /// random-query, stdin, and worker-pool paths all do.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range, or if `graph` has a different
    /// vertex count than the graph the index was built from. Passing a
    /// *different* graph with the same vertex count is not detected and
    /// yields meaningless answers — always query with the build graph.
    pub fn query(&self, graph: &Graph, u: VertexId, v: VertexId) -> Option<u32> {
        let mut ctx = QueryContext::new();
        self.as_view().query_with(graph, &mut ctx, u, v)
    }

    /// Exact distance between `u` and `v` reusing caller-owned scratch.
    /// See [`IndexView::query_with`] (to which this delegates) for the
    /// algorithm and panics.
    pub fn query_with(
        &self,
        graph: &Graph,
        ctx: &mut QueryContext,
        u: VertexId,
        v: VertexId,
    ) -> Option<u32> {
        self.as_view().query_with(graph, ctx, u, v)
    }

    /// [`query_with`](Self::query_with) with observation hooks. See
    /// [`IndexView::query_probed`].
    pub fn query_probed<P: Probe>(
        &self,
        graph: &Graph,
        ctx: &mut QueryContext,
        u: VertexId,
        v: VertexId,
        probe: &mut P,
    ) -> Option<u32> {
        self.as_view().query_probed(graph, ctx, u, v, probe)
    }
}

impl<'a> IndexView<'a> {
    /// Exact distance between `u` and `v`, or `None` if disconnected,
    /// reusing caller-owned scratch.
    ///
    /// Evaluation is the paper's two-phase scheme:
    ///
    /// 1. An upper bound from the labelling: the classic sorted 2-hop merge
    ///    over common hubs (galloping when the labels are skewed),
    ///    tightened by routing between *different* hubs across the highway
    ///    matrix. If any shortest `u`–`v` path touches a landmark, this
    ///    bound is already exact.
    /// 2. A bidirectional BFS that never expands through a landmark,
    ///    covering the only remaining case (a shortest path avoiding all
    ///    landmarks). The bound from phase 1 cuts the search off early.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range, or if `graph` has a different
    /// vertex count than the graph the index was built from. Passing a
    /// *different* graph with the same vertex count is not detected and
    /// yields meaningless answers — always query with the build graph.
    pub fn query_with<'g>(
        &self,
        graph: impl Into<GraphView<'g>>,
        ctx: &mut QueryContext,
        u: VertexId,
        v: VertexId,
    ) -> Option<u32> {
        self.query_probed(graph, ctx, u, v, &mut NoProbe)
    }

    /// [`query_with`](Self::query_with) with observation hooks: `probe`
    /// sees each phase (merge, highway pass, residual BFS) as it runs.
    /// Pass `&mut` [`crate::QueryStats`] to collect a per-query work
    /// breakdown; monomorphised with [`NoProbe`] this is the plain query
    /// path. The answer is identical for every probe — probes observe,
    /// they never steer.
    ///
    /// # Panics
    /// Same contract as [`query_with`](Self::query_with).
    pub fn query_probed<'g, P: Probe>(
        &self,
        graph: impl Into<GraphView<'g>>,
        ctx: &mut QueryContext,
        u: VertexId,
        v: VertexId,
        probe: &mut P,
    ) -> Option<u32> {
        let graph = graph.into();
        let n = self.num_vertices();
        assert_eq!(
            graph.num_vertices(),
            n,
            "index was built for a different graph"
        );
        assert!((u as usize) < n && (v as usize) < n, "vertex out of range");
        probe.query_start();
        if u == v {
            probe.query_done(true, INF64, 0);
            return Some(0);
        }

        let bound = self.label_upper_bound(u, v, probe);
        let best = self.residual_bfs(graph, ctx, u, v, bound, probe);
        probe.query_done(false, bound, best);
        if best == INF64 {
            None
        } else {
            Some(best as u32)
        }
    }

    /// Upper bound on `d(u, v)` from labels and the highway.
    ///
    /// Exact whenever some shortest `u`–`v` path passes through a landmark;
    /// `u64::MAX` when the labels certify nothing.
    fn label_upper_bound<P: Probe>(&self, u: VertexId, v: VertexId, probe: &mut P) -> u64 {
        let (u_lo, u_hi) = (
            self.label_offsets[u as usize] as usize,
            self.label_offsets[u as usize + 1] as usize,
        );
        let (v_lo, v_hi) = (
            self.label_offsets[v as usize] as usize,
            self.label_offsets[v as usize + 1] as usize,
        );
        let lu = &self.label_entries[u_lo..u_hi];
        let lv = &self.label_entries[v_lo..v_hi];

        // All sums below run in u64 so `u32`-sized operands cannot wrap,
        // and INFINITY-valued operands are skipped outright: a label or
        // highway entry at the sentinel certifies nothing, and treating it
        // as a number would let a hostile (well-formed but tampered) index
        // manufacture near-overflow "distances".

        // Fast path: merge over common hubs (the classic 2-hop join).
        let mut best = common_hub_bound(lu, lv, probe);

        if lu.is_empty() || lv.is_empty() {
            return best;
        }

        // General case: route between distinct hubs over the highway,
        // hoisted behind lower-bound checks. The cheapest conceivable
        // highway route costs at least d1 + d2 (the matrix is
        // non-negative), so precomputing v's minimum label distance lets
        // whole rows — and often the whole cross-product — exit before a
        // single matrix load.
        let min_dv = lv
            .iter()
            .map(|&e| entry_dist(e))
            .filter(|&d| d != INFINITY)
            .min()
            .map_or(INF64, |d| d as u64);
        let k = self.landmarks.len();
        for &eu in lu {
            let (h1, d1u) = (entry_hub(eu) as usize, entry_dist(eu));
            if d1u == INFINITY {
                continue;
            }
            let d1 = d1u as u64;
            if d1.saturating_add(min_dv) >= best {
                continue;
            }
            let row = &self.highway[h1 * k..(h1 + 1) * k];
            for &ev in lv {
                let (h2, d2u) = (entry_hub(ev) as usize, entry_dist(ev));
                if h2 == h1 || d2u == INFINITY {
                    continue; // same hub was handled by the merge above
                }
                let base = d1 + d2u as u64;
                if base >= best {
                    continue;
                }
                let hw = row[h2];
                if hw == INFINITY {
                    continue;
                }
                let cand = base + hw as u64;
                if cand < best {
                    best = cand;
                    probe.highway_improved(best);
                }
            }
        }
        best
    }

    /// Shortest `u`–`v` distance over paths whose *interior* avoids every
    /// landmark, clipped to `bound`; returns `min(bound, that distance)`.
    ///
    /// Level-synchronous bidirectional BFS, always expanding the smaller
    /// frontier. Landmark vertices are never enqueued (endpoints are seeded
    /// directly, so a landmark endpoint still works); membership is tested
    /// against the context's dense bitset. Meets are detected on edge
    /// scans before the landmark check, so a direct edge into the other
    /// frontier is never missed. The search stops as soon as the two
    /// frontier depths certify that no undiscovered landmark-free path can
    /// beat the current best.
    fn residual_bfs<P: Probe>(
        &self,
        graph: GraphView<'_>,
        ctx: &mut QueryContext,
        u: VertexId,
        v: VertexId,
        bound: u64,
        probe: &mut P,
    ) -> u64 {
        let n = self.num_vertices();
        ctx.ensure_capacity(n);
        ctx.ensure_landmark_bits(self);
        ctx.frontier_fwd.clear();
        ctx.frontier_bwd.clear();

        ctx.dist_fwd[u as usize] = 0;
        ctx.dist_bwd[v as usize] = 0;
        ctx.touched.push(u);
        ctx.touched.push(v);
        ctx.frontier_fwd.push(u);
        ctx.frontier_bwd.push(v);

        let mut best = bound;
        let mut depth_fwd: u64 = 0;
        let mut depth_bwd: u64 = 0;
        let landmark_bits = &ctx.landmark_bits;

        while !ctx.frontier_fwd.is_empty()
            && !ctx.frontier_bwd.is_empty()
            && depth_fwd + depth_bwd + 1 < best
        {
            let forward = ctx.frontier_fwd.len() <= ctx.frontier_bwd.len();
            let (frontier, dist_mine, dist_other, depth) = if forward {
                (
                    &ctx.frontier_fwd,
                    &mut ctx.dist_fwd,
                    &ctx.dist_bwd,
                    &mut depth_fwd,
                )
            } else {
                (
                    &ctx.frontier_bwd,
                    &mut ctx.dist_bwd,
                    &ctx.dist_fwd,
                    &mut depth_bwd,
                )
            };
            ctx.next.clear();
            let next_depth = (*depth + 1) as u32;
            for &x in frontier {
                probe.bfs_node_expanded();
                for &w in graph.neighbors(x) {
                    let other = dist_other[w as usize];
                    if other != INFINITY {
                        best = best.min(*depth + 1 + other as u64);
                    }
                    if landmark_bits.contains(w as usize) {
                        continue;
                    }
                    if dist_mine[w as usize] == INFINITY {
                        dist_mine[w as usize] = next_depth;
                        ctx.touched.push(w);
                        ctx.next.push(w);
                    }
                }
            }
            *depth += 1;
            probe.bfs_level(ctx.next.len());
            if forward {
                std::mem::swap(&mut ctx.frontier_fwd, &mut ctx.next);
            } else {
                std::mem::swap(&mut ctx.frontier_bwd, &mut ctx.next);
            }
        }

        for &x in &ctx.touched {
            ctx.dist_fwd[x as usize] = INFINITY;
            ctx.dist_bwd[x as usize] = INFINITY;
        }
        ctx.touched.clear();
        best
    }
}

/// Minimum `dist(u, h) + dist(v, h)` over hubs `h` common to both labels;
/// `u64::MAX` when the labels share no usable hub.
///
/// Chooses between a linear two-pointer merge and a galloping merge by the
/// size ratio: on skewed pairs (leaf label vs. hub label) galloping turns
/// the join from `O(small + large)` into `O(small · log large)`.
fn common_hub_bound<P: Probe>(lu: &[u64], lv: &[u64], probe: &mut P) -> u64 {
    let (small, large) = if lu.len() <= lv.len() {
        (lu, lv)
    } else {
        (lv, lu)
    };
    if small.is_empty() {
        probe.merge_done(false, 0, INF64);
        return INF64;
    }
    if large.len() / small.len() >= GALLOP_RATIO {
        galloping_merge_bound(small, large, probe)
    } else {
        linear_merge_bound(small, large, probe)
    }
}

fn linear_merge_bound<P: Probe>(a: &[u64], b: &[u64], probe: &mut P) -> u64 {
    let mut best = INF64;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (ha, hb) = (entry_hub(a[i]), entry_hub(b[j]));
        match ha.cmp(&hb) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let (da, db) = (entry_dist(a[i]), entry_dist(b[j]));
                if da != INFINITY && db != INFINITY {
                    best = best.min(da as u64 + db as u64);
                }
                i += 1;
                j += 1;
            }
        }
    }
    // Scanned = entry positions consumed on both sides — derived from the
    // two cursors the merge maintains anyway, so a no-op probe costs
    // nothing here.
    probe.merge_done(false, i + j, best);
    best
}

/// Merge for skewed sizes: for each entry of `small`, gallop (exponential
/// then binary search) through the remaining suffix of `large`. Entries
/// are hub-sorted, and hubs occupy the high 32 bits, so hub comparisons
/// are plain `u64` comparisons on `entry & HUB_MASK`.
fn galloping_merge_bound<P: Probe>(small: &[u64], large: &[u64], probe: &mut P) -> u64 {
    const HUB_MASK: u64 = 0xFFFF_FFFF_0000_0000;
    let mut best = INF64;
    let mut from = 0usize;
    // `used` counts small-side entries processed; together with `from`
    // (positions passed in `large`) it is the merge's scanned-entries
    // figure. Dead with a no-op probe, so the optimiser drops it.
    let mut used = 0usize;
    for &es in small {
        used += 1;
        let target = es & HUB_MASK;
        // Exponential probe: find a window [from + step/2, from + step]
        // whose upper end is at or past the target hub.
        let mut step = 1usize;
        while from + step < large.len() && large[from + step] & HUB_MASK < target {
            step *= 2;
        }
        let lo = from + step / 2;
        let hi = (from + step + 1).min(large.len());
        // Binary search the window for the first entry at or past target.
        let idx = lo + large[lo..hi].partition_point(|&e| e & HUB_MASK < target);
        if idx >= large.len() {
            break; // every remaining hub of `large` is smaller — done
        }
        let el = large[idx];
        if el & HUB_MASK == target {
            let (ds, dl) = (entry_dist(es), entry_dist(el));
            if ds != INFINITY && dl != INFINITY {
                best = best.min(ds as u64 + dl as u64);
            }
            from = idx + 1;
        } else {
            from = idx;
        }
        if from >= large.len() {
            break;
        }
    }
    probe.merge_done(true, used + from, best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::pack_label_entry;

    fn entries(pairs: &[(u32, u32)]) -> Vec<u64> {
        pairs.iter().map(|&(h, d)| pack_label_entry(h, d)).collect()
    }

    /// Reference implementation: brute-force minimum over common hubs.
    fn brute(a: &[u64], b: &[u64]) -> u64 {
        let mut best = INF64;
        for &ea in a {
            for &eb in b {
                if entry_hub(ea) == entry_hub(eb)
                    && entry_dist(ea) != INFINITY
                    && entry_dist(eb) != INFINITY
                {
                    best = best.min(entry_dist(ea) as u64 + entry_dist(eb) as u64);
                }
            }
        }
        best
    }

    #[test]
    fn merges_agree_with_brute_force_on_generated_labels() {
        let mut rng = hcl_core::testkit::SplitMix64::new(0xFACE);
        for trial in 0..200 {
            // Random strictly-ascending hub sets of very different sizes,
            // so both the linear and galloping paths are exercised.
            let mut make = |len: usize, hub_space: u64| {
                let mut hubs: Vec<u32> =
                    (0..len).map(|_| rng.next_below(hub_space) as u32).collect();
                hubs.sort_unstable();
                hubs.dedup();
                entries(
                    &hubs
                        .into_iter()
                        .map(|h| {
                            let d = rng.next_below(50) as u32;
                            // Sprinkle sentinel distances in, too.
                            (h, if d == 49 { INFINITY } else { d })
                        })
                        .collect::<Vec<_>>(),
                )
            };
            let a = make(trial % 7, 40);
            let b = make(3 + (trial % 61), 40);
            let expected = brute(&a, &b);
            let p = &mut NoProbe;
            assert_eq!(common_hub_bound(&a, &b, p), expected, "trial {trial}");
            assert_eq!(
                common_hub_bound(&b, &a, p),
                expected,
                "trial {trial} swapped"
            );
            assert_eq!(
                linear_merge_bound(&a, &b, p),
                expected,
                "trial {trial} linear"
            );
            if !a.is_empty() {
                assert_eq!(
                    galloping_merge_bound(&a, &b, p),
                    expected,
                    "trial {trial} gallop"
                );
            }
        }
    }

    #[test]
    fn gallop_handles_boundary_shapes() {
        let p = &mut NoProbe;
        let empty: &[u64] = &[];
        let one = entries(&[(5, 2)]);
        let many = entries(&[(0, 1), (2, 9), (5, 3), (9, 0), (31, 7)]);
        assert_eq!(common_hub_bound(empty, &many, p), INF64);
        assert_eq!(common_hub_bound(&one, empty, p), INF64);
        assert_eq!(galloping_merge_bound(&one, &many, p), 5);
        // Target hub past the end of `large`.
        let high = entries(&[(40, 1)]);
        assert_eq!(galloping_merge_bound(&high, &many, p), INF64);
        // Target hub before the start of `large`.
        let low = entries(&[(0, 4)]);
        let tail = entries(&[(7, 1), (8, 2)]);
        assert_eq!(galloping_merge_bound(&low, &tail, p), INF64);
    }

    #[test]
    fn probed_queries_match_plain_queries_and_classify() {
        use crate::probe::{AnswerSource, QueryStats};
        use crate::{HighwayCoverIndex, IndexConfig};
        for (name, g) in hcl_core::testkit::families() {
            for k in [0usize, 1, 4] {
                let index = HighwayCoverIndex::build(&g, IndexConfig { num_landmarks: k });
                let iv = index.as_view();
                let mut ctx = QueryContext::new();
                let mut stats = QueryStats::new();
                let n = g.num_vertices();
                let mut rng = hcl_core::testkit::SplitMix64::new(0xBEEF ^ k as u64);
                for _ in 0..(n * 2).min(200) {
                    let u = rng.next_below(n as u64) as VertexId;
                    let v = rng.next_below(n as u64) as VertexId;
                    let plain = iv.query_with(&g, &mut ctx, u, v);
                    let probed = iv.query_probed(&g, &mut ctx, u, v, &mut stats);
                    assert_eq!(plain, probed, "{name} k={k} ({u},{v})");
                    match stats.source {
                        AnswerSource::Trivial => assert_eq!(u, v),
                        AnswerSource::Disconnected => assert_eq!(plain, None),
                        AnswerSource::LabelHit | AnswerSource::HighwayBound => {
                            assert_eq!(plain.map(u64::from), Some(stats.label_bound));
                        }
                        AnswerSource::ResidualBfs => {
                            assert!(plain.is_some_and(|d| u64::from(d) < stats.label_bound));
                            assert!(stats.bfs_nodes_expanded > 0);
                        }
                    }
                }
            }
        }
    }
}
