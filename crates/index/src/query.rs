//! Query evaluation: label merge upper bound + landmark-avoiding
//! bounded bidirectional BFS.
//!
//! Everything here is implemented on [`IndexView`], the borrowed
//! label-storage abstraction, so the identical machine code serves an owned
//! [`HighwayCoverIndex`] and a memory-mapped `hcl-store` file. The owned
//! type's query methods are thin delegations through
//! [`HighwayCoverIndex::as_view`].

use crate::build::{HighwayCoverIndex, NOT_A_LANDMARK};
use crate::view::IndexView;
use hcl_core::{Graph, GraphView, VertexId, INFINITY};

const INF64: u64 = u64::MAX;

/// Reusable scratch space for queries.
///
/// A query needs two distance arrays and a few frontier vectors; allocating
/// them per call would dominate the cost of cheap queries. Create one
/// context per thread (or per serving task) and pass it to
/// [`IndexView::query_with`]. All buffers are reset between queries via
/// touched-lists, so reuse is `O(visited)`, not `O(n)`. One context can be
/// shared across different indexes and backings; buffers grow to the
/// largest graph seen.
#[derive(Default)]
pub struct QueryContext {
    dist_fwd: Vec<u32>,
    dist_bwd: Vec<u32>,
    touched: Vec<VertexId>,
    frontier_fwd: Vec<VertexId>,
    frontier_bwd: Vec<VertexId>,
    next: Vec<VertexId>,
}

impl QueryContext {
    /// Creates an empty context; buffers grow lazily to the graph size.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_capacity(&mut self, n: usize) {
        if self.dist_fwd.len() < n {
            self.dist_fwd.resize(n, INFINITY);
            self.dist_bwd.resize(n, INFINITY);
        }
    }
}

impl HighwayCoverIndex {
    /// Exact distance between `u` and `v`, or `None` if disconnected.
    ///
    /// Convenience wrapper that allocates a fresh [`QueryContext`]; batch
    /// callers should hold a context and use
    /// [`query_with`](Self::query_with) instead.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range, or if `graph` has a different
    /// vertex count than the graph the index was built from. Passing a
    /// *different* graph with the same vertex count is not detected and
    /// yields meaningless answers — always query with the build graph.
    pub fn query(&self, graph: &Graph, u: VertexId, v: VertexId) -> Option<u32> {
        let mut ctx = QueryContext::new();
        self.as_view().query_with(graph, &mut ctx, u, v)
    }

    /// Exact distance between `u` and `v` reusing caller-owned scratch.
    /// See [`IndexView::query_with`] (to which this delegates) for the
    /// algorithm and panics.
    pub fn query_with(
        &self,
        graph: &Graph,
        ctx: &mut QueryContext,
        u: VertexId,
        v: VertexId,
    ) -> Option<u32> {
        self.as_view().query_with(graph, ctx, u, v)
    }
}

impl<'a> IndexView<'a> {
    /// Exact distance between `u` and `v`, or `None` if disconnected,
    /// reusing caller-owned scratch.
    ///
    /// Evaluation is the paper's two-phase scheme:
    ///
    /// 1. An upper bound from the labelling: the classic sorted 2-hop merge
    ///    over common hubs, tightened by routing between *different* hubs
    ///    across the highway matrix. If any shortest `u`–`v` path touches a
    ///    landmark, this bound is already exact.
    /// 2. A bidirectional BFS that never expands through a landmark,
    ///    covering the only remaining case (a shortest path avoiding all
    ///    landmarks). The bound from phase 1 cuts the search off early.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range, or if `graph` has a different
    /// vertex count than the graph the index was built from. Passing a
    /// *different* graph with the same vertex count is not detected and
    /// yields meaningless answers — always query with the build graph.
    pub fn query_with<'g>(
        &self,
        graph: impl Into<GraphView<'g>>,
        ctx: &mut QueryContext,
        u: VertexId,
        v: VertexId,
    ) -> Option<u32> {
        let graph = graph.into();
        let n = self.num_vertices();
        assert_eq!(
            graph.num_vertices(),
            n,
            "index was built for a different graph"
        );
        assert!((u as usize) < n && (v as usize) < n, "vertex out of range");
        if u == v {
            return Some(0);
        }

        let bound = self.label_upper_bound(u, v);
        let best = self.residual_bfs(graph, ctx, u, v, bound);
        if best == INF64 {
            None
        } else {
            Some(best as u32)
        }
    }

    /// Upper bound on `d(u, v)` from labels and the highway.
    ///
    /// Exact whenever some shortest `u`–`v` path passes through a landmark;
    /// `u64::MAX` when the labels certify nothing.
    fn label_upper_bound(&self, u: VertexId, v: VertexId) -> u64 {
        let (u_lo, u_hi) = (
            self.label_offsets[u as usize] as usize,
            self.label_offsets[u as usize + 1] as usize,
        );
        let (v_lo, v_hi) = (
            self.label_offsets[v as usize] as usize,
            self.label_offsets[v as usize + 1] as usize,
        );
        let mut best = INF64;

        // All sums below run in u64 so `u32`-sized operands cannot wrap,
        // and INFINITY-valued operands are skipped outright: a label or
        // highway entry at the sentinel certifies nothing, and treating it
        // as a number would let a hostile (well-formed but tampered) index
        // manufacture near-overflow "distances".

        // Fast path: sorted merge over common hubs (the classic 2-hop join).
        let (mut i, mut j) = (u_lo, v_lo);
        while i < u_hi && j < v_hi {
            match self.label_hubs[i].cmp(&self.label_hubs[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if self.label_dists[i] != INFINITY && self.label_dists[j] != INFINITY {
                        let cand = self.label_dists[i] as u64 + self.label_dists[j] as u64;
                        best = best.min(cand);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }

        // General case: route between distinct hubs over the highway.
        let k = self.landmarks.len();
        for i in u_lo..u_hi {
            let (h1, d1) = (self.label_hubs[i] as usize, self.label_dists[i] as u64);
            if d1 >= best || self.label_dists[i] == INFINITY {
                continue;
            }
            for j in v_lo..v_hi {
                let h2 = self.label_hubs[j] as usize;
                if h1 == h2 {
                    continue; // already handled by the merge above
                }
                let hw = self.highway[h1 * k + h2];
                if hw == INFINITY || self.label_dists[j] == INFINITY {
                    continue;
                }
                let cand = d1 + hw as u64 + self.label_dists[j] as u64;
                best = best.min(cand);
            }
        }
        best
    }

    /// Shortest `u`–`v` distance over paths whose *interior* avoids every
    /// landmark, clipped to `bound`; returns `min(bound, that distance)`.
    ///
    /// Level-synchronous bidirectional BFS, always expanding the smaller
    /// frontier. Landmark vertices are never enqueued (endpoints are seeded
    /// directly, so a landmark endpoint still works); meets are detected on
    /// edge scans before the landmark check, so a direct edge into the other
    /// frontier is never missed. The search stops as soon as the two
    /// frontier depths certify that no undiscovered landmark-free path can
    /// beat the current best.
    fn residual_bfs(
        &self,
        graph: GraphView<'_>,
        ctx: &mut QueryContext,
        u: VertexId,
        v: VertexId,
        bound: u64,
    ) -> u64 {
        let n = self.num_vertices();
        ctx.ensure_capacity(n);
        ctx.frontier_fwd.clear();
        ctx.frontier_bwd.clear();

        ctx.dist_fwd[u as usize] = 0;
        ctx.dist_bwd[v as usize] = 0;
        ctx.touched.push(u);
        ctx.touched.push(v);
        ctx.frontier_fwd.push(u);
        ctx.frontier_bwd.push(v);

        let mut best = bound;
        let mut depth_fwd: u64 = 0;
        let mut depth_bwd: u64 = 0;

        while !ctx.frontier_fwd.is_empty()
            && !ctx.frontier_bwd.is_empty()
            && depth_fwd + depth_bwd + 1 < best
        {
            let forward = ctx.frontier_fwd.len() <= ctx.frontier_bwd.len();
            let (frontier, dist_mine, dist_other, depth) = if forward {
                (
                    &ctx.frontier_fwd,
                    &mut ctx.dist_fwd,
                    &ctx.dist_bwd,
                    &mut depth_fwd,
                )
            } else {
                (
                    &ctx.frontier_bwd,
                    &mut ctx.dist_bwd,
                    &ctx.dist_fwd,
                    &mut depth_bwd,
                )
            };
            ctx.next.clear();
            let next_depth = (*depth + 1) as u32;
            for &x in frontier {
                for &w in graph.neighbors(x) {
                    let other = dist_other[w as usize];
                    if other != INFINITY {
                        best = best.min(*depth + 1 + other as u64);
                    }
                    if self.landmark_rank[w as usize] != NOT_A_LANDMARK {
                        continue;
                    }
                    if dist_mine[w as usize] == INFINITY {
                        dist_mine[w as usize] = next_depth;
                        ctx.touched.push(w);
                        ctx.next.push(w);
                    }
                }
            }
            *depth += 1;
            if forward {
                std::mem::swap(&mut ctx.frontier_fwd, &mut ctx.next);
            } else {
                std::mem::swap(&mut ctx.frontier_bwd, &mut ctx.next);
            }
        }

        for &x in &ctx.touched {
            ctx.dist_fwd[x as usize] = INFINITY;
            ctx.dist_bwd[x as usize] = INFINITY;
        }
        ctx.touched.clear();
        best
    }
}
