//! Pluggable landmark-selection strategies.
//!
//! *Which* vertices become landmarks is the single biggest lever on the
//! quality/size trade-off of the highway-cover labelling: the paper's
//! default ranks vertices by descending degree (high-degree hubs cover the
//! most shortest paths on complex networks), but the wider 2-hop-labelling
//! literature shows coverage-based orderings can buy smaller labels at the
//! cost of a more expensive selection pass. This module makes the choice a
//! first-class, *recorded* parameter:
//!
//! * [`LandmarkSelector`] — the trait a strategy implements. One method,
//!   one contract (see below).
//! * [`DegreeRank`] — the paper's default. Bit-for-bit identical to the
//!   historical hard-coded behaviour (`rank_by_degree` prefix).
//! * [`ApproxCoverage`] — greedy coverage maximisation over sampled BFS
//!   trees, deterministic from a seed.
//! * [`SeededRandom`] — a seeded uniform sample; the baseline every other
//!   strategy should beat in benchmarks.
//! * [`SelectionStrategy`] — a `Copy` tag naming one of the built-in
//!   strategies plus its seed. This is what travels through
//!   [`BuildOptions`](crate::BuildOptions), the CLI (`--strategy
//!   name[:seed]`), and the `.hcl` container header (format v4), so a
//!   persisted index records how its landmarks were chosen and can be
//!   rebuilt identically.
//!
//! # Determinism contract
//!
//! A selector must be a **pure function of the graph and its own
//! configuration** (seed included): same inputs, same output, on every
//! machine and at every thread count. Selection runs once, before the
//! batched landmark searches, so the builder's byte-identical-across-
//! threads guarantee holds *per strategy* — the built index is a pure
//! function of `(graph, k, batch size, strategy)`. The seeded strategies
//! draw from [`SplitMix64`] (`hcl_core::rng`), whose output stream is
//! **frozen** (pinned by a constants test): recorded seeds in v4
//! containers must reproduce identical selections across releases.
//!
//! `select(graph, k)` must return exactly `min(k, n)` **distinct,
//! in-range** vertex ids in importance order (rank 0 first). The build
//! path re-checks this ([`checked_select`]) and panics with a message
//! naming the offending selector, so a buggy pluggable strategy fails
//! loudly instead of corrupting an index.

use hcl_core::rng::SplitMix64;
use hcl_core::{GraphView, VertexId};
use std::fmt;

/// A landmark-selection strategy: picks which vertices anchor the
/// highway-cover labelling.
///
/// Implementations must be deterministic and side-effect free — see the
/// [module docs](self) for the exact contract `select` must uphold. The
/// `Sync` bound lets the builder invoke a selector from its worker scope,
/// so a faulty strategy panics surface exactly like any other build-worker
/// panic.
pub trait LandmarkSelector: Sync {
    /// Short stable name, used in diagnostics.
    fn name(&self) -> &'static str;

    /// Returns exactly `min(k, n)` distinct in-range vertex ids in
    /// importance order (rank 0 = most important). Must be deterministic
    /// in `(graph, self)`.
    fn select(&self, graph: GraphView<'_>, k: usize) -> Vec<VertexId>;
}

/// Runs a selector and validates its output against the trait contract:
/// exactly `min(k, n)` landmarks, all in range, no duplicates.
///
/// # Panics
/// Panics with a message naming the selector if the contract is violated —
/// a broken pluggable strategy must fail the build loudly, not corrupt the
/// rank table.
pub(crate) fn checked_select(
    selector: &dyn LandmarkSelector,
    graph: GraphView<'_>,
    k: usize,
) -> Vec<VertexId> {
    let n = graph.num_vertices();
    let want = k.min(n);
    let landmarks = selector.select(graph, want);
    let name = selector.name();
    assert_eq!(
        landmarks.len(),
        want,
        "landmark selector `{name}` returned {} landmarks, expected {want}",
        landmarks.len()
    );
    let mut seen = vec![false; n];
    for &v in &landmarks {
        assert!(
            (v as usize) < n,
            "landmark selector `{name}` returned out-of-range vertex {v} (n = {n})"
        );
        assert!(
            !seen[v as usize],
            "landmark selector `{name}` returned duplicate vertex {v}"
        );
        seen[v as usize] = true;
    }
    landmarks
}

/// The paper's default: descending degree, ties broken by ascending id.
///
/// Output is **bit-for-bit identical** to the historical hard-coded
/// ranking (`rank_by_degree()[..k]`); it uses `hcl-core`'s partial
/// selection so choosing a few landmarks out of millions of vertices does
/// not pay for a full sort.
#[derive(Clone, Copy, Debug, Default)]
pub struct DegreeRank;

impl LandmarkSelector for DegreeRank {
    fn name(&self) -> &'static str {
        "degree-rank"
    }

    fn select(&self, graph: GraphView<'_>, k: usize) -> Vec<VertexId> {
        graph.top_k_by_degree(k)
    }
}

/// How many BFS trees [`ApproxCoverage`] samples (clamped to `n`). Enough
/// that a single unlucky root cannot dominate the estimate, small enough
/// that selection stays a fraction of the labelling cost.
const COVERAGE_SAMPLES: usize = 16;

/// Greedy shortest-path-coverage maximisation over sampled BFS trees —
/// the coverage-ordering family from the pruned-landmark-labelling
/// literature, made cheap by sampling.
///
/// Selection samples [`COVERAGE_SAMPLES`] distinct BFS roots (seeded, so
/// the choice is reproducible) and materialises their shortest-path trees.
/// A vertex `v` *covers* a sampled root-to-`w` shortest path if `v` lies
/// on it; each greedy round picks the vertex covering the most not-yet-
/// covered sampled paths (ties by ascending id), then marks its paths
/// covered. Rounds recompute marginal coverage with two linear passes per
/// tree, so selection costs `O(k · samples · n)` plus the sampled BFS —
/// deterministic in `(graph, seed)`. When every sampled path is covered
/// before `k` landmarks are chosen (tiny or fragmented graphs), the
/// remainder falls back to degree ranking, keeping the output well-defined.
#[derive(Clone, Copy, Debug, Default)]
pub struct ApproxCoverage {
    /// RNG seed for the sampled BFS roots; recorded in the container
    /// header so a persisted index can be rebuilt identically.
    pub seed: u64,
}

impl LandmarkSelector for ApproxCoverage {
    fn name(&self) -> &'static str {
        "approx-coverage"
    }

    fn select(&self, graph: GraphView<'_>, k: usize) -> Vec<VertexId> {
        let n = graph.num_vertices();
        let k = k.min(n);
        if k == 0 {
            return Vec::new();
        }
        const NONE: u32 = u32::MAX;

        // Distinct sampled roots, deterministic in the seed.
        let samples = COVERAGE_SAMPLES.min(n);
        let mut rng = SplitMix64::new(self.seed);
        let mut is_root = vec![false; n];
        let mut roots: Vec<VertexId> = Vec::with_capacity(samples);
        while roots.len() < samples {
            let r = rng.next_below(n as u64) as usize;
            if !is_root[r] {
                is_root[r] = true;
                roots.push(r as VertexId);
            }
        }

        // One BFS tree per root: discovery order + parent pointers. The
        // order doubles as the traversal for the per-round passes below
        // (parents precede children in it).
        let mut trees: Vec<(Vec<VertexId>, Vec<u32>)> = Vec::with_capacity(samples);
        for &root in &roots {
            let mut parent = vec![NONE; n];
            let mut visited = vec![false; n];
            let mut order = Vec::new();
            visited[root as usize] = true;
            order.push(root);
            let mut head = 0;
            while head < order.len() {
                let v = order[head];
                head += 1;
                for &w in graph.neighbors(v) {
                    if !visited[w as usize] {
                        visited[w as usize] = true;
                        parent[w as usize] = v;
                        order.push(w);
                    }
                }
            }
            trees.push((order, parent));
        }

        // Greedy rounds. Per tree: a forward pass marks vertices whose
        // root path is already covered (passes through a selected vertex),
        // a reverse pass sums uncovered-subtree sizes — vertex `v`'s
        // marginal gain is the number of still-uncovered sampled paths
        // through `v`.
        let mut selected = vec![false; n];
        let mut covered = vec![false; n];
        let mut count = vec![0u64; n];
        let mut total = vec![0u64; n];
        let mut out: Vec<VertexId> = Vec::with_capacity(k);
        while out.len() < k {
            total.iter_mut().for_each(|t| *t = 0);
            for (order, parent) in &trees {
                for &v in order {
                    let vi = v as usize;
                    let p = parent[vi];
                    covered[vi] = selected[vi] || (p != NONE && covered[p as usize]);
                    count[vi] = u64::from(!covered[vi]);
                }
                for &v in order.iter().rev() {
                    let vi = v as usize;
                    total[vi] += count[vi];
                    let p = parent[vi];
                    if p != NONE {
                        count[p as usize] += count[vi];
                    }
                }
            }
            // Ascending scan with a strict comparison ties to the smallest
            // id, matching the determinism convention of the degree ranking.
            let (mut best_gain, mut best_v) = (0u64, 0usize);
            for (v, &t) in total.iter().enumerate() {
                if !selected[v] && t > best_gain {
                    best_gain = t;
                    best_v = v;
                }
            }
            if best_gain == 0 {
                break; // every sampled path covered; fall back below
            }
            selected[best_v] = true;
            out.push(best_v as VertexId);
        }
        // Fallback for the covered-out tail: degree ranking keeps the
        // result a well-defined permutation prefix. The top-k prefix
        // always suffices — at most `out.len()` of its entries are
        // already selected, leaving the `k - out.len()` still needed in
        // the same order a full ranking would yield them.
        if out.len() < k {
            for v in graph.top_k_by_degree(k) {
                if out.len() == k {
                    break;
                }
                if !selected[v as usize] {
                    selected[v as usize] = true;
                    out.push(v);
                }
            }
        }
        out
    }
}

/// Seeded uniform random selection — the baseline strategy for
/// benchmarking what degree or coverage ranking actually buys.
///
/// A partial Fisher–Yates shuffle of the vertex ids driven by
/// [`SplitMix64`], deterministic in `(n, seed)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct SeededRandom {
    /// Shuffle seed; recorded in the container header.
    pub seed: u64,
}

impl LandmarkSelector for SeededRandom {
    fn name(&self) -> &'static str {
        "seeded-random"
    }

    fn select(&self, graph: GraphView<'_>, k: usize) -> Vec<VertexId> {
        let n = graph.num_vertices();
        let k = k.min(n);
        let mut rng = SplitMix64::new(self.seed);
        let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
        for i in 0..k {
            let j = i + rng.next_below((n - i) as u64) as usize;
            perm.swap(i, j);
        }
        perm.truncate(k);
        perm
    }
}

/// A named, seeded landmark-selection strategy — the `Copy` tag that
/// travels through [`BuildOptions`](crate::BuildOptions), the CLI
/// (`--strategy name[:seed]`), and the `.hcl` container header.
///
/// The canonical spelling (produced by `Display`, accepted by
/// [`SelectionStrategy::parse`]) is `degree-rank`,
/// `approx-coverage:<seed>`, and `seeded-random:<seed>`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// Descending-degree ranking (the paper's default; see [`DegreeRank`]).
    #[default]
    DegreeRank,
    /// Greedy coverage over sampled BFS trees (see [`ApproxCoverage`]).
    ApproxCoverage {
        /// Seed for the sampled BFS roots.
        seed: u64,
    },
    /// Seeded uniform random baseline (see [`SeededRandom`]).
    SeededRandom {
        /// Shuffle seed.
        seed: u64,
    },
}

impl SelectionStrategy {
    /// The environment variable consulted when no explicit strategy is
    /// given (same `name[:seed]` syntax as the CLI flag), mirroring
    /// `HCL_BUILD_THREADS` for the thread count.
    pub const ENV_VAR: &'static str = "HCL_BUILD_STRATEGY";

    /// Stable on-disk discriminant, written to the v4 container header.
    pub fn tag(&self) -> u32 {
        match self {
            Self::DegreeRank => 0,
            Self::ApproxCoverage { .. } => 1,
            Self::SeededRandom { .. } => 2,
        }
    }

    /// The recorded seed (0 for the seedless [`DegreeRank`]).
    pub fn seed(&self) -> u64 {
        match *self {
            Self::DegreeRank => 0,
            Self::ApproxCoverage { seed } | Self::SeededRandom { seed } => seed,
        }
    }

    /// Reconstructs a strategy from its on-disk `(tag, seed)` pair; `None`
    /// for an unknown tag (a newer file than this reader).
    pub fn from_tag(tag: u32, seed: u64) -> Option<Self> {
        match tag {
            0 => Some(Self::DegreeRank),
            1 => Some(Self::ApproxCoverage { seed }),
            2 => Some(Self::SeededRandom { seed }),
            _ => None,
        }
    }

    /// Parses the CLI / env-var spelling `name[:seed]`.
    ///
    /// Accepted names: `degree-rank` (no seed), `approx-coverage`, and
    /// `seeded-random` (seed optional, default 0).
    pub fn parse(text: &str) -> Result<Self, String> {
        let (name, seed) = match text.split_once(':') {
            Some((name, seed)) => (name, Some(seed)),
            None => (text, None),
        };
        let parse_seed = |seed: Option<&str>| -> Result<u64, String> {
            match seed {
                None => Ok(0),
                Some(tok) => tok.parse().map_err(|_| {
                    format!("invalid seed `{tok}` in strategy `{text}` (expected a non-negative integer)")
                }),
            }
        };
        match name {
            "degree-rank" => match seed {
                None => Ok(Self::DegreeRank),
                Some(_) => Err(format!(
                    "strategy `degree-rank` takes no seed (got `{text}`)"
                )),
            },
            "approx-coverage" => Ok(Self::ApproxCoverage {
                seed: parse_seed(seed)?,
            }),
            "seeded-random" => Ok(Self::SeededRandom {
                seed: parse_seed(seed)?,
            }),
            _ => Err(format!(
                "unknown landmark-selection strategy `{name}` (expected degree-rank, \
                 approx-coverage[:seed], or seeded-random[:seed])"
            )),
        }
    }

    /// Strategy requested via [`SelectionStrategy::ENV_VAR`], or `None`
    /// when the variable is unset or does not parse.
    ///
    /// Unlike `HCL_BUILD_THREADS` — where an invalid value can only cost
    /// speed — a mistyped strategy would silently change *which index gets
    /// built and persisted*, so an unparseable value is reported on stderr
    /// (once per process; resolution runs on every build) before falling
    /// back to the default.
    pub fn from_env() -> Option<Self> {
        let value = std::env::var(Self::ENV_VAR).ok()?;
        match Self::parse(&value) {
            Ok(strategy) => Some(strategy),
            Err(e) => {
                static WARN_ONCE: std::sync::Once = std::sync::Once::new();
                WARN_ONCE.call_once(|| {
                    eprintln!(
                        "warning: ignoring invalid {} value: {e}; using the default strategy",
                        Self::ENV_VAR
                    );
                });
                None
            }
        }
    }

    /// The selector implementation this tag names.
    pub fn selector(&self) -> Box<dyn LandmarkSelector> {
        match *self {
            Self::DegreeRank => Box::new(DegreeRank),
            Self::ApproxCoverage { seed } => Box::new(ApproxCoverage { seed }),
            Self::SeededRandom { seed } => Box::new(SeededRandom { seed }),
        }
    }
}

impl fmt::Display for SelectionStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::DegreeRank => write!(f, "degree-rank"),
            Self::ApproxCoverage { seed } => write!(f, "approx-coverage:{seed}"),
            Self::SeededRandom { seed } => write!(f, "seeded-random:{seed}"),
        }
    }
}

impl std::str::FromStr for SelectionStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcl_core::testkit;

    fn assert_valid_selection(graph: GraphView<'_>, k: usize, got: &[VertexId]) {
        let n = graph.num_vertices();
        assert_eq!(got.len(), k.min(n));
        let mut seen = vec![false; n];
        for &v in got {
            assert!((v as usize) < n, "out-of-range landmark {v}");
            assert!(!seen[v as usize], "duplicate landmark {v}");
            seen[v as usize] = true;
        }
    }

    #[test]
    fn degree_rank_matches_the_historical_ranking() {
        for (n, m, seed) in [(40, 2, 1), (64, 3, 9)] {
            let g = testkit::barabasi_albert(n, m, seed);
            for k in [0, 1, 5, n, n + 10] {
                let got = DegreeRank.select(g.as_view(), k);
                assert_eq!(got, g.rank_by_degree()[..k.min(n)], "k={k}");
            }
        }
    }

    #[test]
    fn every_strategy_returns_valid_deterministic_selections() {
        let graphs = [
            testkit::path(1),
            testkit::star(12),
            testkit::barabasi_albert(60, 3, 4),
            testkit::disjoint_union(&testkit::grid(3, 3), &testkit::cycle(5)),
            hcl_core::GraphBuilder::new().build(),
        ];
        let selectors: [Box<dyn LandmarkSelector>; 3] = [
            Box::new(DegreeRank),
            Box::new(ApproxCoverage { seed: 7 }),
            Box::new(SeededRandom { seed: 7 }),
        ];
        for g in &graphs {
            for s in &selectors {
                for k in [0usize, 1, 4, 100] {
                    let a = s.select(g.as_view(), k.min(g.num_vertices()));
                    assert_valid_selection(g.as_view(), k, &a);
                    let b = s.select(g.as_view(), k.min(g.num_vertices()));
                    assert_eq!(a, b, "{} must be deterministic", s.name());
                }
            }
        }
    }

    #[test]
    fn approx_coverage_prefers_the_star_centre() {
        // Every sampled shortest path in a star runs through the centre;
        // greedy coverage must pick it first.
        let g = testkit::star(24);
        let got = ApproxCoverage { seed: 0 }.select(g.as_view(), 1);
        assert_eq!(got, vec![0]);
        // And the seed changes later (tie-ish) picks, not validity.
        let many = ApproxCoverage { seed: 3 }.select(g.as_view(), 5);
        assert_valid_selection(g.as_view(), 5, &many);
        assert_eq!(many[0], 0);
    }

    #[test]
    fn seeded_random_differs_by_seed_but_not_by_call() {
        let g = testkit::cycle(50);
        let a = SeededRandom { seed: 1 }.select(g.as_view(), 10);
        let b = SeededRandom { seed: 2 }.select(g.as_view(), 10);
        assert_ne!(a, b, "different seeds should give different samples");
    }

    #[test]
    fn strategy_spelling_round_trips() {
        for s in [
            SelectionStrategy::DegreeRank,
            SelectionStrategy::ApproxCoverage { seed: 42 },
            SelectionStrategy::SeededRandom { seed: u64::MAX },
        ] {
            assert_eq!(SelectionStrategy::parse(&s.to_string()), Ok(s));
            assert_eq!(
                SelectionStrategy::from_tag(s.tag(), s.seed()),
                Some(s),
                "tag/seed must round-trip"
            );
        }
        // Seedless spellings default the seed to 0.
        assert_eq!(
            SelectionStrategy::parse("approx-coverage"),
            Ok(SelectionStrategy::ApproxCoverage { seed: 0 })
        );
        assert_eq!(
            SelectionStrategy::parse("seeded-random"),
            Ok(SelectionStrategy::SeededRandom { seed: 0 })
        );
        assert!(SelectionStrategy::parse("degree-rank:3").is_err());
        assert!(SelectionStrategy::parse("betweenness").is_err());
        assert!(SelectionStrategy::parse("seeded-random:xyz").is_err());
        assert_eq!(SelectionStrategy::from_tag(9, 0), None);
    }

    #[test]
    fn checked_select_rejects_contract_violations() {
        struct Bad(Vec<VertexId>);
        impl LandmarkSelector for Bad {
            fn name(&self) -> &'static str {
                "bad"
            }
            fn select(&self, _: GraphView<'_>, _: usize) -> Vec<VertexId> {
                self.0.clone()
            }
        }
        let g = testkit::path(4);
        for (bad, what) in [
            (Bad(vec![0]), "wrong length"),
            (Bad(vec![0, 9]), "out of range"),
            (Bad(vec![1, 1]), "duplicate"),
        ] {
            let err =
                std::panic::catch_unwind(|| checked_select(&bad, g.as_view(), 2)).expect_err(what);
            let msg = err
                .downcast_ref::<String>()
                .expect("panic message is a String");
            assert!(msg.contains("landmark selector `bad`"), "{what}: {msg}");
        }
    }
}
