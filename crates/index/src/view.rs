//! Borrowed, zero-copy views of a highway-cover index.
//!
//! [`IndexView`] is the label-storage abstraction of the crate: the whole
//! query engine is implemented against it, and two backings provide it —
//!
//! * [`HighwayCoverIndex`](crate::HighwayCoverIndex) (owned `Vec`s, produced
//!   by a build) via [`HighwayCoverIndex::as_view`](crate::HighwayCoverIndex::as_view),
//! * `hcl-store`'s memory-mapped files, whose validated byte ranges are
//!   reinterpreted as the same five slices without copying.
//!
//! Each label entry is one **packed `u64`** — hub rank in the high 32 bits,
//! distance in the low 32 ([`pack_label_entry`] / [`unpack_label_entry`]).
//! The query hot path walks one cache-line-friendly array per vertex
//! instead of two parallel pointer streams, and because hubs occupy the
//! high bits, per-vertex entries sorted by hub are also sorted as plain
//! `u64`s — which is what the galloping merge in `query.rs` relies on.
//!
//! Untrusted data enters through [`IndexView::from_parts`], which checks
//! every structural invariant the query engine relies on, so hot paths can
//! index unchecked without risking panics on corrupt input.

use crate::build::{HighwayCoverIndex, IndexStats, NOT_A_LANDMARK};
use hcl_core::VertexId;
use std::fmt;

/// Packs a `(hub rank, distance)` label pair into one `u64`: hub in the
/// high 32 bits, distance in the low 32. Hub-sorted entry sequences are
/// therefore also `u64`-sorted.
#[inline]
pub const fn pack_label_entry(hub: u32, dist: u32) -> u64 {
    ((hub as u64) << 32) | dist as u64
}

/// Unpacks a label entry into `(hub rank, distance)`; inverse of
/// [`pack_label_entry`].
#[inline]
pub const fn unpack_label_entry(entry: u64) -> (u32, u32) {
    ((entry >> 32) as u32, entry as u32)
}

/// The hub rank of a packed label entry (its high 32 bits).
#[inline]
pub(crate) const fn entry_hub(entry: u64) -> u32 {
    (entry >> 32) as u32
}

/// The distance of a packed label entry (its low 32 bits).
#[inline]
pub(crate) const fn entry_dist(entry: u64) -> u32 {
    entry as u32
}

/// Validation failure for raw index arrays ([`IndexView::from_parts`]).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum IndexDataError {
    /// `label_offsets` must hold exactly `num_vertices + 1` entries.
    OffsetsLength {
        /// Expected entry count (`num_vertices + 1`).
        expected: usize,
        /// Actual entry count.
        found: usize,
    },
    /// `label_offsets[0]` is not zero.
    NonZeroFirstOffset,
    /// `label_offsets` decreases at some vertex.
    NonMonotoneOffsets {
        /// Vertex whose label extent is negative.
        vertex: usize,
    },
    /// The final label offset disagrees with the entry array length.
    EntriesLengthMismatch {
        /// Value of the final label offset.
        offsets_total: u64,
        /// Length of the packed entry array.
        entries_len: usize,
    },
    /// More landmarks than vertices.
    TooManyLandmarks {
        /// Number of landmarks.
        landmarks: usize,
        /// Number of vertices.
        vertices: usize,
    },
    /// The highway matrix is not `k × k`.
    HighwayShape {
        /// Number of landmarks `k`.
        landmarks: usize,
        /// Actual highway array length.
        found: usize,
    },
    /// A landmark vertex id is out of range.
    LandmarkOutOfRange {
        /// Rank of the bad landmark.
        rank: usize,
        /// The out-of-range vertex id.
        vertex: VertexId,
    },
    /// `landmark_rank` and `landmarks` disagree (not inverse permutations).
    RankTableMismatch {
        /// Vertex at which the disagreement was detected.
        vertex: VertexId,
    },
    /// A label hub rank is `>= k`.
    HubOutOfRange {
        /// Vertex whose label holds the bad hub.
        vertex: usize,
        /// The out-of-range hub rank.
        hub: u32,
    },
    /// A vertex label is not strictly ascending by hub rank.
    UnsortedHubs {
        /// Vertex whose label is malformed.
        vertex: usize,
    },
    /// A highway diagonal entry is non-zero.
    HighwayDiagonal {
        /// Rank with `highway[r][r] != 0`.
        rank: usize,
    },
    /// The highway matrix is asymmetric (the graph is undirected).
    HighwayAsymmetric {
        /// First rank of the asymmetric pair.
        a: usize,
        /// Second rank of the asymmetric pair.
        b: usize,
    },
}

impl fmt::Display for IndexDataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexDataError::OffsetsLength { expected, found } => {
                write!(f, "label offsets hold {found} entries, expected {expected}")
            }
            IndexDataError::NonZeroFirstOffset => write!(f, "label offsets must start at 0"),
            IndexDataError::NonMonotoneOffsets { vertex } => {
                write!(f, "label offsets decrease at vertex {vertex}")
            }
            IndexDataError::EntriesLengthMismatch {
                offsets_total,
                entries_len,
            } => write!(
                f,
                "final label offset {offsets_total} disagrees with entry array length \
                 {entries_len}"
            ),
            IndexDataError::TooManyLandmarks {
                landmarks,
                vertices,
            } => {
                write!(f, "{landmarks} landmarks on a {vertices}-vertex graph")
            }
            IndexDataError::HighwayShape { landmarks, found } => {
                write!(f, "highway has {found} entries, expected {landmarks}²")
            }
            IndexDataError::LandmarkOutOfRange { rank, vertex } => {
                write!(f, "landmark {rank} is out-of-range vertex {vertex}")
            }
            IndexDataError::RankTableMismatch { vertex } => {
                write!(
                    f,
                    "landmark rank table disagrees with landmark list at vertex {vertex}"
                )
            }
            IndexDataError::HubOutOfRange { vertex, hub } => {
                write!(
                    f,
                    "label of vertex {vertex} references out-of-range hub {hub}"
                )
            }
            IndexDataError::UnsortedHubs { vertex } => {
                write!(
                    f,
                    "label of vertex {vertex} is not strictly ascending by hub"
                )
            }
            IndexDataError::HighwayDiagonal { rank } => {
                write!(f, "highway diagonal entry {rank} is non-zero")
            }
            IndexDataError::HighwayAsymmetric { a, b } => {
                write!(f, "highway entries ({a}, {b}) and ({b}, {a}) disagree")
            }
        }
    }
}

impl std::error::Error for IndexDataError {}

/// A borrowed, zero-copy view of a highway-cover index.
///
/// Five slices, layout-identical to the owned
/// [`HighwayCoverIndex`](crate::HighwayCoverIndex); see the module docs.
/// `Copy`, so pass it by value. All query entry points
/// ([`query_with`](IndexView::query_with) and friends) live on this type.
#[derive(Clone, Copy, Debug)]
pub struct IndexView<'a> {
    /// Landmark rank → vertex id, in ranking order.
    pub(crate) landmarks: &'a [VertexId],
    /// Vertex id → landmark rank, or [`NOT_A_LANDMARK`]; length is the
    /// vertex count.
    pub(crate) landmark_rank: &'a [u32],
    /// CSR offsets into `label_entries`; length `n + 1`.
    pub(crate) label_offsets: &'a [u64],
    /// Packed `(hub << 32) | dist` label entries, hub-ascending (hence
    /// `u64`-ascending) within each vertex.
    pub(crate) label_entries: &'a [u64],
    /// Row-major `k × k` closed landmark-to-landmark distances.
    pub(crate) highway: &'a [u32],
}

impl<'a> IndexView<'a> {
    /// Builds a validated view over raw index arrays.
    ///
    /// Checks every structural invariant the query engine indexes by:
    /// label offsets monotone and spanning the entry array, entry hubs
    /// strictly ascending and `< k`, `landmarks`/`landmark_rank` mutually
    /// inverse, highway `k × k` with zero diagonal and symmetric. `O(n +
    /// entries + k²)` — run once per load. Semantic correctness of the
    /// *distances* is not (cannot cheaply be) verified here; a
    /// tampered-but-well-formed file yields wrong answers, never panics or
    /// UB.
    pub fn from_parts(
        landmarks: &'a [VertexId],
        landmark_rank: &'a [u32],
        label_offsets: &'a [u64],
        label_entries: &'a [u64],
        highway: &'a [u32],
    ) -> Result<Self, IndexDataError> {
        let view = Self::from_parts_unchecked(
            landmarks,
            landmark_rank,
            label_offsets,
            label_entries,
            highway,
        );
        view.validate()?;
        Ok(view)
    }

    /// Builds a view **without validating** (see
    /// [`from_parts`](IndexView::from_parts) for what is skipped).
    ///
    /// Still a safe function: malformed arrays can cause wrong answers or
    /// panics later, never undefined behaviour. Use only on arrays that
    /// already passed validation.
    pub fn from_parts_unchecked(
        landmarks: &'a [VertexId],
        landmark_rank: &'a [u32],
        label_offsets: &'a [u64],
        label_entries: &'a [u64],
        highway: &'a [u32],
    ) -> Self {
        Self {
            landmarks,
            landmark_rank,
            label_offsets,
            label_entries,
            highway,
        }
    }

    fn validate(&self) -> Result<(), IndexDataError> {
        let n = self.landmark_rank.len();
        let k = self.landmarks.len();
        if self.label_offsets.len() != n + 1 {
            return Err(IndexDataError::OffsetsLength {
                expected: n + 1,
                found: self.label_offsets.len(),
            });
        }
        if self.label_offsets[0] != 0 {
            return Err(IndexDataError::NonZeroFirstOffset);
        }
        let mut prev = 0u64;
        for (v, &off) in self.label_offsets.iter().enumerate().skip(1) {
            if off < prev {
                return Err(IndexDataError::NonMonotoneOffsets { vertex: v - 1 });
            }
            prev = off;
        }
        if prev != self.label_entries.len() as u64 {
            return Err(IndexDataError::EntriesLengthMismatch {
                offsets_total: prev,
                entries_len: self.label_entries.len(),
            });
        }
        if k > n {
            return Err(IndexDataError::TooManyLandmarks {
                landmarks: k,
                vertices: n,
            });
        }
        if self.highway.len() != k * k {
            return Err(IndexDataError::HighwayShape {
                landmarks: k,
                found: self.highway.len(),
            });
        }
        // `landmarks` and `landmark_rank` must be mutually inverse.
        for (rank, &v) in self.landmarks.iter().enumerate() {
            if (v as usize) >= n {
                return Err(IndexDataError::LandmarkOutOfRange { rank, vertex: v });
            }
            if self.landmark_rank[v as usize] != rank as u32 {
                return Err(IndexDataError::RankTableMismatch { vertex: v });
            }
        }
        for (v, &rank) in self.landmark_rank.iter().enumerate() {
            if rank != NOT_A_LANDMARK
                && (rank as usize >= k || self.landmarks[rank as usize] as usize != v)
            {
                return Err(IndexDataError::RankTableMismatch {
                    vertex: v as VertexId,
                });
            }
        }
        // Labels: hubs strictly ascending and in range. Because hubs sit in
        // the high 32 bits, strict hub ascent is exactly strict `u64`
        // ascent of the packed entries.
        for v in 0..n {
            let lo = self.label_offsets[v] as usize;
            let hi = self.label_offsets[v + 1] as usize;
            let mut last: Option<u32> = None;
            for &entry in &self.label_entries[lo..hi] {
                let hub = entry_hub(entry);
                if hub as usize >= k {
                    return Err(IndexDataError::HubOutOfRange { vertex: v, hub });
                }
                if let Some(l) = last {
                    if hub <= l {
                        return Err(IndexDataError::UnsortedHubs { vertex: v });
                    }
                }
                last = Some(hub);
            }
        }
        // Highway: zero diagonal, symmetric.
        for a in 0..k {
            if self.highway[a * k + a] != 0 {
                return Err(IndexDataError::HighwayDiagonal { rank: a });
            }
            for b in (a + 1)..k {
                if self.highway[a * k + b] != self.highway[b * k + a] {
                    return Err(IndexDataError::HighwayAsymmetric { a, b });
                }
            }
        }
        Ok(())
    }

    /// Number of landmarks in the index.
    pub fn num_landmarks(&self) -> usize {
        self.landmarks.len()
    }

    /// Vertex count of the graph this index was built for.
    pub fn num_vertices(&self) -> usize {
        self.landmark_rank.len()
    }

    /// The `(hub rank, distance)` label entries of vertex `v`, hub-sorted.
    pub fn label(&self, v: VertexId) -> impl Iterator<Item = (u32, u32)> + 'a {
        let lo = self.label_offsets[v as usize] as usize;
        let hi = self.label_offsets[v as usize + 1] as usize;
        self.label_entries[lo..hi]
            .iter()
            .map(|&e| unpack_label_entry(e))
    }

    /// Whether vertex `v` is a landmark.
    pub fn is_landmark(&self, v: VertexId) -> bool {
        self.landmark_rank[v as usize] != NOT_A_LANDMARK
    }

    /// Landmark rank → vertex id, in ranking order (for serialisation).
    pub fn landmarks(&self) -> &'a [VertexId] {
        self.landmarks
    }

    /// Vertex id → landmark rank array (for serialisation).
    pub fn landmark_rank(&self) -> &'a [u32] {
        self.landmark_rank
    }

    /// CSR label offsets, `n + 1` entries (for serialisation).
    pub fn label_offsets(&self) -> &'a [u64] {
        self.label_offsets
    }

    /// Flat packed `(hub << 32) | dist` label entries (for serialisation).
    pub fn label_entries(&self) -> &'a [u64] {
        self.label_entries
    }

    /// Row-major `k × k` closed highway matrix (for serialisation).
    pub fn highway(&self) -> &'a [u32] {
        self.highway
    }

    /// Copies the view into an owned [`HighwayCoverIndex`].
    pub fn to_owned_index(&self) -> HighwayCoverIndex {
        HighwayCoverIndex {
            landmarks: self.landmarks.to_vec(),
            landmark_rank: self.landmark_rank.to_vec(),
            label_offsets: self.label_offsets.to_vec(),
            label_entries: self.label_entries.to_vec(),
            highway: self.highway.to_vec(),
        }
    }

    /// Size statistics for logging and tuning.
    pub fn stats(&self) -> IndexStats {
        let total = self.label_entries.len();
        let n = self.num_vertices();
        let max = (0..n)
            .map(|v| (self.label_offsets[v + 1] - self.label_offsets[v]) as usize)
            .max()
            .unwrap_or(0);
        let bytes = std::mem::size_of_val(self.landmarks)
            + std::mem::size_of_val(self.landmark_rank)
            + std::mem::size_of_val(self.label_offsets)
            + std::mem::size_of_val(self.label_entries)
            + std::mem::size_of_val(self.highway);
        IndexStats {
            num_landmarks: self.landmarks.len(),
            total_label_entries: total,
            avg_label_size: total as f64 / n.max(1) as f64,
            max_label_size: max,
            bytes,
        }
    }
}

impl<'a> From<&'a HighwayCoverIndex> for IndexView<'a> {
    fn from(idx: &'a HighwayCoverIndex) -> Self {
        idx.as_view()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexConfig;
    use hcl_core::testkit;

    /// Packs parallel hub/dist arrays — the shape tests are written in.
    fn pack(hubs: &[u32], dists: &[u32]) -> Vec<u64> {
        hubs.iter()
            .zip(dists)
            .map(|(&h, &d)| pack_label_entry(h, d))
            .collect()
    }

    #[test]
    fn pack_unpack_roundtrips_and_orders_by_hub() {
        for (h, d) in [(0u32, 0u32), (1, u32::MAX), (u32::MAX, 7), (3, 3)] {
            assert_eq!(unpack_label_entry(pack_label_entry(h, d)), (h, d));
        }
        // Hub dominates the packed ordering regardless of distances.
        assert!(pack_label_entry(1, u32::MAX) < pack_label_entry(2, 0));
    }

    #[test]
    fn build_output_validates_cleanly() {
        for k in [0, 1, 4, 16] {
            let g = testkit::erdos_renyi(50, 0.08, 9);
            let idx = HighwayCoverIndex::build(&g, IndexConfig { num_landmarks: k });
            let v = idx.as_view();
            let revalidated = IndexView::from_parts(
                v.landmarks(),
                v.landmark_rank(),
                v.label_offsets(),
                v.label_entries(),
                v.highway(),
            )
            .expect("freshly built index must validate");
            assert_eq!(revalidated.num_landmarks(), idx.num_landmarks());
            assert_eq!(revalidated.num_vertices(), idx.num_vertices());
        }
    }

    #[test]
    fn to_owned_index_roundtrips() {
        let g = testkit::grid(5, 5);
        let idx = HighwayCoverIndex::build(&g, IndexConfig { num_landmarks: 6 });
        let copy = idx.as_view().to_owned_index();
        for v in 0..25 {
            assert_eq!(
                idx.label(v).collect::<Vec<_>>(),
                copy.label(v).collect::<Vec<_>>()
            );
        }
        assert_eq!(idx.stats().bytes, copy.stats().bytes);
    }

    #[test]
    fn from_parts_rejects_malformed_arrays() {
        // Minimal 2-vertex, 1-landmark shape.
        let landmarks: &[u32] = &[0];
        let rank: &[u32] = &[0, NOT_A_LANDMARK];
        let offsets: &[u64] = &[0, 1, 2];
        let entries = pack(&[0, 0], &[0, 1]);
        let highway: &[u32] = &[0];
        assert!(IndexView::from_parts(landmarks, rank, offsets, &entries, highway).is_ok());

        assert!(matches!(
            IndexView::from_parts(landmarks, rank, &[0, 1], &entries, highway).unwrap_err(),
            IndexDataError::OffsetsLength { .. }
        ));
        assert!(matches!(
            IndexView::from_parts(landmarks, rank, &[0, 2, 1], &entries, highway).unwrap_err(),
            IndexDataError::NonMonotoneOffsets { .. }
        ));
        assert!(matches!(
            IndexView::from_parts(landmarks, rank, &[0, 1, 3], &entries, highway).unwrap_err(),
            IndexDataError::EntriesLengthMismatch { .. }
        ));
        let bad_hub = pack(&[5, 0], &[0, 1]);
        assert!(matches!(
            IndexView::from_parts(landmarks, rank, offsets, &bad_hub, highway).unwrap_err(),
            IndexDataError::HubOutOfRange { hub: 5, .. }
        ));
        assert!(matches!(
            IndexView::from_parts(landmarks, rank, offsets, &entries, &[0, 0]).unwrap_err(),
            IndexDataError::HighwayShape { .. }
        ));
        assert!(matches!(
            IndexView::from_parts(&[9], rank, offsets, &entries, highway).unwrap_err(),
            IndexDataError::LandmarkOutOfRange { vertex: 9, .. }
        ));
        assert!(matches!(
            IndexView::from_parts(landmarks, &[0, 0], offsets, &entries, highway).unwrap_err(),
            IndexDataError::RankTableMismatch { .. }
        ));
        assert!(matches!(
            IndexView::from_parts(landmarks, rank, offsets, &entries, &[3]).unwrap_err(),
            IndexDataError::HighwayDiagonal { .. }
        ));
        // Duplicate hub within one vertex label.
        let dup = pack(&[0, 0], &[0, 1]);
        assert!(matches!(
            IndexView::from_parts(&[0, 1], &[0, 1], &[0, 2, 2], &dup, &[0, 1, 1, 0]).unwrap_err(),
            IndexDataError::UnsortedHubs { vertex: 0 }
        ));
        // Asymmetric highway on the same 2-landmark shape.
        let one = pack(&[0], &[0]);
        assert!(matches!(
            IndexView::from_parts(&[0, 1], &[0, 1], &[0, 1, 1], &one, &[0, 1, 2, 0]).unwrap_err(),
            IndexDataError::HighwayAsymmetric { .. }
        ));
    }
}
