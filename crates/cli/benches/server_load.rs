//! Load-generator benchmark for `hcl serve --listen`: spawns the real
//! binary on an ephemeral port, drives it with persistent-connection
//! client threads, and reports client-side p50/p99 latency plus
//! throughput across a `--max-inflight` sweep, with one configuration
//! run while the index is repeatedly hot-reloaded underneath the load.
//! Results go to `BENCH_pr6.json` at the repo root. Runs under
//! `cargo bench` (plain std::time harness; no criterion in the
//! container), `HCL_BENCH_SCALE=small` shrinks everything for CI smoke.
//!
//! The JSON records `available_parallelism`: on a single-core runner the
//! client threads and server handlers all time-share one CPU, so the
//! percentiles measure scheduling latency as much as query latency —
//! interpret them against that field.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const SEED: u64 = 0x6E57;

struct Scale {
    vertices: usize,
    requests_per_client: usize,
    clients: usize,
    max_inflight_sweep: &'static [usize],
    reload_swaps: usize,
}

// The sweep floor equals `clients`: with fewer admission slots than
// persistent connections the surplus clients would be busy-rejected
// outright (correct server behaviour, but not a latency measurement).
const FULL: Scale = Scale {
    vertices: 20_000,
    requests_per_client: 4_000,
    clients: 4,
    max_inflight_sweep: &[4, 64, 1024],
    reload_swaps: 20,
};

const SMALL: Scale = Scale {
    vertices: 1_000,
    requests_per_client: 300,
    clients: 2,
    max_inflight_sweep: &[2, 1024],
    reload_swaps: 5,
};

fn hcl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hcl"))
}

fn build_index(dir: &Path, tag: &str, edges_path: &Path, landmarks: usize) -> PathBuf {
    let out = dir.join(format!("{tag}.hcl"));
    let status = hcl()
        .arg("build")
        .arg(edges_path)
        .arg("--out")
        .arg(&out)
        .args(["--landmarks", &landmarks.to_string()])
        .status()
        .expect("spawn hcl build");
    assert!(status.success(), "hcl build failed for {tag}");
    out
}

/// Spawns `serve --listen 127.0.0.1:0` and returns the child plus the
/// bound address parsed from its `listening on …` stderr line.
fn spawn_server(index: &Path, max_inflight: usize) -> (Child, String) {
    let mut child = hcl()
        .arg("serve")
        .arg("--index")
        .arg(index)
        .args(["--listen", "127.0.0.1:0"])
        .args(["--max-inflight", &max_inflight.to_string()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn server");
    let stderr = child.stderr.take().unwrap();
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stderr);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {
                    if let Some(rest) = line.strip_prefix("listening on ") {
                        let _ = tx.send(rest.split_whitespace().next().unwrap().to_string());
                    }
                }
            }
        }
    });
    let addr = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("server never printed its listen address");
    (child, addr)
}

fn http_get(addr: &str, target: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n").expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    raw
}

fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() as f64 * q).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1] as f64 / 1_000.0
}

struct RunResult {
    p50_us: f64,
    p99_us: f64,
    mean_us: f64,
    requests: usize,
    elapsed: Duration,
}

/// Runs `clients` persistent connections, each issuing
/// `requests_per_client` request-response queries, and aggregates the
/// client-observed latencies.
fn run_load(addr: &str, n: usize, clients: usize, requests_per_client: usize) -> RunResult {
    let all: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.to_string();
            let all = Arc::clone(&all);
            std::thread::spawn(move || {
                let stream = TcpStream::connect(&addr).expect("client connect");
                stream.set_nodelay(true).ok();
                stream
                    .set_read_timeout(Some(Duration::from_secs(120)))
                    .unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                let mut rng = hcl_core::testkit::SplitMix64::new(SEED ^ (c as u64) << 17);
                let mut lat = Vec::with_capacity(requests_per_client);
                let mut answer = String::new();
                for _ in 0..requests_per_client {
                    let u = rng.next_below(n as u64);
                    let v = rng.next_below(n as u64);
                    let t = Instant::now();
                    writer
                        .write_all(format!("{u} {v}\n").as_bytes())
                        .expect("request write");
                    answer.clear();
                    reader.read_line(&mut answer).expect("answer read");
                    lat.push(t.elapsed().as_nanos() as u64);
                    assert!(!answer.is_empty(), "server hung up mid-run");
                }
                all.lock().unwrap().extend_from_slice(&lat);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread panicked");
    }
    let elapsed = t0.elapsed();
    let mut ns = Arc::try_unwrap(all).unwrap().into_inner().unwrap();
    ns.sort_unstable();
    let requests = ns.len();
    let mean_us = ns.iter().sum::<u64>() as f64 / requests.max(1) as f64 / 1_000.0;
    RunResult {
        p50_us: percentile_us(&ns, 0.50),
        p99_us: percentile_us(&ns, 0.99),
        mean_us,
        requests,
        elapsed,
    }
}

fn shut_down(mut child: Child) {
    drop(child.stdin.take()); // stdin EOF → graceful drain
    let t0 = Instant::now();
    loop {
        if child.try_wait().expect("try_wait").is_some() {
            return;
        }
        if t0.elapsed() > Duration::from_secs(60) {
            let _ = child.kill();
            let _ = child.wait();
            panic!("server did not drain within 60s");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn main() {
    let small = std::env::var("HCL_BENCH_SCALE").as_deref() == Ok("small");
    let scale = if small { SMALL } else { FULL };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let dir = std::env::temp_dir().join(format!("hcl_server_load_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench scratch dir");

    let t = Instant::now();
    let g = hcl_core::testkit::barabasi_albert(scale.vertices, 4, SEED);
    let n = g.num_vertices();
    let mut edges = String::new();
    for u in 0..n as u32 {
        for &w in g.as_view().neighbors(u) {
            if w > u {
                edges.push_str(&format!("{u} {w}\n"));
            }
        }
    }
    let edges_path = dir.join("bench.edges");
    std::fs::write(&edges_path, &edges).expect("write edge list");
    let gen_a = build_index(&dir, "gen_a", &edges_path, 16);
    let gen_b = build_index(&dir, "gen_b", &edges_path, 32);
    eprintln!(
        "bench graph: {} vertices, {} edges; two generations built in {:.1?}",
        n,
        g.num_edges(),
        t.elapsed()
    );

    // --- max-inflight sweep -------------------------------------------------
    let mut sweep_rows: Vec<String> = Vec::new();
    for &max_inflight in scale.max_inflight_sweep {
        let live = dir.join("live.hcl");
        std::fs::copy(&gen_a, &live).expect("seed live index");
        let (child, addr) = spawn_server(&live, max_inflight);
        let r = run_load(&addr, n, scale.clients, scale.requests_per_client);
        shut_down(child);
        let rps = r.requests as f64 / r.elapsed.as_secs_f64();
        eprintln!(
            "max-inflight {max_inflight}: {} requests from {} clients in {:.1?} \
             ({rps:.0} req/s) p50={:.1}µs p99={:.1}µs mean={:.1}µs",
            r.requests, scale.clients, r.elapsed, r.p50_us, r.p99_us, r.mean_us
        );
        sweep_rows.push(format!(
            "{{\"max_inflight\": {max_inflight}, \"clients\": {}, \"requests\": {}, \
             \"elapsed_ms\": {:.1}, \"req_per_sec\": {rps:.0}, \"p50_us\": {:.1}, \
             \"p99_us\": {:.1}, \"mean_us\": {:.1}}}",
            scale.clients,
            r.requests,
            r.elapsed.as_secs_f64() * 1e3,
            r.p50_us,
            r.p99_us,
            r.mean_us
        ));
    }

    // --- reload churn under load --------------------------------------------
    let live = dir.join("live.hcl");
    std::fs::copy(&gen_a, &live).expect("seed live index");
    let (child, addr) = spawn_server(&live, 1024);
    let reload_addr = addr.clone();
    let reload_dir = dir.clone();
    let (gen_a2, gen_b2) = (gen_a.clone(), gen_b.clone());
    let swaps = scale.reload_swaps;
    let reloader = std::thread::spawn(move || {
        let live = reload_dir.join("live.hcl");
        for i in 0..swaps {
            let src = if i % 2 == 0 { &gen_b2 } else { &gen_a2 };
            let tmp = reload_dir.join("live.swap.tmp");
            std::fs::copy(src, &tmp).expect("stage generation");
            std::fs::rename(&tmp, &live).expect("publish generation");
            let response = http_get(&reload_addr, "/reload");
            assert!(
                response.starts_with("HTTP/1.1 200"),
                "reload failed: {response}"
            );
            std::thread::sleep(Duration::from_millis(40));
        }
    });
    let r = run_load(&addr, n, scale.clients, scale.requests_per_client);
    reloader.join().expect("reload thread panicked");
    let metrics = http_get(&addr, "/metrics");
    let reloads: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("hcl_reloads_total")?.trim().parse().ok())
        .expect("hcl_reloads_total missing");
    shut_down(child);
    assert_eq!(reloads as usize, swaps, "not every reload landed");
    let rps = r.requests as f64 / r.elapsed.as_secs_f64();
    eprintln!(
        "reload churn ({swaps} swaps): {} requests in {:.1?} ({rps:.0} req/s) \
         p50={:.1}µs p99={:.1}µs",
        r.requests, r.elapsed, r.p50_us, r.p99_us
    );

    let json = format!(
        "{{\n  \"bench\": \"pr6_server_load\",\n  \"available_parallelism\": {cores},\n  \
         \"scale\": \"{}\",\n  \"graph\": {{\"family\": \"barabasi_albert\", \"vertices\": {n}, \
         \"edges\": {}, \"m\": 4, \"seed\": {SEED}}},\n  \
         \"requests_per_client\": {},\n  \"sweep\": [\n    {}\n  ],\n  \
         \"reload_churn\": {{\"swaps\": {swaps}, \"clients\": {}, \"requests\": {}, \
         \"elapsed_ms\": {:.1}, \"req_per_sec\": {rps:.0}, \"p50_us\": {:.1}, \
         \"p99_us\": {:.1}, \"mean_us\": {:.1}}}\n}}\n",
        if small { "small" } else { "full" },
        g.num_edges(),
        scale.requests_per_client,
        sweep_rows.join(",\n    "),
        scale.clients,
        r.requests,
        r.elapsed.as_secs_f64() * 1e3,
        r.p50_us,
        r.p99_us,
        r.mean_us
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr6.json");
    std::fs::write(out_path, &json).expect("writing BENCH_pr6.json");
    eprintln!("wrote {out_path}");

    std::fs::remove_dir_all(&dir).ok();
}
