//! End-to-end tests of the PR-7 observability surface: `query --explain`
//! (pinned trace format; stdout byte-identical to a normal run across
//! every testkit graph family), the slow-query log (every emitted line
//! must parse as the documented flat JSON object, on stderr and via
//! `--slow-log-file`, sequential and pooled), `--quiet` (suppresses the
//! latency summary line and nothing else), the skipped-input summary,
//! and `inspect --stats` (deep stats on v5 containers, graceful absence
//! note on fabricated v4 ones).

use hcl_core::{testkit, Graph};
use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn hcl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hcl"))
}

/// A per-test scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!("hcl_observe_test_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&p).expect("create scratch dir");
        Self(p)
    }

    fn file(&self, name: &str, contents: &str) -> PathBuf {
        let p = self.0.join(name);
        std::fs::write(&p, contents).expect("write scratch file");
        p
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Writes `g` as a `u v` edge list the CLI can rebuild.
fn edge_list(g: &Graph) -> String {
    let mut out = String::new();
    for u in 0..g.num_vertices() as u32 {
        for &w in g.as_view().neighbors(u) {
            if w > u {
                out.push_str(&format!("{u} {w}\n"));
            }
        }
    }
    out
}

/// Runs the binary with `args`, feeding `stdin`, asserting exit 0.
fn run_ok(args: &[&str], stdin: &str) -> Output {
    let mut child = hcl()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn hcl");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(stdin.as_bytes())
        .expect("feed stdin");
    let out = child.wait_with_output().expect("wait hcl");
    assert!(
        out.status.success(),
        "hcl {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn build_index(scratch: &Scratch, tag: &str, edges: &str, landmarks: usize) -> PathBuf {
    let graph = scratch.file(&format!("{tag}.edges"), edges);
    let index = scratch.path(&format!("{tag}.hcl"));
    let out = hcl()
        .arg("build")
        .arg(&graph)
        .arg("--out")
        .arg(&index)
        .args(["--landmarks", &landmarks.to_string()])
        .output()
        .expect("spawn hcl build");
    assert!(
        out.status.success(),
        "build failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    index
}

// ---------------------------------------------------------------------------
// Minimal flat-JSON-object parsing (the slow-log schema needs no more:
// string / unsigned-integer / null values, no nesting, no escapes)
// ---------------------------------------------------------------------------

/// A parsed slow-log value.
#[derive(Debug, PartialEq)]
enum Json {
    Str(String),
    Num(u64),
    Null,
}

/// Parses one `{"k":v,...}` line strictly; panics (with the offending
/// line) on anything that deviates from the documented schema shape, so
/// "every line parses" really is asserted, not approximated.
fn parse_flat_json(line: &str) -> Vec<(String, Json)> {
    let inner = line
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("not an object: {line:?}"));
    let mut fields = Vec::new();
    let mut rest = inner;
    while !rest.is_empty() {
        let r = rest
            .strip_prefix('"')
            .unwrap_or_else(|| panic!("expected key quote at {rest:?} in {line:?}"));
        let (key, r) = r
            .split_once('"')
            .unwrap_or_else(|| panic!("unterminated key in {line:?}"));
        let r = r
            .strip_prefix(':')
            .unwrap_or_else(|| panic!("expected colon after {key:?} in {line:?}"));
        let (value, r) = if let Some(r) = r.strip_prefix('"') {
            let (v, r) = r
                .split_once('"')
                .unwrap_or_else(|| panic!("unterminated value for {key:?} in {line:?}"));
            (Json::Str(v.to_string()), r)
        } else if let Some(r) = r.strip_prefix("null") {
            (Json::Null, r)
        } else {
            let end = r.find(',').unwrap_or(r.len());
            let v = r[..end]
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("bad number for {key:?} in {line:?}"));
            (Json::Num(v), &r[end..])
        };
        fields.push((key.to_string(), value));
        rest = match value_rest_after_comma(r) {
            Some(r) => r,
            None => break,
        };
    }
    fields
}

/// After one value: either `,` and more fields, or the end.
fn value_rest_after_comma(r: &str) -> Option<&str> {
    if r.is_empty() {
        return None;
    }
    Some(r.strip_prefix(',').expect("expected comma between fields"))
}

/// Asserts one slow-log line against the documented schema: exact key
/// order, closed token sets, and the expected endpoint set.
fn assert_slow_log_line(line: &str, endpoints: &[&str]) {
    let fields = parse_flat_json(line);
    let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        [
            "endpoint",
            "u",
            "v",
            "dist",
            "latency_us",
            "source",
            "merge",
            "hub_entries",
            "highway_improvements",
            "bfs_nodes",
            "bfs_frontier_peak",
            "worker",
            "generation",
        ],
        "key order drifted in {line:?}"
    );
    let get = |k: &str| &fields.iter().find(|(key, _)| key == k).unwrap().1;
    match get("endpoint") {
        Json::Str(e) => assert!(
            endpoints.contains(&e.as_str()),
            "endpoint {e:?} in {line:?}"
        ),
        other => panic!("endpoint not a string: {other:?}"),
    }
    match get("source") {
        Json::Str(s) => assert!(
            [
                "trivial",
                "disconnected",
                "label-hit",
                "highway",
                "residual-bfs"
            ]
            .contains(&s.as_str()),
            "unknown source {s:?} in {line:?}"
        ),
        other => panic!("source not a string: {other:?}"),
    }
    match get("merge") {
        Json::Str(m) => assert!(
            ["none", "linear", "gallop"].contains(&m.as_str()),
            "unknown merge {m:?} in {line:?}"
        ),
        other => panic!("merge not a string: {other:?}"),
    }
    assert!(
        matches!(get("dist"), Json::Num(_) | Json::Null),
        "dist must be number or null in {line:?}"
    );
    for numeric in [
        "u",
        "v",
        "latency_us",
        "hub_entries",
        "highway_improvements",
        "bfs_nodes",
        "bfs_frontier_peak",
        "worker",
        "generation",
    ] {
        assert!(
            matches!(get(numeric), Json::Num(_)),
            "{numeric} must be a number in {line:?}"
        );
    }
}

/// The slow-log lines in a stderr capture (every line that looks like
/// one must validate; other diagnostics pass through untouched).
fn slow_log_lines(stderr: &str) -> Vec<&str> {
    stderr
        .lines()
        .filter(|l| l.starts_with("{\"endpoint\":"))
        .collect()
}

// ---------------------------------------------------------------------------
// query --explain
// ---------------------------------------------------------------------------

#[test]
fn explain_trace_format_is_pinned() {
    let scratch = Scratch::new("explain_pin");
    // A path graph: distances are exact and every mechanism is reachable.
    let edges = edge_list(&testkit::path(12));
    let graph = scratch.file("path.edges", &edges);
    let out = run_ok(
        &["query", graph.to_str().unwrap(), "--explain"],
        "0 0\n0 11\n",
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    let traces: Vec<&str> = stderr
        .lines()
        .filter(|l| l.starts_with("explain: "))
        .collect();
    assert_eq!(traces.len(), 2, "one trace per query:\n{stderr}");
    // A self-query is fully deterministic: pin the entire line.
    assert_eq!(
        traces[0],
        "explain: (0, 0) -> 0 source=trivial merge=none hub_entries=0 \
         highway_improvements=0 bfs_nodes=0 bfs_frontier_peak=0"
    );
    // The second line's fields vary with the labelling; pin the shape.
    assert!(
        traces[1].starts_with("explain: (0, 11) -> 11 source="),
        "trace = {}",
        traces[1]
    );
    for field in [
        " merge=",
        " hub_entries=",
        " highway_improvements=",
        " bfs_nodes=",
        " bfs_frontier_peak=",
    ] {
        assert!(
            traces[1].contains(field),
            "missing {field} in {}",
            traces[1]
        );
    }
    // Stdout still carries exactly the answers.
    assert_eq!(String::from_utf8_lossy(&out.stdout), "0 0 0\n0 11 11\n");
}

#[test]
fn explain_mode_stdout_is_byte_identical_across_families() {
    let scratch = Scratch::new("explain_identity");
    for (idx, (name, graph)) in testkit::families().into_iter().enumerate() {
        let edges = edge_list(&graph);
        let path = scratch.file(&format!("family{idx}.edges"), &edges);
        // Families with no edges rebuild as empty graphs, which cannot
        // take --random; feed them (skippable) stdin queries instead —
        // the identity must hold there too.
        let _ = graph;
        let (base, stdin, expected_traces): (Vec<&str>, &str, usize) = if edges.is_empty() {
            (
                vec!["query", path.to_str().unwrap(), "--landmarks", "4"],
                "0 1\n2 3\n",
                0,
            )
        } else {
            (
                vec![
                    "query",
                    path.to_str().unwrap(),
                    "--landmarks",
                    "4",
                    "--random",
                    "60",
                    "--seed",
                    "99",
                ],
                "",
                60,
            )
        };
        let plain = run_ok(&base, stdin);
        let mut with_explain = base.clone();
        with_explain.push("--explain");
        let explained = run_ok(&with_explain, stdin);
        assert_eq!(
            plain.stdout, explained.stdout,
            "{name}: --explain changed stdout"
        );
        let stderr = String::from_utf8_lossy(&explained.stderr);
        assert_eq!(
            stderr
                .lines()
                .filter(|l| l.starts_with("explain: "))
                .count(),
            expected_traces,
            "{name}: expected one trace per query:\n{stderr}"
        );
    }
}

// ---------------------------------------------------------------------------
// serve --slow-log-us / --slow-log-file
// ---------------------------------------------------------------------------

#[test]
fn slow_log_stdin_sequential_emits_valid_json_per_line() {
    let scratch = Scratch::new("slowlog_seq");
    let index = build_index(
        &scratch,
        "ba",
        &edge_list(&testkit::barabasi_albert(80, 3, 7)),
        6,
    );
    let input = "0 13\n5 5\n2 70\n";
    let out = run_ok(
        &[
            "serve",
            "--index",
            index.to_str().unwrap(),
            "--slow-log-us",
            "0",
        ],
        input,
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    let lines = slow_log_lines(&stderr);
    assert_eq!(lines.len(), 3, "one line per served query:\n{stderr}");
    for line in &lines {
        assert_slow_log_line(line, &["stdin"]);
    }
    // The trivial self-query is deterministic enough to pin pieces of.
    assert!(
        lines[1].contains("\"u\":5,\"v\":5,\"dist\":0,"),
        "line = {}",
        lines[1]
    );
    assert!(
        lines[1].contains("\"source\":\"trivial\",\"merge\":\"none\""),
        "line = {}",
        lines[1]
    );
    assert!(
        lines[1].ends_with("\"worker\":0,\"generation\":1}"),
        "line = {}",
        lines[1]
    );
}

#[test]
fn slow_log_pooled_and_file_sink() {
    let scratch = Scratch::new("slowlog_pool");
    let index = build_index(
        &scratch,
        "er",
        &edge_list(&testkit::erdos_renyi(60, 0.08, 3)),
        5,
    );
    let log_path = scratch.path("slow.jsonl");
    let mut input = String::new();
    for i in 0..200u32 {
        input.push_str(&format!("{} {}\n", i % 60, (i * 7) % 60));
    }
    let out = run_ok(
        &[
            "serve",
            "--index",
            index.to_str().unwrap(),
            "--workers",
            "4",
            "--slow-log-us",
            "0",
            "--slow-log-file",
            log_path.to_str().unwrap(),
        ],
        &input,
    );
    // Answers still come out in input order regardless of the log.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 200);
    // The file carries the log; stderr does not.
    let logged = std::fs::read_to_string(&log_path).expect("slow-log file written");
    let lines: Vec<&str> = logged.lines().collect();
    assert_eq!(lines.len(), 200, "one line per served query");
    for line in &lines {
        assert_slow_log_line(line, &["stdin"]);
    }
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        slow_log_lines(&stderr).is_empty(),
        "--slow-log-file must divert lines off stderr:\n{stderr}"
    );
}

#[test]
fn slow_log_threshold_filters_fast_queries() {
    let scratch = Scratch::new("slowlog_threshold");
    let index = build_index(&scratch, "path", &edge_list(&testkit::path(20)), 4);
    // An absurd threshold: nothing on a 20-vertex path takes a minute.
    let out = run_ok(
        &[
            "serve",
            "--index",
            index.to_str().unwrap(),
            "--slow-log-us",
            "60000000",
        ],
        "0 19\n3 4\n",
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        slow_log_lines(&stderr).is_empty(),
        "under-threshold queries must not log:\n{stderr}"
    );
}

#[test]
fn slow_log_file_requires_threshold_flag() {
    let out = hcl()
        .args(["serve", "--slow-log-file", "/tmp/nope.jsonl"])
        .output()
        .expect("spawn hcl");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--slow-log-file only applies with --slow-log-us"),
        "stderr = {stderr}"
    );
}

// ---------------------------------------------------------------------------
// --quiet and the skipped-input summary
// ---------------------------------------------------------------------------

#[test]
fn quiet_suppresses_only_the_latency_summary() {
    let scratch = Scratch::new("quiet");
    let index = build_index(&scratch, "cyc", &edge_list(&testkit::cycle(16)), 4);
    let input = "0 8\n1 2\n";
    for workers in ["1", "3"] {
        let loud = run_ok(
            &[
                "serve",
                "--index",
                index.to_str().unwrap(),
                "--workers",
                workers,
            ],
            input,
        );
        let loud_err = String::from_utf8_lossy(&loud.stderr);
        assert!(loud_err.contains("latency: p50="), "no summary: {loud_err}");

        let quiet = run_ok(
            &[
                "serve",
                "--index",
                index.to_str().unwrap(),
                "--workers",
                workers,
                "--quiet",
            ],
            input,
        );
        let quiet_err = String::from_utf8_lossy(&quiet.stderr);
        assert!(
            !quiet_err.contains("latency:"),
            "--quiet left the summary: {quiet_err}"
        );
        assert!(
            quiet_err.contains("served 2 queries"),
            "--quiet must keep the served line: {quiet_err}"
        );
        assert_eq!(loud.stdout, quiet.stdout, "--quiet touched stdout");
    }
}

#[test]
fn skipped_input_is_summarised_per_kind() {
    let scratch = Scratch::new("skipped");
    let index = build_index(&scratch, "star", &edge_list(&testkit::star(10)), 3);
    let input = "0 5\nnot a pair\n0 9999\n1 2\nbogus line\n";
    for workers in ["1", "2"] {
        let out = run_ok(
            &[
                "serve",
                "--index",
                index.to_str().unwrap(),
                "--workers",
                workers,
            ],
            input,
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("skipped: 2 malformed, 1 out of range"),
            "workers={workers}: missing/incorrect skip summary:\n{stderr}"
        );
        assert_eq!(
            String::from_utf8_lossy(&out.stdout).lines().count(),
            2,
            "workers={workers}: two valid queries expected"
        );
    }

    // Clean input prints no skip line at all.
    let out = run_ok(&["serve", "--index", index.to_str().unwrap()], "0 5\n");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("skipped:"),
        "clean run grew a skip line: {stderr}"
    );
}

// ---------------------------------------------------------------------------
// inspect --stats
// ---------------------------------------------------------------------------

#[test]
fn inspect_stats_renders_deep_stats_for_v5_containers() {
    let scratch = Scratch::new("inspect_v5");
    let index = build_index(
        &scratch,
        "ba",
        &edge_list(&testkit::barabasi_albert(120, 3, 11)),
        8,
    );
    let out = run_ok(&["inspect", index.to_str().unwrap(), "--stats"], "");
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "label histogram:",
        "  entries/vertex: p50=",
        " p99=",
        " max=",
        "top hubs:",
        "label entries",
        "build stats:",
        "  bfs visits:",
        "  label insertions:",
        "  dominated:",
        "% of visits cut)",
        "  top contributors:",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    // The plain section table is still there (additive, not replacing).
    assert!(
        text.contains("sections:"),
        "lost the section table:\n{text}"
    );
    assert!(
        text.contains("build_stats"),
        "v5 build_stats section missing from table:\n{text}"
    );

    // Without the flag, none of the deep stats appear.
    let plain = run_ok(&["inspect", index.to_str().unwrap()], "");
    let plain_text = String::from_utf8_lossy(&plain.stdout);
    assert!(!plain_text.contains("label histogram:"), "{plain_text}");
    assert!(!plain_text.contains("build stats:"), "{plain_text}");
}

#[test]
fn inspect_stats_degrades_gracefully_on_v4_containers() {
    let scratch = Scratch::new("inspect_v4");
    // Fabricate a v4 container (no build_stats section) via the store
    // crate's compat writer, exactly what a pre-PR7 binary produced.
    let graph = testkit::barabasi_albert(60, 2, 5);
    let index = hcl_index::HighwayCoverIndex::build_with(
        &graph,
        &hcl_index::BuildOptions {
            num_landmarks: 4,
            threads: 1,
            batch_size: 0,
            selection: None,
        },
    );
    let bytes = hcl_store::serialize_v4_with(&graph, &index, hcl_store::BuildInfo::default())
        .expect("serialize v4");
    let path = scratch.path("old.hcl");
    std::fs::write(&path, &bytes).expect("write v4 container");

    let out = run_ok(&["inspect", path.to_str().unwrap(), "--stats"], "");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("HCLSTOR v4"), "not a v4 file?\n{text}");
    // Histogram and hubs come from the label sections and still render;
    // the build counters honestly report their absence.
    assert!(text.contains("label histogram:"), "{text}");
    assert!(text.contains("top hubs:"), "{text}");
    assert!(
        text.contains("build stats:   (not recorded; container written before format v5)"),
        "missing absence note in:\n{text}"
    );
}
