//! Property tests for the serving worker pool: for every testkit graph
//! family, `serve --workers {1, 2, 4, 8}` must produce **byte-identical**
//! stdout (and identical per-line diagnostics) for the same stdin — the
//! reorder buffer's ordering guarantee — and `query --workers` must agree
//! with the sequential batch path. Workloads are sized past one pool
//! chunk so the reorder machinery actually reorders.

use hcl_core::{testkit, Graph};
use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn hcl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hcl"))
}

/// Writes `g` as a `u v` edge list the CLI can rebuild. (Trailing isolated
/// vertices are not representable in an edge list; queries against them
/// simply exercise the out-of-range diagnostics, identically across
/// worker counts.)
fn edge_list(g: &Graph) -> String {
    let mut out = String::new();
    for u in 0..g.num_vertices() as u32 {
        for &w in g.as_view().neighbors(u) {
            if w > u {
                out.push_str(&format!("{u} {w}\n"));
            }
        }
    }
    out
}

/// A deterministic stdin workload: mostly valid pairs, salted with
/// out-of-range ids, comments, and blanks — plus malformed lines when
/// `malformed` is set (`serve` skips them; batch `query` treats them as
/// fatal, so its workload stays clean). Sized well past one pool chunk
/// (256) so multi-worker runs genuinely reorder.
fn workload(n: usize, seed: u64, malformed: bool) -> String {
    let mut rng = testkit::SplitMix64::new(seed);
    let mut out = String::from("# workers property workload\n");
    let space = (n.max(1) + 3) as u64; // a few ids past n → out-of-range
    for i in 0..700 {
        match i % 97 {
            13 => out.push('\n'),
            29 => out.push_str("% comment line\n"),
            61 if malformed => out.push_str("not a pair\n"),
            _ => {
                let u = rng.next_below(space);
                let v = rng.next_below(space);
                out.push_str(&format!("{u} {v}\n"));
            }
        }
    }
    out
}

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!("hcl_workers_test_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&p).expect("create scratch dir");
        Self(p)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn run_with_stdin(cmd: &mut Command, stdin: &str) -> Output {
    let mut child = cmd
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn hcl");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    assert!(
        out.status.success(),
        "command failed: {cmd:?}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

#[test]
fn serve_output_is_byte_identical_across_worker_counts() {
    let scratch = Scratch::new("serve");
    for (name, g) in testkit::families() {
        let slug = name.replace(['(', ')', ',', '.', '⊎', '+'], "_");
        let edges = scratch.0.join(format!("{slug}.edges"));
        std::fs::write(&edges, edge_list(&g)).expect("write edges");
        let index = scratch.0.join(format!("{slug}.hcl"));
        let build = hcl()
            .arg("build")
            .arg(&edges)
            .arg("--out")
            .arg(&index)
            .args(["--landmarks", "4"])
            .output()
            .expect("spawn build");
        assert!(
            build.status.success(),
            "{name}: build failed: {}",
            String::from_utf8_lossy(&build.stderr)
        );

        let input = workload(g.num_vertices(), 0xBEEF ^ g.num_vertices() as u64, true);
        let reference = run_with_stdin(hcl().arg("serve").arg("--index").arg(&index), &input);
        for workers in [2usize, 4, 8] {
            let pooled = run_with_stdin(
                hcl().arg("serve").arg("--index").arg(&index).args([
                    "--workers",
                    &workers.to_string(),
                    "--trusted",
                ]),
                &input,
            );
            assert_eq!(
                pooled.stdout, reference.stdout,
                "{name}: serve --workers {workers} stdout diverged from --workers 1"
            );
            // Per-line diagnostics are emitted by the reading thread, so
            // they too must match the sequential run exactly.
            let diag = |out: &Output| -> Vec<String> {
                String::from_utf8_lossy(&out.stderr)
                    .lines()
                    .filter(|l| l.starts_with("error:"))
                    .map(str::to_owned)
                    .collect()
            };
            assert_eq!(
                diag(&pooled),
                diag(&reference),
                "{name}: serve --workers {workers} diagnostics diverged"
            );
        }

        // The batch query path must agree with serve and with itself
        // across worker counts (on a clean workload — batch query treats
        // malformed lines as fatal by design).
        let clean = workload(g.num_vertices(), 0xBEEF ^ g.num_vertices() as u64, false);
        let serve_clean = run_with_stdin(hcl().arg("serve").arg("--index").arg(&index), &clean);
        let q1 = run_with_stdin(hcl().arg("query").arg("--index").arg(&index), &clean);
        assert_eq!(
            q1.stdout, serve_clean.stdout,
            "{name}: query and serve answers diverged"
        );
        for workers in [2usize, 8] {
            let qn = run_with_stdin(
                hcl()
                    .arg("query")
                    .arg("--index")
                    .arg(&index)
                    .args(["--workers", &workers.to_string()]),
                &clean,
            );
            assert_eq!(
                qn.stdout, q1.stdout,
                "{name}: query --workers {workers} diverged"
            );
        }
    }
}
