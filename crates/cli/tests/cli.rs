//! End-to-end tests of the `hcl` binary: the full build → save →
//! mmap-load → query → inspect pipeline on degenerate graphs (`n = 0` and
//! a single vertex), the out-of-range skip-don't-die contract shared by
//! `query --index` and `serve`, and clean shutdown when the stdout reader
//! disappears mid-serve (`hcl serve … | head`).

use std::io::{Read, Write};
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn hcl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hcl"))
}

/// A per-test scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!("hcl_cli_test_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&p).expect("create scratch dir");
        Self(p)
    }

    fn file(&self, name: &str, contents: &str) -> PathBuf {
        let p = self.0.join(name);
        std::fs::write(&p, contents).expect("write scratch file");
        p
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("spawn hcl");
    assert!(
        out.status.success(),
        "command failed: {:?}\nstdout: {}\nstderr: {}",
        cmd,
        stdout_of(&out),
        stderr_of(&out)
    );
    out
}

/// Runs the whole pipeline for one edge list and returns the final
/// `inspect` output. `stdin_queries` are piped into both `query --index`
/// and `serve --index`; both must succeed.
fn pipeline(scratch: &Scratch, edges: &str, stdin_queries: &str) -> String {
    let graph = scratch.file("graph.edges", edges);
    let index = scratch.path("graph.hcl");

    run_ok(
        hcl()
            .arg("build")
            .arg(&graph)
            .arg("--out")
            .arg(&index)
            .args(["--landmarks", "4", "--threads", "2"]),
    );

    for sub in ["query", "serve"] {
        let mut child = hcl()
            .arg(sub)
            .arg("--index")
            .arg(&index)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn hcl");
        child
            .stdin
            .take()
            .expect("stdin piped")
            .write_all(stdin_queries.as_bytes())
            .expect("write queries");
        let out = child.wait_with_output().expect("wait");
        assert!(
            out.status.success(),
            "{sub} failed on pipeline graph\nstderr: {}",
            stderr_of(&out)
        );
    }

    stdout_of(&run_ok(hcl().arg("inspect").arg(&index)))
}

#[test]
fn empty_graph_pipeline_builds_serves_inspects() {
    let scratch = Scratch::new("empty");
    let inspect = pipeline(&scratch, "# no edges at all\n", "");
    assert!(inspect.contains("vertices:      0"), "inspect: {inspect}");
    assert!(inspect.contains("landmarks:     0"), "inspect: {inspect}");
    assert!(
        inspect.contains("built with:    2 thread(s), landmark batch 8"),
        "inspect must show recorded build metadata: {inspect}"
    );
}

#[test]
fn single_vertex_pipeline_answers_the_identity_query() {
    let scratch = Scratch::new("single");
    // A lone self-loop canonicalises to one vertex with no edges.
    let inspect = pipeline(&scratch, "0 0\n", "0 0\n");
    assert!(inspect.contains("vertices:      1"), "inspect: {inspect}");
    assert!(inspect.contains("edges:         0"), "inspect: {inspect}");

    // And the identity query actually answers 0.
    let graph = scratch.file("single.edges", "0 0\n");
    let index = scratch.path("single.hcl");
    run_ok(hcl().arg("build").arg(&graph).arg("--out").arg(&index));
    let queries = scratch.file("q.txt", "0 0\n");
    let out = run_ok(
        hcl()
            .arg("query")
            .arg("--index")
            .arg(&index)
            .arg("--queries")
            .arg(&queries),
    );
    assert_eq!(stdout_of(&out), "0 0 0\n");
}

/// Both `query --index` and `serve` must diagnose out-of-range ids with
/// `<source>:<line>` and keep answering the remaining queries — the two
/// paths used to disagree (`query` died on the first bad id).
#[test]
fn query_and_serve_agree_on_out_of_range_handling() {
    let scratch = Scratch::new("oor");
    let graph = scratch.file("g.edges", "0 1\n1 2\n");
    let index = scratch.path("g.hcl");
    run_ok(hcl().arg("build").arg(&graph).arg("--out").arg(&index));

    let input = "0 2\n0 99\n2 2\n";

    // query --index with a queries file.
    let queries = scratch.file("queries.txt", input);
    let out = run_ok(
        hcl()
            .arg("query")
            .arg("--index")
            .arg(&index)
            .arg("--queries")
            .arg(&queries),
    );
    assert_eq!(
        stdout_of(&out),
        "0 2 2\n2 2 0\n",
        "good queries around the bad one must still be answered"
    );
    let err = stderr_of(&out);
    let diag = format!(
        "{}:2: query (0, 99) out of range (n = 3)",
        queries.display()
    );
    assert!(err.contains(&diag), "missing `{diag}` in stderr: {err}");

    // serve with the same pairs on stdin: same diagnostics, same answers.
    let mut child = hcl()
        .arg("serve")
        .arg("--index")
        .arg(&index)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    assert_eq!(stdout_of(&out), "0 2 2\n2 2 0\n");
    let err = stderr_of(&out);
    assert!(
        err.contains("stdin:2: query (0, 99) out of range (n = 3)"),
        "serve diagnostics changed: {err}"
    );
}

/// `hcl serve … | head`-style reader disappearance: the serve loop must
/// treat the broken pipe as end-of-session — summary on stderr, exit 0 —
/// not abort with `error: writing output`.
#[test]
fn serve_survives_stdout_reader_closing() {
    let scratch = Scratch::new("epipe");
    let graph = scratch.file("g.edges", "0 1\n1 2\n2 3\n");
    let index = scratch.path("g.hcl");
    run_ok(hcl().arg("build").arg(&graph).arg("--out").arg(&index));

    let mut child = hcl()
        .arg("serve")
        .arg("--index")
        .arg(&index)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");

    // Close the read end of stdout before feeding any queries, so the
    // first per-line flush hits EPIPE deterministically.
    drop(child.stdout.take());
    let mut stdin = child.stdin.take().expect("stdin piped");
    for _ in 0..64 {
        if stdin.write_all(b"0 3\n").is_err() {
            break; // serve already shut down and closed its stdin — fine
        }
    }
    drop(stdin);

    let status = child.wait().expect("wait");
    let mut err = String::new();
    child
        .stderr
        .take()
        .expect("stderr piped")
        .read_to_string(&mut err)
        .expect("read stderr");

    assert!(
        status.success(),
        "serve must exit 0 on a closed stdout, stderr: {err}"
    );
    assert!(
        err.contains("stdout closed by reader"),
        "missing shutdown note: {err}"
    );
    assert!(
        !err.contains("error: writing output"),
        "broken pipe still reported as a write error: {err}"
    );
}

/// The same reader-closing resilience for the batch `query` path.
#[test]
fn query_survives_stdout_reader_closing() {
    let scratch = Scratch::new("epipe_query");
    let graph = scratch.file("g.edges", "0 1\n1 2\n");
    let index = scratch.path("g.hcl");
    run_ok(hcl().arg("build").arg(&graph).arg("--out").arg(&index));

    let mut child = hcl()
        .arg("query")
        .arg("--index")
        .arg(&index)
        .args(["--random", "100000"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn query");
    drop(child.stdout.take());
    let status = child.wait().expect("wait");
    let mut err = String::new();
    child
        .stderr
        .take()
        .expect("stderr piped")
        .read_to_string(&mut err)
        .expect("read stderr");
    assert!(
        status.success(),
        "query must exit 0 on a closed stdout, stderr: {err}"
    );
}

/// `--threads` must not change what gets served: byte-compare the section
/// payloads of containers built sequentially and with 4 threads (their
/// headers differ only in the recorded build metadata and checksum).
#[test]
fn threads_flag_does_not_change_the_served_index() {
    let scratch = Scratch::new("threads");
    // A graph big enough that batching actually spans several batches.
    let edges: String = (0..400u32)
        .map(|i| format!("{} {}\n", i, (i * 7 + 1) % 400))
        .collect();
    let graph = scratch.file("g.edges", &edges);
    let seq = scratch.path("seq.hcl");
    let par = scratch.path("par.hcl");
    run_ok(hcl().arg("build").arg(&graph).arg("--out").arg(&seq).args([
        "--landmarks",
        "24",
        "--threads",
        "1",
    ]));
    run_ok(hcl().arg("build").arg(&graph).arg("--out").arg(&par).args([
        "--landmarks",
        "24",
        "--threads",
        "4",
    ]));
    let a = std::fs::read(&seq).expect("read seq");
    let b = std::fs::read(&par).expect("read par");
    assert_eq!(
        a[hcl_store::HEADER_LEN..],
        b[hcl_store::HEADER_LEN..],
        "served payload must be thread-count independent"
    );
    assert_ne!(a, b, "recorded build metadata should differ");
}
