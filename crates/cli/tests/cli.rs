//! End-to-end tests of the `hcl` binary: the full build → save →
//! mmap-load → query → inspect pipeline on degenerate graphs (`n = 0` and
//! a single vertex), the out-of-range skip-don't-die contract shared by
//! `query --index` and `serve`, and clean shutdown when the stdout reader
//! disappears mid-serve (`hcl serve … | head`).

use std::io::{Read, Write};
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn hcl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hcl"))
}

/// A per-test scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!("hcl_cli_test_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&p).expect("create scratch dir");
        Self(p)
    }

    fn file(&self, name: &str, contents: &str) -> PathBuf {
        let p = self.0.join(name);
        std::fs::write(&p, contents).expect("write scratch file");
        p
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("spawn hcl");
    assert!(
        out.status.success(),
        "command failed: {:?}\nstdout: {}\nstderr: {}",
        cmd,
        stdout_of(&out),
        stderr_of(&out)
    );
    out
}

/// Runs the whole pipeline for one edge list and returns the final
/// `inspect` output. `stdin_queries` are piped into both `query --index`
/// and `serve --index`; both must succeed.
fn pipeline(scratch: &Scratch, edges: &str, stdin_queries: &str) -> String {
    let graph = scratch.file("graph.edges", edges);
    let index = scratch.path("graph.hcl");

    run_ok(
        hcl()
            .arg("build")
            .arg(&graph)
            .arg("--out")
            .arg(&index)
            .args(["--landmarks", "4", "--threads", "2"]),
    );

    for sub in ["query", "serve"] {
        let mut child = hcl()
            .arg(sub)
            .arg("--index")
            .arg(&index)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn hcl");
        child
            .stdin
            .take()
            .expect("stdin piped")
            .write_all(stdin_queries.as_bytes())
            .expect("write queries");
        let out = child.wait_with_output().expect("wait");
        assert!(
            out.status.success(),
            "{sub} failed on pipeline graph\nstderr: {}",
            stderr_of(&out)
        );
    }

    stdout_of(&run_ok(hcl().arg("inspect").arg(&index)))
}

#[test]
fn empty_graph_pipeline_builds_serves_inspects() {
    let scratch = Scratch::new("empty");
    let inspect = pipeline(&scratch, "# no edges at all\n", "");
    assert!(inspect.contains("vertices:      0"), "inspect: {inspect}");
    assert!(inspect.contains("landmarks:     0"), "inspect: {inspect}");
    assert!(
        inspect.contains("built with:    2 thread(s), landmark batch 8"),
        "inspect must show recorded build metadata: {inspect}"
    );
}

#[test]
fn single_vertex_pipeline_answers_the_identity_query() {
    let scratch = Scratch::new("single");
    // A lone self-loop canonicalises to one vertex with no edges.
    let inspect = pipeline(&scratch, "0 0\n", "0 0\n");
    assert!(inspect.contains("vertices:      1"), "inspect: {inspect}");
    assert!(inspect.contains("edges:         0"), "inspect: {inspect}");

    // And the identity query actually answers 0.
    let graph = scratch.file("single.edges", "0 0\n");
    let index = scratch.path("single.hcl");
    run_ok(hcl().arg("build").arg(&graph).arg("--out").arg(&index));
    let queries = scratch.file("q.txt", "0 0\n");
    let out = run_ok(
        hcl()
            .arg("query")
            .arg("--index")
            .arg(&index)
            .arg("--queries")
            .arg(&queries),
    );
    assert_eq!(stdout_of(&out), "0 0 0\n");
}

/// Both `query --index` and `serve` must diagnose out-of-range ids with
/// `<source>:<line>` and keep answering the remaining queries — the two
/// paths used to disagree (`query` died on the first bad id).
#[test]
fn query_and_serve_agree_on_out_of_range_handling() {
    let scratch = Scratch::new("oor");
    let graph = scratch.file("g.edges", "0 1\n1 2\n");
    let index = scratch.path("g.hcl");
    run_ok(hcl().arg("build").arg(&graph).arg("--out").arg(&index));

    let input = "0 2\n0 99\n2 2\n";

    // query --index with a queries file.
    let queries = scratch.file("queries.txt", input);
    let out = run_ok(
        hcl()
            .arg("query")
            .arg("--index")
            .arg(&index)
            .arg("--queries")
            .arg(&queries),
    );
    assert_eq!(
        stdout_of(&out),
        "0 2 2\n2 2 0\n",
        "good queries around the bad one must still be answered"
    );
    let err = stderr_of(&out);
    let diag = format!(
        "{}:2: query (0, 99) out of range (n = 3)",
        queries.display()
    );
    assert!(err.contains(&diag), "missing `{diag}` in stderr: {err}");

    // serve with the same pairs on stdin: same diagnostics, same answers.
    let mut child = hcl()
        .arg("serve")
        .arg("--index")
        .arg(&index)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    assert_eq!(stdout_of(&out), "0 2 2\n2 2 0\n");
    let err = stderr_of(&out);
    assert!(
        err.contains("stdin:2: query (0, 99) out of range (n = 3)"),
        "serve diagnostics changed: {err}"
    );
}

/// Both stdin serving paths (sequential and pooled) must end with the
/// same machine-parseable latency summary on stderr. The format is a
/// contract shared with `serve --listen`; this pins it.
#[test]
fn serve_prints_latency_summary_in_pinned_format() {
    let scratch = Scratch::new("latency");
    let graph = scratch.file("g.edges", "0 1\n1 2\n2 3\n3 4\n");
    let index = scratch.path("g.hcl");
    run_ok(hcl().arg("build").arg(&graph).arg("--out").arg(&index));

    for workers in ["1", "4"] {
        let mut child = hcl()
            .arg("serve")
            .arg("--index")
            .arg(&index)
            .args(["--workers", workers])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn serve");
        child
            .stdin
            .take()
            .expect("stdin piped")
            .write_all(b"0 4\n1 3\n0 0\n")
            .expect("write queries");
        let out = child.wait_with_output().expect("wait");
        assert!(out.status.success());
        let err = stderr_of(&out);
        let line = err
            .lines()
            .find(|l| l.starts_with("latency: "))
            .unwrap_or_else(|| panic!("no latency summary at {workers} workers: {err}"));
        // latency: p50=X.Xµs p90=X.Xµs p99=X.Xµs mean=X.Xµs over N queries
        let fields: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(fields.len(), 8, "summary shape changed: {line}");
        for (i, prefix) in [(1, "p50="), (2, "p90="), (3, "p99="), (4, "mean=")] {
            let rest = fields[i]
                .strip_prefix(prefix)
                .unwrap_or_else(|| panic!("field {i} of `{line}` lost its `{prefix}`"));
            let value = rest
                .strip_suffix("µs")
                .unwrap_or_else(|| panic!("field {i} of `{line}` lost its µs unit"));
            let parsed: f64 = value
                .parse()
                .unwrap_or_else(|_| panic!("field {i} of `{line}` is not a decimal: {value}"));
            assert!(parsed >= 0.0);
        }
        assert_eq!(
            (fields[5], fields[6], fields[7]),
            ("over", "3", "queries"),
            "sample count changed: {line}"
        );
    }
}

/// `hcl serve … | head`-style reader disappearance: the serve loop must
/// treat the broken pipe as end-of-session — summary on stderr, exit 0 —
/// not abort with `error: writing output`.
#[test]
fn serve_survives_stdout_reader_closing() {
    let scratch = Scratch::new("epipe");
    let graph = scratch.file("g.edges", "0 1\n1 2\n2 3\n");
    let index = scratch.path("g.hcl");
    run_ok(hcl().arg("build").arg(&graph).arg("--out").arg(&index));

    let mut child = hcl()
        .arg("serve")
        .arg("--index")
        .arg(&index)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");

    // Close the read end of stdout before feeding any queries, so the
    // first per-line flush hits EPIPE deterministically.
    drop(child.stdout.take());
    let mut stdin = child.stdin.take().expect("stdin piped");
    for _ in 0..64 {
        if stdin.write_all(b"0 3\n").is_err() {
            break; // serve already shut down and closed its stdin — fine
        }
    }
    drop(stdin);

    let status = child.wait().expect("wait");
    let mut err = String::new();
    child
        .stderr
        .take()
        .expect("stderr piped")
        .read_to_string(&mut err)
        .expect("read stderr");

    assert!(
        status.success(),
        "serve must exit 0 on a closed stdout, stderr: {err}"
    );
    assert!(
        err.contains("stdout closed by reader"),
        "missing shutdown note: {err}"
    );
    assert!(
        !err.contains("error: writing output"),
        "broken pipe still reported as a write error: {err}"
    );
}

/// The same reader-closing resilience for the batch `query` path.
#[test]
fn query_survives_stdout_reader_closing() {
    let scratch = Scratch::new("epipe_query");
    let graph = scratch.file("g.edges", "0 1\n1 2\n");
    let index = scratch.path("g.hcl");
    run_ok(hcl().arg("build").arg(&graph).arg("--out").arg(&index));

    let mut child = hcl()
        .arg("query")
        .arg("--index")
        .arg(&index)
        .args(["--random", "100000"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn query");
    drop(child.stdout.take());
    let status = child.wait().expect("wait");
    let mut err = String::new();
    child
        .stderr
        .take()
        .expect("stderr piped")
        .read_to_string(&mut err)
        .expect("read stderr");
    assert!(
        status.success(),
        "query must exit 0 on a closed stdout, stderr: {err}"
    );
}

/// And for `inspect`, which used to panic (`failed printing to stdout`)
/// when its reader went away mid-report.
#[test]
fn inspect_survives_stdout_reader_closing() {
    let scratch = Scratch::new("epipe_inspect");
    let graph = scratch.file("g.edges", "0 1\n1 2\n");
    let index = scratch.path("g.hcl");
    run_ok(hcl().arg("build").arg(&graph).arg("--out").arg(&index));

    let mut child = hcl()
        .arg("inspect")
        .arg(&index)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn inspect");
    drop(child.stdout.take());
    let status = child.wait().expect("wait");
    let mut err = String::new();
    child
        .stderr
        .take()
        .expect("stderr piped")
        .read_to_string(&mut err)
        .expect("read stderr");
    assert!(
        status.success(),
        "inspect must exit 0 on a closed stdout, stderr: {err}"
    );
    assert!(!err.contains("panicked"), "inspect panicked: {err}");
}

/// A landmark request larger than the graph must not be clamped
/// *silently*: every subcommand that builds from an edge list (build,
/// query, serve, and the legacy no-subcommand form) owes the user a
/// one-line stderr warning naming both numbers.
#[test]
fn landmark_clamp_warns_on_every_subcommand() {
    let scratch = Scratch::new("clamp");
    let graph = scratch.file("g.edges", "0 1\n1 2\n");
    let index = scratch.path("g.hcl");
    let expect_warned = |out: &Output, what: &str| {
        let err = stderr_of(out);
        assert!(
            err.contains("warning: requested 99 landmarks but the graph has 3 vertices"),
            "{what}: missing clamp warning in stderr: {err}"
        );
    };

    let out = run_ok(
        hcl()
            .arg("build")
            .arg(&graph)
            .arg("--out")
            .arg(&index)
            .args(["--landmarks", "99"]),
    );
    expect_warned(&out, "build");

    let queries = scratch.file("q.txt", "0 2\n");
    let out = run_ok(
        hcl()
            .arg("query")
            .arg(&graph)
            .args(["--landmarks", "99", "--queries"])
            .arg(&queries),
    );
    expect_warned(&out, "query");
    assert_eq!(stdout_of(&out), "0 2 2\n");

    let mut child = hcl()
        .arg("serve")
        .arg(&graph)
        .args(["--landmarks", "99"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(b"0 1\n")
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    expect_warned(&out, "serve");

    // Legacy no-subcommand invocation.
    let out = run_ok(
        hcl()
            .arg(&graph)
            .args(["--landmarks", "99", "--queries"])
            .arg(&queries),
    );
    expect_warned(&out, "legacy");

    // And no warning when the request fits.
    let out = run_ok(
        hcl()
            .arg("query")
            .arg(&graph)
            .args(["--landmarks", "2", "--queries"])
            .arg(&queries),
    );
    // Scoped to the clamp warning: other warnings (e.g. an invalid
    // HCL_BUILD_STRATEGY in the ambient environment) are legitimate.
    assert!(
        !stderr_of(&out).contains("warning: requested"),
        "spurious clamp warning: {}",
        stderr_of(&out)
    );

    // The implicit default (16) clamping on a small graph is expected
    // behaviour, not a user mistake — no warning without --landmarks.
    let out = run_ok(
        hcl()
            .arg("query")
            .arg(&graph)
            .arg("--queries")
            .arg(&queries),
    );
    assert!(
        !stderr_of(&out).contains("warning: requested"),
        "default landmark count must clamp silently: {}",
        stderr_of(&out)
    );
}

/// The `num_landmarks = 0` degenerate case end to end: queries fall back
/// to pure residual BFS (verified against the oracle), the container
/// round-trips its empty landmark/highway sections, and pooled serving
/// stays byte-identical to sequential serving.
#[test]
fn zero_landmarks_pipeline_round_trips_and_serves() {
    let scratch = Scratch::new("zero_k");
    // Two components, so both finite and `inf` answers flow through the
    // landmark-free path.
    let graph = scratch.file("g.edges", "0 1\n1 2\n2 3\n4 5\n5 6\n");
    let index = scratch.path("g.hcl");
    run_ok(
        hcl()
            .arg("build")
            .arg(&graph)
            .arg("--out")
            .arg(&index)
            .args(["--landmarks", "0"]),
    );

    let inspect = stdout_of(&run_ok(hcl().arg("inspect").arg(&index)));
    assert!(inspect.contains("landmarks:     0"), "inspect: {inspect}");
    assert!(inspect.contains("label entries: 0"), "inspect: {inspect}");

    // Every answer must match the BFS oracle — pure residual fallback.
    let queries = scratch.file("q.txt", "0 3\n0 0\n4 6\n0 6\n3 2\n");
    let out = run_ok(
        hcl()
            .arg("query")
            .arg("--index")
            .arg(&index)
            .arg("--verify")
            .arg("--queries")
            .arg(&queries),
    );
    assert_eq!(stdout_of(&out), "0 3 3\n0 0 0\n4 6 2\n0 6 inf\n3 2 1\n");

    // Pooled serving over the zero-landmark index must stay byte-identical
    // to the sequential path (several chunks' worth of input).
    let mut input = String::new();
    for i in 0..600u32 {
        input.push_str(&format!("{} {}\n", i % 7, (i * 3 + 1) % 7));
    }
    let mut outputs = Vec::new();
    for workers in ["1", "4"] {
        let mut child = hcl()
            .arg("serve")
            .arg("--index")
            .arg(&index)
            .args(["--workers", workers])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn serve");
        child
            .stdin
            .take()
            .expect("stdin piped")
            .write_all(input.as_bytes())
            .expect("write");
        let out = child.wait_with_output().expect("wait");
        assert!(out.status.success(), "workers={workers}");
        outputs.push(stdout_of(&out));
    }
    assert!(!outputs[0].is_empty());
    assert_eq!(
        outputs[0], outputs[1],
        "k=0 pooled serving must be byte-identical to sequential"
    );
}

/// `--strategy` end to end: recorded in the container, shown by inspect,
/// still answering exactly; rejected where it cannot apply.
#[test]
fn strategy_flag_is_recorded_and_validated() {
    let scratch = Scratch::new("strategy");
    let edges: String = (0..60u32)
        .map(|i| format!("{} {}\n", i, (i * 11 + 1) % 60))
        .collect();
    let graph = scratch.file("g.edges", &edges);

    for (flag, shown) in [
        ("degree-rank", "degree-rank"),
        ("approx-coverage:42", "approx-coverage:42"),
        ("seeded-random", "seeded-random:0"),
    ] {
        let index = scratch.path(&format!("{}.hcl", flag.replace(':', "_")));
        run_ok(
            hcl()
                .arg("build")
                .arg(&graph)
                .arg("--out")
                .arg(&index)
                .args(["--landmarks", "6", "--strategy", flag]),
        );
        let inspect = stdout_of(&run_ok(hcl().arg("inspect").arg(&index)));
        assert!(
            inspect.contains(&format!("strategy:      {shown}")),
            "inspect must show `{shown}`: {inspect}"
        );
        // Whatever the landmarks, answers stay exact.
        let out = run_ok(
            hcl()
                .arg("query")
                .arg("--index")
                .arg(&index)
                .args(["--random", "200", "--verify"]),
        );
        assert!(stderr_of(&out).contains("all 200 answers match"));
    }

    // Unknown strategy name: usage error, not a build.
    let out = hcl()
        .arg("build")
        .arg(&graph)
        .args(["--strategy", "betweenness"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(
        stderr_of(&out).contains("unknown landmark-selection strategy"),
        "stderr: {}",
        stderr_of(&out)
    );

    // Build-time flag with a stored index: rejected like --landmarks.
    let index = scratch.path("degree-rank.hcl");
    for sub in ["query", "serve"] {
        let out = hcl()
            .arg(sub)
            .arg("--index")
            .arg(&index)
            .args(["--strategy", "degree-rank"])
            .output()
            .expect("spawn");
        assert!(!out.status.success(), "{sub} must reject --strategy");
        assert!(
            stderr_of(&out).contains("only apply when building from an edge list"),
            "{sub} stderr: {}",
            stderr_of(&out)
        );
    }
}

/// `--threads` must not change what gets served: byte-compare the section
/// payloads of containers built sequentially and with 4 threads (their
/// headers differ only in the recorded build metadata and checksum).
#[test]
fn threads_flag_does_not_change_the_served_index() {
    let scratch = Scratch::new("threads");
    // A graph big enough that batching actually spans several batches.
    let edges: String = (0..400u32)
        .map(|i| format!("{} {}\n", i, (i * 7 + 1) % 400))
        .collect();
    let graph = scratch.file("g.edges", &edges);
    let seq = scratch.path("seq.hcl");
    let par = scratch.path("par.hcl");
    run_ok(hcl().arg("build").arg(&graph).arg("--out").arg(&seq).args([
        "--landmarks",
        "24",
        "--threads",
        "1",
    ]));
    run_ok(hcl().arg("build").arg(&graph).arg("--out").arg(&par).args([
        "--landmarks",
        "24",
        "--threads",
        "4",
    ]));
    let a = std::fs::read(&seq).expect("read seq");
    let b = std::fs::read(&par).expect("read par");
    assert_eq!(
        a[hcl_store::HEADER_LEN..],
        b[hcl_store::HEADER_LEN..],
        "served payload must be thread-count independent"
    );
    assert_ne!(a, b, "recorded build metadata should differ");
}
