//! End-to-end tests of dynamic updates: the `update` subcommand
//! (offline batch repair + journal write-back), `+u v` / `-u v` delta
//! lines interleaved with queries on stdin serving (sequential and
//! pooled, byte-identical across worker counts), and `POST /update` on
//! the socket server — including the PR acceptance property: concurrent
//! in-flight queries see zero dropped and zero wrong answers while
//! update batches churn generations underneath.

use hcl_core::{testkit, Graph};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

fn hcl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hcl"))
}

/// A per-test scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!("hcl_update_test_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&p).expect("create scratch dir");
        Self(p)
    }

    fn file(&self, name: &str, contents: &str) -> PathBuf {
        let p = self.0.join(name);
        std::fs::write(&p, contents).expect("write scratch file");
        p
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Writes `g` as a `u v` edge list the CLI can rebuild.
fn edge_list(g: &Graph) -> String {
    let mut out = String::new();
    for u in 0..g.num_vertices() as u32 {
        for &w in g.as_view().neighbors(u) {
            if w > u {
                out.push_str(&format!("{u} {w}\n"));
            }
        }
    }
    out
}

/// The first non-adjacent pair `u < v` whose distance exceeds 1, so
/// inserting the edge is effective *and* changes at least one answer.
fn non_edge(g: &Graph) -> (u32, u32) {
    let n = g.num_vertices() as u32;
    for u in 0..n {
        for v in (u + 1)..n {
            if !g.as_view().neighbors(u).contains(&v) {
                return (u, v);
            }
        }
    }
    panic!("graph is complete; no non-edge to insert");
}

/// Builds a `.hcl` container for an edge list via the real binary.
fn build_index(scratch: &Scratch, tag: &str, edges: &str, landmarks: usize) -> PathBuf {
    let graph = scratch.file(&format!("{tag}.edges"), edges);
    let index = scratch.path(&format!("{tag}.hcl"));
    let out = hcl()
        .arg("build")
        .arg(&graph)
        .arg("--out")
        .arg(&index)
        .args(["--landmarks", &landmarks.to_string()])
        .output()
        .expect("spawn hcl build");
    assert!(
        out.status.success(),
        "build failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    index
}

/// Runs `hcl serve --index <index> [extra…] < input`, asserting success,
/// and returns stdout. The byte-identity reference for every other path.
fn stdin_serve(index: &Path, extra: &[&str], input: &str) -> String {
    let mut child = hcl()
        .arg("serve")
        .arg("--index")
        .arg(index)
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn stdin serve");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(input.as_bytes())
        .expect("feed stdin serve");
    let out = child.wait_with_output().expect("stdin serve");
    assert!(
        out.status.success(),
        "serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

/// Runs `hcl update <index> --deltas <script> [extra…]`, returning
/// `(status, stderr)`.
fn run_update(index: &Path, script: &Path, extra: &[&str]) -> (ExitStatus, String) {
    let out = hcl()
        .arg("update")
        .arg(index)
        .arg("--deltas")
        .arg(script)
        .args(extra)
        .output()
        .expect("spawn hcl update");
    (out.status, String::from_utf8_lossy(&out.stderr).to_string())
}

/// `hcl inspect` stdout for a container.
fn inspect(index: &Path) -> String {
    let out = hcl().arg("inspect").arg(index).output().expect("inspect");
    assert!(
        out.status.success(),
        "inspect failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 inspect")
}

/// A running `hcl serve --listen` process bound to an ephemeral port.
struct Server {
    child: Child,
    addr: String,
    stdin: Option<ChildStdin>,
    stderr: Arc<Mutex<String>>,
}

impl Server {
    fn spawn(index: &Path, extra: &[&str]) -> Self {
        let mut child = hcl()
            .arg("serve")
            .arg("--index")
            .arg(index)
            .args(["--listen", "127.0.0.1:0"])
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn server");
        let stderr_pipe = child.stderr.take().unwrap();
        let collected = Arc::new(Mutex::new(String::new()));
        let (addr_tx, addr_rx) = mpsc::channel();
        let sink = Arc::clone(&collected);
        std::thread::spawn(move || {
            let mut reader = BufReader::new(stderr_pipe);
            let mut line = String::new();
            loop {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {
                        if let Some(rest) = line.strip_prefix("listening on ") {
                            let addr = rest.split_whitespace().next().unwrap().to_string();
                            let _ = addr_tx.send(addr);
                        }
                        sink.lock().unwrap().push_str(&line);
                    }
                }
            }
        });
        let addr = addr_rx
            .recv_timeout(Duration::from_secs(60))
            .expect("server never printed its listen address");
        let stdin = child.stdin.take();
        Self {
            child,
            addr,
            stdin,
            stderr: collected,
        }
    }

    /// Sends a full workload over TCP, half-closes, reads every answer.
    fn tcp_roundtrip(&self, input: &str) -> String {
        let mut stream = TcpStream::connect(&self.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        stream.write_all(input.as_bytes()).expect("send workload");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read answers");
        out
    }

    fn http_get(&self, target: &str) -> (u16, String) {
        http_exchange(
            &self.addr,
            &format!("GET {target} HTTP/1.1\r\nHost: test\r\n\r\n"),
        )
    }

    fn http_post(&self, target: &str, body: &str) -> (u16, String) {
        http_post_addr(&self.addr, target, body)
    }

    /// Reads one counter from `/metrics`.
    fn metric(&self, name: &str) -> u64 {
        let (status, body) = self.http_get("/metrics");
        assert_eq!(status, 200, "metrics endpoint failed");
        body.lines()
            .find_map(|l| l.strip_prefix(name)?.trim().parse().ok())
            .unwrap_or_else(|| panic!("metric {name} missing in:\n{body}"))
    }

    /// Triggers a graceful drain by closing the server's stdin, waits
    /// for exit, and returns `(status, collected stderr)`.
    fn drain(mut self) -> (ExitStatus, String) {
        drop(self.stdin.take());
        let status = wait_exit(&mut self.child, Duration::from_secs(60));
        std::thread::sleep(Duration::from_millis(100));
        let stderr = self.stderr.lock().unwrap().clone();
        (status, stderr)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One raw HTTP exchange: send `request` verbatim, return
/// `(status, body)`. Free-standing so hammer threads can use it too.
fn http_exchange(addr: &str, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to server");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.write_all(request.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn http_post_addr(addr: &str, target: &str, body: &str) -> (u16, String) {
    http_exchange(
        addr,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// `Child::wait` with a polling deadline.
fn wait_exit(child: &mut Child, deadline: Duration) -> ExitStatus {
    let t0 = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        assert!(
            t0.elapsed() < deadline,
            "server did not exit within {deadline:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A deterministic pure-query workload that includes the toggled pair.
fn query_workload(g: &Graph, pair: (u32, u32), count: usize, seed: u64) -> String {
    let n = g.num_vertices() as u64;
    let mut rng = testkit::SplitMix64::new(seed);
    let mut out = format!("{} {}\n", pair.0, pair.1);
    for _ in 0..count {
        out.push_str(&format!("{} {}\n", rng.next_below(n), rng.next_below(n)));
    }
    out
}

// ---------------------------------------------------------------------------
// hcl update: offline batch repair, journal write-back, compaction
// ---------------------------------------------------------------------------

#[test]
fn update_subcommand_round_trips_and_compacts() {
    let scratch = Scratch::new("offline");
    let graph = testkit::barabasi_albert(80, 3, 0x0DD5);
    let (a, b) = non_edge(&graph);
    let edges = edge_list(&graph);
    let live = build_index(&scratch, "live", &edges, 6);
    let edited = build_index(&scratch, "edited", &format!("{edges}{a} {b}\n"), 6);
    let input = query_workload(&graph, (a, b), 50, 0x5EED);
    let ref_without = stdin_serve(&live, &[], &input);
    let ref_with = stdin_serve(&edited, &[], &input);
    assert_ne!(ref_without, ref_with, "chosen edge changes no answer");

    // Insert: repaired answers must equal a fresh rebuild of the edited
    // graph, and the delta must land in the journal (replayed at open).
    let insert = scratch.file("insert.deltas", &format!("+{a} {b}\n"));
    let (status, stderr) = run_update(&live, &insert, &[]);
    assert!(status.success(), "update failed: {stderr}");
    assert!(
        stderr.contains("1 delta(s) applied (0 no-op)"),
        "summary: {stderr}"
    );
    assert!(
        inspect(&live).contains("1 pending delta(s)"),
        "journal not visible in inspect:\n{}",
        inspect(&live)
    );
    assert_eq!(stdin_serve(&live, &[], &input), ref_with);

    // Re-applying the same insert is a no-op: nothing new journalled.
    let (status, stderr) = run_update(&live, &insert, &[]);
    assert!(status.success(), "no-op update failed: {stderr}");
    assert!(
        stderr.contains("0 delta(s) applied (1 no-op)"),
        "summary: {stderr}"
    );
    assert!(inspect(&live).contains("1 pending delta(s)"));

    // Delete + --compact: journal folds into the base and empties, and
    // the answers return to the original graph's.
    let delete = scratch.file("delete.deltas", &format!("-{a} {b}\n"));
    let (status, stderr) = run_update(&live, &delete, &["--compact"]);
    assert!(status.success(), "compacting update failed: {stderr}");
    let report = inspect(&live);
    assert!(
        report.contains("0 pending delta(s)") && report.contains("1 compaction(s)"),
        "compaction not visible:\n{report}"
    );
    assert_eq!(stdin_serve(&live, &[], &input), ref_without);
}

#[test]
fn update_subcommand_rejects_bad_scripts_without_touching_the_file() {
    let scratch = Scratch::new("strict");
    let graph = testkit::barabasi_albert(40, 3, 0xBAD);
    let live = build_index(&scratch, "live", &edge_list(&graph), 4);
    let before = std::fs::read(&live).expect("read container");

    // A query-shaped line: the strict grammar rejects the whole script
    // before anything is applied.
    let (a, b) = non_edge(&graph);
    let unsigned = scratch.file("unsigned.deltas", &format!("+{a} {b}\n3 7\n"));
    let (status, stderr) = run_update(&live, &unsigned, &[]);
    assert!(!status.success(), "unsigned line must be fatal");
    assert!(
        stderr.contains("expected `+u v` (insert) or `-u v` (delete)"),
        "stderr: {stderr}"
    );
    assert_eq!(std::fs::read(&live).expect("re-read"), before);

    // An invalid delta (out-of-range endpoint) fails at apply time, and
    // the file is still untouched because nothing persists on error.
    let oob = scratch.file("oob.deltas", "+0 40000\n");
    let (status, stderr) = run_update(&live, &oob, &[]);
    assert!(!status.success(), "out-of-range delta must be fatal");
    assert!(stderr.contains("out of range"), "stderr: {stderr}");
    assert_eq!(std::fs::read(&live).expect("re-read"), before);
}

// ---------------------------------------------------------------------------
// stdin serving: delta lines between queries, 1 worker ≡ N workers
// ---------------------------------------------------------------------------

#[test]
fn stdin_delta_lines_swap_answers_mid_stream_across_worker_counts() {
    let scratch = Scratch::new("stdin_deltas");
    let graph = testkit::barabasi_albert(100, 3, 0x57D1);
    let (a, b) = non_edge(&graph);
    let edges = edge_list(&graph);
    let pristine = build_index(&scratch, "pristine", &edges, 6);
    let edited = build_index(&scratch, "edited", &format!("{edges}{a} {b}\n"), 6);

    let queries = query_workload(&graph, (a, b), 40, 0xF00D);
    let lines_per_segment = queries.lines().count();
    let ref_without = stdin_serve(&pristine, &[], &queries);
    let ref_with = stdin_serve(&edited, &[], &queries);
    assert_ne!(ref_without, ref_with, "chosen edge changes no answer");

    // queries → insert → same queries → delete → same queries: answers
    // must flip to the edited graph after `+a b` and back after `-a b`.
    let input = format!("{queries}+{a} {b}\n{queries}-{a} {b}\n{queries}");
    let expected = format!("{ref_without}{ref_with}{ref_without}");

    let mut outputs = Vec::new();
    for workers in ["1", "4"] {
        // Serving with --index persists applied deltas to the file, so
        // each worker count gets its own copy.
        let copy = scratch.path(&format!("live_w{workers}.hcl"));
        std::fs::copy(&pristine, &copy).expect("copy container");
        let got = stdin_serve(&copy, &["--workers", workers], &input);
        assert_eq!(
            got.lines().count(),
            3 * lines_per_segment,
            "answer count at {workers} workers"
        );
        assert_eq!(
            got, expected,
            "wrong answers around delta lines at {workers} workers"
        );
        // Both deltas were journalled to the file; replaying insert then
        // delete reproduces the original answers on reopen.
        assert!(
            inspect(&copy).contains("2 pending delta(s)"),
            "journal not persisted:\n{}",
            inspect(&copy)
        );
        assert_eq!(stdin_serve(&copy, &[], &queries), ref_without);
        outputs.push(got);
    }
    assert_eq!(
        outputs[0], outputs[1],
        "pooled stdout must be byte-identical to sequential"
    );
}

// ---------------------------------------------------------------------------
// POST /update: transactional batches, persistence, compaction
// ---------------------------------------------------------------------------

#[test]
fn http_update_applies_transactional_batches_and_persists() {
    let scratch = Scratch::new("http_update");
    let graph = testkit::barabasi_albert(80, 3, 0x4774);
    let (a, b) = non_edge(&graph);
    let live = build_index(&scratch, "live", &edge_list(&graph), 6);
    let server = Server::spawn(&live, &["--workers", "2"]);

    let (status, body) = server.http_get(&format!("/query?s={a}&t={b}"));
    assert_eq!(status, 200, "body: {body}");
    assert!(
        !body.contains("\"dist\":1"),
        "pair already adjacent: {body}"
    );

    // Happy path: one insert, new generation, answer changes.
    let (status, body) = server.http_post("/update", &format!("+{a} {b}\n"));
    assert_eq!(status, 200, "update body: {body}");
    assert!(
        body.contains("\"ok\":true")
            && body.contains("\"applied\":1")
            && body.contains("\"generation\":2"),
        "body: {body}"
    );
    let (status, body) = server.http_get(&format!("/query?s={a}&t={b}"));
    assert_eq!(status, 200);
    assert!(body.contains("\"dist\":1"), "insert not visible: {body}");
    assert_eq!(server.metric("hcl_updates_applied_total"), 1);
    assert_eq!(server.metric("hcl_index_generation"), 2);

    // A batch with any bad line is rejected as a unit before any state
    // changes: generation, answers, and the journal stay put.
    let (status, body) = server.http_post("/update", &format!("-{a} {b}\nnot a delta\n"));
    assert_eq!(status, 400, "body: {body}");
    assert!(body.contains("expected `+u v`"), "body: {body}");
    // A batch that fails at apply time (self-loop) rolls back even after
    // earlier lines applied in-engine.
    let (status, body) = server.http_post("/update", "+0 1\n+5 5\n");
    assert_eq!(status, 400, "body: {body}");
    assert!(body.contains("self-loop"), "body: {body}");
    assert_eq!(server.metric("hcl_index_generation"), 2);
    let (_, body) = server.http_get(&format!("/query?s={a}&t={b}"));
    assert!(
        body.contains("\"dist\":1"),
        "rollback lost the insert: {body}"
    );
    assert!(server.metric("hcl_update_failures_total") >= 2);

    // Wrong method and missing/oversized bodies get the right statuses.
    let (status, _) = server.http_get("/update");
    assert_eq!(status, 405);
    let (status, _) = http_exchange(&server.addr, "POST /update HTTP/1.1\r\nHost: test\r\n\r\n");
    assert_eq!(status, 411);
    let (status, _) = http_exchange(
        &server.addr,
        "POST /update HTTP/1.1\r\nHost: test\r\nContent-Length: 2000000\r\n\r\n",
    );
    assert_eq!(status, 413);

    // The applied insert was persisted to the --index file as a journal
    // entry: a fresh process replays it at open.
    let (status, stderr) = server.drain();
    assert!(status.success(), "stderr:\n{stderr}");
    assert!(
        inspect(&live).contains("1 pending delta(s)"),
        "journal not persisted:\n{}",
        inspect(&live)
    );
    let answers = stdin_serve(&live, &[], &format!("{a} {b}\n"));
    assert_eq!(answers, format!("{a} {b} 1\n"));
}

#[test]
fn http_update_compact_after_folds_journal_while_serving() {
    let scratch = Scratch::new("http_compact");
    let graph = testkit::barabasi_albert(60, 3, 0xC0DE);
    let (a, b) = non_edge(&graph);
    let live = build_index(&scratch, "live", &edge_list(&graph), 4);
    let server = Server::spawn(&live, &["--compact-after", "2"]);

    let (status, body) = server.http_post("/update", &format!("+{a} {b}\n"));
    assert_eq!(status, 200, "body: {body}");
    assert!(body.contains("\"pending\":1"), "body: {body}");
    assert_eq!(server.metric("hcl_compactions_total"), 0);

    // The second applied delta reaches the threshold: the journal folds
    // into the base sections before the write-back.
    let (status, body) = server.http_post("/update", &format!("-{a} {b}\n"));
    assert_eq!(status, 200, "body: {body}");
    assert!(body.contains("\"pending\":0"), "body: {body}");
    assert_eq!(server.metric("hcl_compactions_total"), 1);

    let (status, stderr) = server.drain();
    assert!(status.success(), "stderr:\n{stderr}");
    let report = inspect(&live);
    assert!(
        report.contains("0 pending delta(s)") && report.contains("1 compaction(s)"),
        "compaction not visible:\n{report}"
    );
}

// ---------------------------------------------------------------------------
// Acceptance: generation swaps drop no in-flight answer
// ---------------------------------------------------------------------------

#[test]
fn concurrent_queries_survive_update_churn() {
    let scratch = Scratch::new("update_hammer");
    let graph = testkit::barabasi_albert(120, 3, 0xCAFE);
    let n = graph.num_vertices();
    let (a, b) = non_edge(&graph);
    let edges = edge_list(&graph);
    let pristine = build_index(&scratch, "pristine", &edges, 6);
    let edited = build_index(&scratch, "edited", &format!("{edges}{a} {b}\n"), 6);
    let live = scratch.path("live.hcl");
    std::fs::copy(&pristine, &live).expect("seed live file");

    // Reference answers for both graph states: while the toggled edge
    // churns, every in-flight answer must match one of the two.
    let mut rng = testkit::SplitMix64::new(0x7146);
    let queries: Vec<(u64, u64)> = std::iter::once((a as u64, b as u64))
        .chain((0..60).map(|_| (rng.next_below(n as u64), rng.next_below(n as u64))))
        .collect();
    let input: String = queries.iter().map(|(u, v)| format!("{u} {v}\n")).collect();
    let split = |s: String| -> Vec<String> { s.lines().map(|l| l.to_string()).collect() };
    let without = split(stdin_serve(&pristine, &[], &input));
    let with = split(stdin_serve(&edited, &[], &input));
    assert_eq!(without.len(), queries.len());
    assert_ne!(without, with, "chosen edge changes no answer");

    let server = Server::spawn(&live, &["--workers", "4"]);
    let addr = server.addr.clone();
    let stop = Arc::new(AtomicBool::new(false));

    // Hammer: three clients loop the workload request-response over
    // long-lived connections. No connection may error, and every answer
    // must be exact for *some* live graph state — never torn, stale
    // beyond one generation, or dropped.
    let clients: Vec<_> = (0..3)
        .map(|c| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            let queries = queries.clone();
            let without = without.clone();
            let with = with.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(&addr).expect("hammer connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                let mut served = 0u64;
                'outer: loop {
                    for (i, (u, v)) in queries.iter().enumerate() {
                        if stop.load(Ordering::Relaxed) {
                            break 'outer;
                        }
                        writer
                            .write_all(format!("{u} {v}\n").as_bytes())
                            .unwrap_or_else(|e| panic!("client {c}: write: {e}"));
                        let mut answer = String::new();
                        reader
                            .read_line(&mut answer)
                            .unwrap_or_else(|e| panic!("client {c}: read: {e}"));
                        let got = answer.trim_end();
                        assert!(
                            got == without[i] || got == with[i],
                            "client {c}: answer {got:?} matches neither graph state \
                             ({:?} / {:?})",
                            without[i],
                            with[i]
                        );
                        served += 1;
                    }
                }
                served
            })
        })
        .collect();

    // Churn: toggle the edge through 12 update batches while the hammer
    // runs. Every batch must succeed and swap a generation.
    for i in 0..12u64 {
        let body = if i % 2 == 0 {
            format!("+{a} {b}\n")
        } else {
            format!("-{a} {b}\n")
        };
        let (status, response) = http_post_addr(&addr, "/update", &body);
        assert_eq!(status, 200, "update {i} failed: {response}");
        assert!(response.contains("\"applied\":1"), "update {i}: {response}");
        std::thread::sleep(Duration::from_millis(30));
    }
    stop.store(true, Ordering::Relaxed);
    let total: u64 = clients
        .into_iter()
        .map(|c| c.join().expect("hammer client panicked"))
        .sum();
    assert!(total > 0, "hammer never completed a request");
    assert_eq!(server.metric("hcl_updates_applied_total"), 12);
    assert_eq!(server.metric("hcl_index_generation"), 13);
    assert_eq!(server.metric("hcl_update_failures_total"), 0);
    assert_eq!(server.metric("hcl_disconnects_total"), 0);
    assert_eq!(server.metric("hcl_write_timeouts_total"), 0);

    // After an even number of toggles the edge is gone: settled answers
    // must be exactly the original graph's.
    assert_eq!(
        server.tcp_roundtrip(&input),
        without.join("\n") + "\n",
        "settled answers diverge from the original graph"
    );

    let (status, stderr) = server.drain();
    assert!(status.success(), "stderr:\n{stderr}");
}
