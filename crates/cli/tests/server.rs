//! Socket-level tests of `hcl serve --listen`: integration (TCP answers
//! byte-identical to stdin serving across graph families and worker
//! counts, HTTP endpoints), fault injection (mid-request disconnects,
//! stalled readers tripping the write timeout, oversized request lines,
//! backpressure rejection beyond `--max-inflight`), graceful drain
//! (stdin EOF and SIGTERM both exit 0 with the latency summary), and a
//! concurrent-reload property test hammering queries while the index
//! file is atomically swapped between two saved generations. The crash
//! -safety PR adds: reload retry/backoff until a bad source is repaired,
//! and the background scrubber flipping `/healthz` to 503 `degraded` on
//! injected corruption (old generation still answering byte-identically)
//! and back to `ok` after repair or a good reload.

use hcl_core::{testkit, Graph};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

fn hcl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hcl"))
}

/// A per-test scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!("hcl_server_test_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&p).expect("create scratch dir");
        Self(p)
    }

    fn file(&self, name: &str, contents: &str) -> PathBuf {
        let p = self.0.join(name);
        std::fs::write(&p, contents).expect("write scratch file");
        p
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Writes `g` as a `u v` edge list the CLI can rebuild (same helper as
/// the worker-pool property tests).
fn edge_list(g: &Graph) -> String {
    let mut out = String::new();
    for u in 0..g.num_vertices() as u32 {
        for &w in g.as_view().neighbors(u) {
            if w > u {
                out.push_str(&format!("{u} {w}\n"));
            }
        }
    }
    out
}

/// A deterministic workload: mostly valid pairs salted with out-of-range
/// ids, comments, blanks, and (optionally) malformed lines — the inputs
/// the serve contract says to skip with a diagnostic, identically on
/// stdin and TCP.
fn workload(n: usize, seed: u64, malformed: bool) -> String {
    let mut rng = testkit::SplitMix64::new(seed);
    let mut out = String::from("# server property workload\n");
    let space = (n.max(1) + 3) as u64;
    for i in 0..600 {
        match i % 83 {
            13 => out.push('\n'),
            29 => out.push_str("% comment line\n"),
            61 if malformed => out.push_str("not a pair\n"),
            _ => {
                let u = rng.next_below(space);
                let v = rng.next_below(space);
                out.push_str(&format!("{u} {v}\n"));
            }
        }
    }
    out
}

/// Builds a `.hcl` container for an edge list via the real binary.
fn build_index(scratch: &Scratch, tag: &str, edges: &str, landmarks: usize) -> PathBuf {
    let graph = scratch.file(&format!("{tag}.edges"), edges);
    let index = scratch.path(&format!("{tag}.hcl"));
    let out = hcl()
        .arg("build")
        .arg(&graph)
        .arg("--out")
        .arg(&index)
        .args(["--landmarks", &landmarks.to_string()])
        .output()
        .expect("spawn hcl build");
    assert!(
        out.status.success(),
        "build failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    index
}

/// The stdin `serve` path's stdout for a workload — the byte-identity
/// reference for the TCP path.
fn stdin_serve_stdout(index: &Path, input: &str) -> String {
    let mut child = hcl()
        .arg("serve")
        .arg("--index")
        .arg(index)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn stdin serve");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(input.as_bytes())
        .expect("feed stdin serve");
    let out = child.wait_with_output().expect("stdin serve");
    assert!(out.status.success());
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

/// A running `hcl serve --listen` process bound to an ephemeral port,
/// with its stderr collected in the background.
struct Server {
    child: Child,
    addr: String,
    stdin: Option<ChildStdin>,
    stderr: Arc<Mutex<String>>,
}

impl Server {
    fn spawn(index: &Path, extra: &[&str]) -> Self {
        let mut child = hcl()
            .arg("serve")
            .arg("--index")
            .arg(index)
            .args(["--listen", "127.0.0.1:0"])
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn server");
        let stderr_pipe = child.stderr.take().unwrap();
        let collected = Arc::new(Mutex::new(String::new()));
        let (addr_tx, addr_rx) = mpsc::channel();
        let sink = Arc::clone(&collected);
        std::thread::spawn(move || {
            let mut reader = BufReader::new(stderr_pipe);
            let mut line = String::new();
            loop {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {
                        if let Some(rest) = line.strip_prefix("listening on ") {
                            let addr = rest.split_whitespace().next().unwrap().to_string();
                            let _ = addr_tx.send(addr);
                        }
                        sink.lock().unwrap().push_str(&line);
                    }
                }
            }
        });
        let addr = addr_rx
            .recv_timeout(Duration::from_secs(60))
            .expect("server never printed its listen address");
        let stdin = child.stdin.take();
        Self {
            child,
            addr,
            stdin,
            stderr: collected,
        }
    }

    fn connect(&self) -> TcpStream {
        let stream = TcpStream::connect(&self.addr).expect("connect to server");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        stream
    }

    /// Sends a full workload, half-closes, and reads every answer.
    fn tcp_roundtrip(&self, input: &str) -> String {
        let mut stream = self.connect();
        stream.write_all(input.as_bytes()).expect("send workload");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read answers");
        out
    }

    /// One `GET` exchange: `(status, body)`.
    fn http_get(&self, target: &str) -> (u16, String) {
        http_get_addr(&self.addr, target)
    }

    /// Reads one counter from `/metrics`.
    fn metric(&self, name: &str) -> u64 {
        let (status, body) = self.http_get("/metrics");
        assert_eq!(status, 200, "metrics endpoint failed");
        body.lines()
            .find_map(|l| l.strip_prefix(name)?.trim().parse().ok())
            .unwrap_or_else(|| panic!("metric {name} missing in:\n{body}"))
    }

    /// Polls `/metrics` until `name >= target` or the deadline passes.
    fn wait_metric_at_least(&self, name: &str, target: u64, deadline: Duration) -> u64 {
        let t0 = Instant::now();
        loop {
            let value = self.metric(name);
            if value >= target {
                return value;
            }
            assert!(
                t0.elapsed() < deadline,
                "metric {name} stuck at {value} < {target} after {deadline:?}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Triggers a graceful drain by closing the server's stdin, waits for
    /// exit, and returns `(status, collected stderr)`.
    fn drain(mut self) -> (ExitStatus, String) {
        drop(self.stdin.take());
        let status = wait_exit(&mut self.child, Duration::from_secs(60));
        // Give the stderr collector a beat to drain the pipe after exit.
        std::thread::sleep(Duration::from_millis(100));
        let stderr = self.stderr.lock().unwrap().clone();
        (status, stderr)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One `GET` exchange against an address: `(status, body)`. Free-standing
/// so background threads can issue requests (e.g. a `/reload` that blocks
/// in the retry loop) without borrowing the `Server`.
fn http_get_addr(addr: &str, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to server");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    write!(stream, "GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// `Child::wait` with a polling deadline, so a wedged server fails the
/// test instead of hanging the harness.
fn wait_exit(child: &mut Child, deadline: Duration) -> ExitStatus {
    let t0 = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        assert!(
            t0.elapsed() < deadline,
            "server did not exit within {deadline:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

// ---------------------------------------------------------------------------
// Integration: TCP ≡ stdin, across families × worker counts
// ---------------------------------------------------------------------------

#[test]
fn tcp_answers_match_stdin_serve_across_families_and_workers() {
    let scratch = Scratch::new("identity");
    let families: Vec<(&str, Graph)> = vec![
        ("path", testkit::path(30)),
        ("cycle", testkit::cycle(31)),
        ("star", testkit::star(24)),
        ("er", testkit::erdos_renyi(60, 0.08, 0xFEED)),
        ("ba", testkit::barabasi_albert(80, 3, 0xBEEF)),
    ];
    for (name, graph) in &families {
        let index = build_index(&scratch, name, &edge_list(graph), 4);
        let input = workload(graph.num_vertices(), 0xD15C0 ^ name.len() as u64, true);
        let expected = stdin_serve_stdout(&index, &input);
        assert!(!expected.is_empty(), "{name}: empty reference output");
        for workers in [1usize, 4] {
            let server = Server::spawn(&index, &["--workers", &workers.to_string()]);
            let got = server.tcp_roundtrip(&input);
            assert_eq!(
                got, expected,
                "{name}: TCP answers diverge from stdin serve at {workers} workers"
            );
            let (status, stderr) = server.drain();
            assert!(status.success(), "{name}: drain exit != 0\n{stderr}");
        }
    }
}

#[test]
fn tcp_connection_can_pipeline_interactively() {
    // Request-response (not bulk half-close): each line answered before
    // the next is sent, over one connection.
    let scratch = Scratch::new("interactive");
    let graph = testkit::grid(5, 6);
    let index = build_index(&scratch, "grid", &edge_list(&graph), 4);
    let expected = stdin_serve_stdout(&index, "0 29\n3 4\n10 22\n");
    let server = Server::spawn(&index, &[]);

    let stream = server.connect();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut got = String::new();
    for line in ["0 29\n", "3 4\n", "10 22\n"] {
        writer.write_all(line.as_bytes()).unwrap();
        let mut answer = String::new();
        reader.read_line(&mut answer).unwrap();
        got.push_str(&answer);
    }
    assert_eq!(got, expected);
    drop((reader, writer));
    let (status, _) = server.drain();
    assert!(status.success());
}

// ---------------------------------------------------------------------------
// HTTP endpoints
// ---------------------------------------------------------------------------

#[test]
fn http_endpoints_answer_health_query_metrics() {
    let scratch = Scratch::new("http");
    let graph = testkit::path(10);
    let index = build_index(&scratch, "path", &edge_list(&graph), 2);
    let server = Server::spawn(&index, &[]);

    let (status, body) = server.http_get("/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    // A path graph's distances are checkable by eye: d(0, 9) = 9.
    let (status, body) = server.http_get("/query?s=0&t=9");
    assert_eq!(status, 200, "body: {body}");
    assert!(
        body.contains("\"s\":0") && body.contains("\"t\":9") && body.contains("\"dist\":9"),
        "unexpected query body: {body}"
    );
    assert!(body.contains("\"generation\":1"), "body: {body}");

    let (status, body) = server.http_get("/query?s=0&t=99");
    assert_eq!(status, 400);
    assert!(body.contains("out of range"), "body: {body}");

    let (status, body) = server.http_get("/query?s=zero&t=1");
    assert_eq!(status, 400);
    assert!(body.contains("expected /query"), "body: {body}");

    let (status, _) = server.http_get("/nope");
    assert_eq!(status, 404);

    assert_eq!(server.metric("hcl_answers_total"), 1);
    assert_eq!(server.metric("hcl_out_of_range_total"), 1);
    assert_eq!(server.metric("hcl_malformed_total"), 1);
    assert_eq!(server.metric("hcl_index_generation"), 1);
    assert!(server.metric("hcl_http_requests_total") >= 5);

    let (status, _) = server.drain();
    assert!(status.success());
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

#[test]
fn disconnect_mid_request_is_counted_and_survived() {
    let scratch = Scratch::new("disconnect");
    let graph = testkit::cycle(12);
    let index = build_index(&scratch, "cycle", &edge_list(&graph), 2);
    let server = Server::spawn(&index, &[]);

    // Half a request, then vanish.
    {
        let mut stream = server.connect();
        stream.write_all(b"0 ").unwrap();
    }
    server.wait_metric_at_least("hcl_disconnects_total", 1, Duration::from_secs(20));

    // The server is still fully functional afterwards.
    assert_eq!(server.tcp_roundtrip("0 6\n"), "0 6 6\n");
    let (status, _) = server.drain();
    assert!(status.success());
}

#[test]
fn oversized_request_line_is_rejected_and_survived() {
    let scratch = Scratch::new("oversized");
    let graph = testkit::star(8);
    let index = build_index(&scratch, "star", &edge_list(&graph), 2);
    let server = Server::spawn(&index, &[]);

    let mut stream = server.connect();
    let flood = vec![b'7'; 100 * 1024];
    // The server may rightly close before reading the whole flood; a
    // write error here *is* the rejection taking effect.
    let _ = stream.write_all(&flood);
    let _ = stream.write_all(b"\n");
    let mut response = String::new();
    let _ = (&mut stream).take(4096).read_to_string(&mut response);
    if !response.is_empty() {
        assert!(
            response.contains("error: request line exceeds"),
            "unexpected response: {response}"
        );
    }
    drop(stream);
    server.wait_metric_at_least("hcl_oversized_total", 1, Duration::from_secs(20));

    // Fresh connections still get answers.
    assert_eq!(server.tcp_roundtrip("0 1\n"), "0 1 1\n");
    let (status, _) = server.drain();
    assert!(status.success());
}

#[test]
fn stalled_reader_trips_write_timeout_and_is_counted() {
    let scratch = Scratch::new("stall");
    let graph = testkit::path(6);
    let index = build_index(&scratch, "path", &edge_list(&graph), 2);
    // A short write timeout so the stall is detected quickly.
    let server = Server::spawn(&index, &["--write-timeout-ms", "250"]);

    // Pipeline requests forever and never read an answer: the server's
    // socket send buffer (plus our receive buffer) fills, its flush
    // blocks past the timeout, and the connection must be dropped with
    // the event counted — without taking the server down.
    let stream = server.connect();
    let stop = Arc::new(AtomicBool::new(false));
    let writer_stop = Arc::clone(&stop);
    let writer = std::thread::spawn(move || {
        let mut stream = stream;
        let request = b"0 1\n".repeat(1024);
        while !writer_stop.load(Ordering::Relaxed) {
            if stream.write_all(&request).is_err() {
                break; // server dropped us: the expected outcome
            }
        }
    });

    server.wait_metric_at_least("hcl_write_timeouts_total", 1, Duration::from_secs(30));
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();

    assert_eq!(server.tcp_roundtrip("0 5\n"), "0 5 5\n");
    let (status, stderr) = server.drain();
    assert!(status.success(), "stderr: {stderr}");
    assert!(
        stderr.contains("slow reader"),
        "missing stall diagnostic in:\n{stderr}"
    );
}

#[test]
fn connections_beyond_max_inflight_are_rejected_busy() {
    let scratch = Scratch::new("busy");
    let graph = testkit::path(6);
    let index = build_index(&scratch, "path", &edge_list(&graph), 2);
    // One handler, one queue slot: the third concurrent connection must
    // be turned away immediately.
    let server = Server::spawn(&index, &["--workers", "1", "--max-inflight", "1"]);

    // A occupies the only handler (answered request proves it's being
    // served, and staying connected keeps the handler occupied).
    let stream_a = server.connect();
    let mut reader_a = BufReader::new(stream_a.try_clone().unwrap());
    let mut writer_a = stream_a;
    writer_a.write_all(b"0 1\n").unwrap();
    let mut answer = String::new();
    reader_a.read_line(&mut answer).unwrap();
    assert_eq!(answer, "0 1 1\n");

    // B fills the single queue slot.
    let _stream_b = server.connect();
    // Give the accept loop a beat to enqueue B before C arrives.
    std::thread::sleep(Duration::from_millis(300));

    // C is over the admission bound: busy line, then close.
    let mut stream_c = server.connect();
    let mut rejection = String::new();
    stream_c.read_to_string(&mut rejection).expect("read busy");
    assert!(
        rejection.contains("server busy"),
        "expected busy rejection, got: {rejection:?}"
    );

    // Releasing A lets B get served.
    drop((reader_a, writer_a));
    let mut stream_b = _stream_b;
    stream_b.write_all(b"0 2\n").unwrap();
    stream_b.shutdown(std::net::Shutdown::Write).unwrap();
    let mut answers = String::new();
    stream_b.read_to_string(&mut answers).expect("B served");
    assert_eq!(answers, "0 2 2\n");

    // Only now is a handler free to serve the metrics probe itself —
    // while saturated, even /metrics gets the busy line, by design.
    assert_eq!(server.metric("hcl_busy_rejected_total"), 1);

    let (status, _) = server.drain();
    assert!(status.success());
}

// ---------------------------------------------------------------------------
// Graceful drain
// ---------------------------------------------------------------------------

#[test]
fn stdin_eof_drains_gracefully_with_latency_summary() {
    let scratch = Scratch::new("drain");
    let graph = testkit::cycle(20);
    let index = build_index(&scratch, "cycle", &edge_list(&graph), 4);
    let server = Server::spawn(&index, &[]);
    assert_eq!(server.tcp_roundtrip("0 10\n1 3\n"), "0 10 10\n1 3 2\n");

    let (status, stderr) = server.drain();
    assert!(status.success(), "drain exit: {status:?}\n{stderr}");
    assert!(
        stderr.contains("served 2 queries over"),
        "missing serve summary in:\n{stderr}"
    );
    // The same pinned latency-summary format the stdin path prints.
    assert!(
        stderr.contains("latency: p50="),
        "missing latency summary in:\n{stderr}"
    );
    for field in [" p90=", " p99=", " mean=", " over 2 queries"] {
        assert!(stderr.contains(field), "missing {field} in:\n{stderr}");
    }
}

#[cfg(unix)]
#[test]
fn sigterm_drains_gracefully_and_exits_zero() {
    let scratch = Scratch::new("sigterm");
    let graph = testkit::path(8);
    let index = build_index(&scratch, "path", &edge_list(&graph), 2);
    let mut server = Server::spawn(&index, &[]);
    assert_eq!(server.tcp_roundtrip("0 7\n"), "0 7 7\n");

    let kill = Command::new("kill")
        .args(["-TERM", &server.child.id().to_string()])
        .status()
        .expect("spawn kill");
    assert!(kill.success());
    let status = wait_exit(&mut server.child, Duration::from_secs(60));
    assert!(status.success(), "SIGTERM drain exit: {status:?}");
    std::thread::sleep(Duration::from_millis(100));
    let stderr = server.stderr.lock().unwrap().clone();
    assert!(
        stderr.contains("termination signal received; draining"),
        "missing drain log in:\n{stderr}"
    );
    assert!(
        stderr.contains("served 1 queries over"),
        "stderr:\n{stderr}"
    );
}

// ---------------------------------------------------------------------------
// Zero-downtime reload
// ---------------------------------------------------------------------------

/// Atomically replaces `live` with a copy of `src` (write sibling, then
/// rename — the same discipline `save_with` uses), so the server's
/// re-open never sees a torn file.
fn swap_in(src: &Path, live: &Path) {
    let tmp = live.with_extension("swap.tmp");
    std::fs::copy(src, &tmp).expect("copy generation");
    std::fs::rename(&tmp, live).expect("rename generation into place");
}

#[test]
fn http_reload_swaps_generations_and_failure_keeps_serving() {
    let scratch = Scratch::new("reload");
    let graph = testkit::barabasi_albert(60, 3, 7);
    let edges = edge_list(&graph);
    let gen_a = build_index(&scratch, "gen_a", &edges, 4);
    let gen_b = build_index(&scratch, "gen_b", &edges, 8);
    let live = scratch.path("live.hcl");
    std::fs::copy(&gen_a, &live).expect("seed live file");

    let server = Server::spawn(&live, &[]);
    assert_eq!(server.metric("hcl_index_generation"), 1);

    swap_in(&gen_b, &live);
    let (status, body) = server.http_get("/reload");
    assert_eq!(status, 200, "reload body: {body}");
    assert!(body.contains("\"generation\":2"), "body: {body}");
    assert_eq!(server.metric("hcl_index_generation"), 2);

    // Publish a corrupt file (atomically, via rename, so the current
    // generation's mmap keeps its old inode): the reload must fail,
    // count the failure, and keep serving generation 2.
    let garbage = scratch.file("garbage.bin", "HCLSTOR garbage");
    std::fs::rename(&garbage, &live).expect("publish corrupt file");
    let (status, body) = server.http_get("/reload");
    assert_eq!(status, 500, "body: {body}");
    assert_eq!(server.metric("hcl_reload_failures_total"), 1);
    assert_eq!(server.metric("hcl_index_generation"), 2);
    assert_eq!(
        server.tcp_roundtrip("0 1\n"),
        stdin_serve_stdout(&gen_b, "0 1\n")
    );

    let (exit, _) = server.drain();
    assert!(exit.success());
}

#[test]
fn concurrent_queries_survive_repeated_reloads() {
    let scratch = Scratch::new("reload_hammer");
    let graph = testkit::barabasi_albert(120, 3, 0xABAD);
    let n = graph.num_vertices();
    let edges = edge_list(&graph);
    // Two generations with different landmark counts: both answer every
    // query exactly, so correctness is generation-independent — any
    // response must simply match the reference answers.
    let gen_a = build_index(&scratch, "gen_a", &edges, 4);
    let gen_b = build_index(&scratch, "gen_b", &edges, 8);
    let live = scratch.path("live.hcl");
    std::fs::copy(&gen_a, &live).expect("seed live file");

    // Reference answers from the stdin path.
    let mut rng = testkit::SplitMix64::new(0x51AB);
    let queries: Vec<(u64, u64)> = (0..60)
        .map(|_| (rng.next_below(n as u64), rng.next_below(n as u64)))
        .collect();
    let input: String = queries.iter().map(|(u, v)| format!("{u} {v}\n")).collect();
    let expected: Vec<String> = stdin_serve_stdout(&gen_a, &input)
        .lines()
        .map(|l| l.to_string())
        .collect();
    assert_eq!(expected.len(), queries.len());

    let server = Server::spawn(&live, &["--workers", "4"]);
    let addr = server.addr.clone();
    let stop = Arc::new(AtomicBool::new(false));

    // Hammer: three clients loop the workload request-response over
    // long-lived connections; every answer must be correct and no
    // connection may error while reloads churn underneath.
    let clients: Vec<_> = (0..3)
        .map(|c| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            let queries = queries.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(&addr).expect("hammer connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                let mut served = 0u64;
                'outer: loop {
                    for ((u, v), want) in queries.iter().zip(&expected) {
                        if stop.load(Ordering::Relaxed) {
                            break 'outer;
                        }
                        writer
                            .write_all(format!("{u} {v}\n").as_bytes())
                            .unwrap_or_else(|e| panic!("client {c}: write: {e}"));
                        let mut answer = String::new();
                        reader
                            .read_line(&mut answer)
                            .unwrap_or_else(|e| panic!("client {c}: read: {e}"));
                        assert_eq!(
                            answer.trim_end(),
                            want.as_str(),
                            "client {c}: wrong answer during reload churn"
                        );
                        served += 1;
                    }
                }
                served
            })
        })
        .collect();

    // Churn: 15 atomic file swaps + HTTP reloads while the hammer runs.
    let mut generation = 1;
    for i in 0..15 {
        swap_in(if i % 2 == 0 { &gen_b } else { &gen_a }, &live);
        let (status, body) = server.http_get("/reload");
        assert_eq!(status, 200, "reload {i} failed: {body}");
        generation += 1;
        std::thread::sleep(Duration::from_millis(30));
    }
    stop.store(true, Ordering::Relaxed);
    let total: u64 = clients
        .into_iter()
        .map(|c| c.join().expect("hammer client panicked"))
        .sum();
    assert!(total > 0, "hammer never completed a request");
    assert_eq!(server.metric("hcl_index_generation"), generation);
    assert_eq!(server.metric("hcl_reloads_total"), 15);
    assert_eq!(server.metric("hcl_disconnects_total"), 0);
    assert_eq!(server.metric("hcl_write_timeouts_total"), 0);

    let (status, stderr) = server.drain();
    assert!(status.success(), "stderr:\n{stderr}");
}

// ---------------------------------------------------------------------------
// Crash safety: reload retry/backoff and the integrity scrubber
// ---------------------------------------------------------------------------

#[test]
fn reload_retries_with_backoff_until_source_repairs() {
    let scratch = Scratch::new("reload_retry");
    let graph = testkit::barabasi_albert(60, 3, 21);
    let edges = edge_list(&graph);
    let gen_a = build_index(&scratch, "gen_a", &edges, 4);
    let gen_b = build_index(&scratch, "gen_b", &edges, 8);
    let live = scratch.path("live.hcl");
    std::fs::copy(&gen_a, &live).expect("seed live file");

    // Generous retry budget, short base backoff; explicit --workers so
    // /metrics stays reachable while one worker blocks in the retry loop.
    let server = Server::spawn(
        &live,
        &[
            "--workers",
            "4",
            "--reload-retries",
            "40",
            "--reload-backoff-ms",
            "50",
        ],
    );
    assert_eq!(server.metric("hcl_index_generation"), 1);

    // Publish garbage (atomically, so the live mmap keeps its inode),
    // then trigger a reload from a background thread: it must sit in the
    // retry loop rather than fail.
    let garbage = scratch.file("garbage.bin", "HCLSTOR garbage");
    std::fs::rename(&garbage, &live).expect("publish corrupt file");
    let addr = server.addr.clone();
    let reload = std::thread::spawn(move || http_get_addr(&addr, "/reload"));

    // At least two failed attempts prove the backoff loop is really
    // retrying (a single failure would be the old one-shot behaviour).
    server.wait_metric_at_least("hcl_reload_failures_total", 2, Duration::from_secs(30));
    assert_eq!(server.metric("hcl_reloads_total"), 0);
    assert_eq!(server.metric("hcl_index_generation"), 1);
    // The old generation answers normally while the reload retries.
    assert_eq!(
        server.tcp_roundtrip("0 1\n"),
        stdin_serve_stdout(&gen_a, "0 1\n")
    );

    // Repair the source: the in-flight reload's next attempt must win.
    swap_in(&gen_b, &live);
    let (status, body) = reload.join().expect("reload thread panicked");
    assert_eq!(status, 200, "reload after repair failed: {body}");
    assert!(body.contains("\"generation\":2"), "body: {body}");
    assert_eq!(server.metric("hcl_index_generation"), 2);
    assert_eq!(server.metric("hcl_reloads_total"), 1);

    let (exit, stderr) = server.drain();
    assert!(exit.success(), "stderr:\n{stderr}");
    assert!(
        stderr.contains("; retrying"),
        "missing retry diagnostic in:\n{stderr}"
    );
}

#[test]
fn scrubber_degrades_healthz_and_recovers_after_repair() {
    let scratch = Scratch::new("scrub");
    let graph = testkit::barabasi_albert(60, 3, 33);
    let edges = edge_list(&graph);
    let gen_a = build_index(&scratch, "gen_a", &edges, 4);
    let live = scratch.path("live.hcl");
    std::fs::copy(&gen_a, &live).expect("seed live file");

    let input = "0 1\n3 9\n";
    let expected = stdin_serve_stdout(&gen_a, input);

    let server = Server::spawn(&live, &["--scrub-interval-s", "1"]);
    let (status, body) = server.http_get("/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    // Quarantine property, step 1: publish a corrupt source atomically.
    // The mmap pins the old inode, so the live generation is untouched;
    // only the scrubber's re-read of the path can notice.
    let garbage = scratch.file("garbage.bin", "HCLSTOR garbage");
    std::fs::rename(&garbage, &live).expect("publish corrupt file");
    server.wait_metric_at_least("hcl_scrub_failures_total", 1, Duration::from_secs(30));

    let (status, body) = server.http_get("/healthz");
    assert_eq!(
        (status, body.as_str()),
        (503, "degraded\n"),
        "corruption must degrade /healthz"
    );
    assert_eq!(server.metric("hcl_degraded"), 1);
    // ...while the old generation keeps answering byte-identically.
    assert_eq!(server.tcp_roundtrip(input), expected);

    // Step 2: repair the source; a clean pass must restore health.
    let passes_before = server.metric("hcl_scrub_passes_total");
    swap_in(&gen_a, &live);
    server.wait_metric_at_least(
        "hcl_scrub_passes_total",
        passes_before + 1,
        Duration::from_secs(30),
    );
    let (status, body) = server.http_get("/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    assert_eq!(server.metric("hcl_degraded"), 0);

    let (exit, stderr) = server.drain();
    assert!(exit.success(), "stderr:\n{stderr}");
    assert!(
        stderr.contains("scrub detected corruption"),
        "missing degradation log in:\n{stderr}"
    );
    assert!(
        stderr.contains("/healthz is ok again"),
        "missing recovery log in:\n{stderr}"
    );
}

#[test]
fn good_reload_clears_scrubber_degradation() {
    let scratch = Scratch::new("scrub_reload");
    let graph = testkit::barabasi_albert(60, 3, 45);
    let edges = edge_list(&graph);
    let gen_a = build_index(&scratch, "gen_a", &edges, 4);
    let gen_b = build_index(&scratch, "gen_b", &edges, 8);
    let live = scratch.path("live.hcl");
    std::fs::copy(&gen_a, &live).expect("seed live file");

    let server = Server::spawn(&live, &["--scrub-interval-s", "1"]);
    let garbage = scratch.file("garbage.bin", "HCLSTOR garbage");
    std::fs::rename(&garbage, &live).expect("publish corrupt file");
    server.wait_metric_at_least("hcl_scrub_failures_total", 1, Duration::from_secs(30));
    let (status, _) = server.http_get("/healthz");
    assert_eq!(status, 503);

    // A successful reload re-validates the file at open, so it clears the
    // degraded state immediately — no waiting for the next scrub pass.
    swap_in(&gen_b, &live);
    let (status, body) = server.http_get("/reload");
    assert_eq!(status, 200, "reload body: {body}");
    let (status, body) = server.http_get("/healthz");
    assert_eq!(
        (status, body.as_str()),
        (200, "ok\n"),
        "a good reload must clear degradation"
    );
    assert_eq!(server.metric("hcl_degraded"), 0);
    assert_eq!(server.metric("hcl_index_generation"), 2);

    let (exit, stderr) = server.drain();
    assert!(exit.success(), "stderr:\n{stderr}");
}

// ---------------------------------------------------------------------------
// PR-7 observability: per-mechanism counters and the socket slow log
// ---------------------------------------------------------------------------

#[test]
fn metrics_exposes_per_mechanism_answer_counters() {
    let scratch = Scratch::new("mechanism_counters");
    let index = build_index(
        &scratch,
        "ba",
        &edge_list(&testkit::barabasi_albert(80, 3, 9)),
        6,
    );
    let server = Server::spawn(&index, &[]);

    // A mix that exercises several mechanisms: self-queries (trivial) and
    // assorted pairs, over TCP and HTTP.
    let mut input = String::new();
    for i in 0..40u32 {
        input.push_str(&format!("{} {}\n", i % 80, (i * 13 + 1) % 80));
    }
    input.push_str("7 7\n");
    let answers = server.tcp_roundtrip(&input);
    assert_eq!(answers.lines().count(), 41);
    let (status, _) = server.http_get("/query?s=3&t=3");
    assert_eq!(status, 200);

    let total = server.wait_metric_at_least("hcl_answers_total", 42, Duration::from_secs(30));
    // Every answer is classified into exactly one mechanism counter, so
    // the five must sum to the answer total — and the names themselves
    // are pinned here (metric() panics on a missing name).
    let by_mechanism: u64 = [
        "hcl_answers_label_hit_total",
        "hcl_answers_highway_total",
        "hcl_answers_bfs_total",
        "hcl_answers_trivial_total",
        "hcl_answers_disconnected_total",
    ]
    .iter()
    .map(|name| server.metric(name))
    .sum();
    assert_eq!(
        by_mechanism, total,
        "mechanism counters must partition answers"
    );
    // The two deliberate self-queries are trivially classified.
    assert!(server.metric("hcl_answers_trivial_total") >= 2);

    let (status, stderr) = server.drain();
    assert!(status.success(), "stderr:\n{stderr}");
}

#[test]
fn socket_slow_log_emits_valid_json_for_tcp_and_http() {
    let scratch = Scratch::new("socket_slowlog");
    let index = build_index(
        &scratch,
        "er",
        &edge_list(&testkit::erdos_renyi(50, 0.1, 5)),
        5,
    );
    let server = Server::spawn(&index, &["--slow-log-us", "0"]);

    let answers = server.tcp_roundtrip("0 13\n4 4\n");
    assert_eq!(answers.lines().count(), 2);
    let (status, _) = server.http_get("/query?s=1&t=30");
    assert_eq!(status, 200);
    server.wait_metric_at_least("hcl_answers_total", 3, Duration::from_secs(30));

    let (status, stderr) = server.drain();
    assert!(status.success(), "stderr:\n{stderr}");
    let lines: Vec<&str> = stderr
        .lines()
        .filter(|l| l.starts_with("{\"endpoint\":"))
        .collect();
    assert_eq!(lines.len(), 3, "one slow-log line per answer:\n{stderr}");
    assert!(
        lines.iter().any(|l| l.contains("\"endpoint\":\"tcp\"")),
        "no tcp line:\n{stderr}"
    );
    assert!(
        lines.iter().any(|l| l.contains("\"endpoint\":\"http\"")),
        "no http line:\n{stderr}"
    );
    for line in &lines {
        // The full-schema validation lives in tests/observe.rs; here pin
        // the socket-specific fields: generation and worker are present
        // and the line is a complete flat object.
        assert!(line.ends_with('}'), "truncated line: {line}");
        assert!(line.contains("\"generation\":1}"), "generation: {line}");
        assert!(line.contains("\"worker\":"), "worker: {line}");
        assert!(line.contains("\"latency_us\":"), "latency: {line}");
        assert!(line.contains("\"source\":\""), "source: {line}");
    }
}
