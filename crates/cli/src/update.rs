//! Live edge updates: the engine every serving mode routes `+u v` /
//! `-u v` deltas through.
//!
//! [`UpdateEngine`] holds both halves of the journalled-container
//! contract in memory:
//!
//! * the **base** state — graph and labels exactly as the container's
//!   base sections hold them (the as-last-compacted snapshot), plus the
//!   delta journal accumulated since. Persisting writes *this* pair via
//!   `save_with_journal`, so what lands on disk is always a container
//!   whose open-time replay reconstructs the live state.
//! * the **live** state — the base with every journalled delta applied,
//!   maintained incrementally by `hcl-index`'s repair path (never a full
//!   rebuild). Queries and generation swaps are served from here.
//!
//! The engine is deliberately transport-agnostic: the `update`
//! subcommand drives it file-to-file, the stdin serve loops drive it a
//! line at a time, and the socket server drives it from `POST /update`
//! batches behind a mutex. Auto-compaction (`--compact-after N`) folds
//! the journal into the base once it reaches N pending deltas, bounding
//! both open-time replay work and journal growth.
//!
//! This file is on the request-serving path (the `no-panics` lint
//! covers it): every failure degrades into a `Result` the caller can
//! report and count, never a panic that would take a serving loop down.

use hcl_core::{DeltaGraph, DeltaOp, EdgeDelta, Graph, GraphView};
use hcl_index::repair::{DynamicIndex, RepairOutcome};
use hcl_index::{BuildContext, HighwayCoverIndex, IndexView};
use hcl_store::{BuildInfo, IndexStore, StoredJournal};
use std::path::PathBuf;

/// What one [`UpdateEngine::persist`] call did.
pub(crate) struct PersistReport {
    /// Bytes written to the backing file, or `None` for an in-memory
    /// engine (no `--index` to write back to).
    pub(crate) bytes: Option<u64>,
    /// Whether the journal was folded into the base first
    /// (`--compact-after` threshold reached, or an explicit compact).
    pub(crate) compacted: bool,
}

/// Incremental edge-update engine: applies deltas through label repair,
/// journals them for durability, and hands out the live state for
/// queries and generation swaps.
pub(crate) struct UpdateEngine {
    /// The as-last-compacted snapshot the on-disk base sections hold.
    base_graph: Graph,
    base_index: HighwayCoverIndex,
    /// Build metadata carried through every rewrite of the container.
    build: BuildInfo,
    /// Deltas applied since the base snapshot, in application order.
    journal: Vec<EdgeDelta>,
    /// Journal folds so far (the container's compaction counter).
    compactions: u64,
    /// The live graph: base + journal, rematerialised after each apply.
    live_graph: Graph,
    /// The live labels in repairable form.
    dynamic: DynamicIndex,
    /// CSR-flattened cache of `dynamic`, refreshed lazily — repairs only
    /// mark it stale, so a batch of deltas pays one flatten, not one per
    /// delta.
    live_index: HighwayCoverIndex,
    stale: bool,
    /// Reused BFS scratch for the repair path.
    cx: BuildContext,
    /// Where [`persist`](UpdateEngine::persist) writes, if anywhere.
    path: Option<PathBuf>,
    /// Fold the journal once it holds this many deltas (0 = never).
    compact_after: usize,
}

impl UpdateEngine {
    /// Builds the engine from an opened container: the base sections and
    /// journal come across as-is, so a later [`persist`](
    /// UpdateEngine::persist) continues the container's history instead
    /// of restarting it.
    pub(crate) fn from_store(
        store: &IndexStore,
        path: Option<PathBuf>,
        compact_after: usize,
    ) -> Self {
        let (journal, compactions) = match store.journal() {
            Some(j) => (j.deltas.clone(), j.compactions),
            None => (Vec::new(), 0),
        };
        let dynamic = DynamicIndex::from_view(store.index());
        let live_index = dynamic.to_index();
        Self {
            base_graph: store.base_graph().to_owned_graph(),
            base_index: store.base_index().to_owned_index(),
            build: store.meta().build,
            journal,
            compactions,
            live_graph: store.graph().to_owned_graph(),
            dynamic,
            live_index,
            stale: false,
            cx: BuildContext::new(),
            path,
            compact_after,
        }
    }

    /// Builds the engine around an index built in memory this session:
    /// the current state doubles as the base, the journal starts empty,
    /// and there is no file to persist to.
    pub(crate) fn from_views(
        graph: GraphView<'_>,
        index: IndexView<'_>,
        compact_after: usize,
    ) -> Self {
        let dynamic = DynamicIndex::from_view(index);
        Self {
            base_graph: graph.to_owned_graph(),
            base_index: dynamic.to_index(),
            build: BuildInfo::default(),
            journal: Vec::new(),
            compactions: 0,
            live_graph: graph.to_owned_graph(),
            live_index: dynamic.to_index(),
            dynamic,
            stale: false,
            cx: BuildContext::new(),
            path: None,
            compact_after,
        }
    }

    /// Applies one delta through incremental label repair. An
    /// ineffective delta (inserting an existing edge, deleting a missing
    /// one) returns `applied: false` and is *not* journalled; an invalid
    /// one (out-of-range endpoint, self-loop) is an error and changes
    /// nothing.
    pub(crate) fn apply(&mut self, delta: EdgeDelta) -> Result<RepairOutcome, String> {
        let mut overlay = DeltaGraph::new(self.live_graph.as_view());
        let outcome = self
            .dynamic
            .apply_and_repair(&mut overlay, delta, &mut self.cx)
            .map_err(|e| format!("applying {delta}: {e}"))?;
        if outcome.applied {
            self.live_graph = overlay.to_graph();
            self.journal.push(delta);
            self.stale = true;
        }
        Ok(outcome)
    }

    /// The live graph and index, for answering queries in-process.
    pub(crate) fn views(&mut self) -> (GraphView<'_>, IndexView<'_>) {
        if self.stale {
            self.live_index = self.dynamic.to_index();
            self.stale = false;
        }
        (self.live_graph.as_view(), self.live_index.as_view())
    }

    /// Pending (journalled, not yet folded) delta count.
    pub(crate) fn pending(&self) -> usize {
        self.journal.len()
    }

    /// Journal folds so far.
    pub(crate) fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Folds the journal into the base: the live state becomes the new
    /// base snapshot, the journal empties, and the compaction counter
    /// bumps (only if there was anything to fold).
    pub(crate) fn compact(&mut self) {
        if self.journal.is_empty() {
            return;
        }
        self.base_graph = self.live_graph.clone();
        self.base_index = self.dynamic.to_index();
        self.journal.clear();
        self.compactions += 1;
    }

    /// Writes the container back to its file (base sections + journal),
    /// folding the journal first when the `--compact-after` threshold is
    /// reached. Engines without a backing file only perform the fold.
    pub(crate) fn persist(&mut self) -> Result<PersistReport, String> {
        let compacted = self.compact_after > 0 && self.journal.len() >= self.compact_after;
        if compacted {
            self.compact();
        }
        let bytes = match &self.path {
            Some(path) => {
                let journal = StoredJournal {
                    deltas: self.journal.clone(),
                    compactions: self.compactions,
                };
                let written = hcl_store::save_with_journal(
                    path,
                    &self.base_graph,
                    &self.base_index,
                    self.build,
                    &journal,
                )
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
                Some(written)
            }
            None => None,
        };
        Ok(PersistReport { bytes, compacted })
    }

    /// Serialises the **live** state into a fresh in-memory container for
    /// a generation swap: the journal it carries is empty (the deltas are
    /// already folded into its sections), so opening it replays nothing.
    /// Trusted open — the bytes were produced in this process.
    pub(crate) fn fold_store(&mut self) -> Result<IndexStore, String> {
        if self.stale {
            self.live_index = self.dynamic.to_index();
            self.stale = false;
        }
        let journal = StoredJournal {
            deltas: Vec::new(),
            compactions: self.compactions,
        };
        let bytes = hcl_store::serialize_with_journal(
            &self.live_graph,
            &self.live_index,
            self.build,
            &journal,
        )
        .map_err(|e| format!("serialising updated index: {e}"))?;
        IndexStore::from_bytes_trusted(&bytes)
            .map_err(|e| format!("re-opening updated index image: {e}"))
    }
}

// ---------------------------------------------------------------------------
// Delta-line grammar
// ---------------------------------------------------------------------------

/// Splits a serve-loop input line into its delta operation and the `u v`
/// remainder, or `None` when the line is not a delta (a plain query,
/// blank, or comment). `+u v` inserts, `-u v` deletes; whitespace after
/// the sign is allowed.
pub(crate) fn delta_op(line: &str) -> Option<(DeltaOp, &str)> {
    let trimmed = line.trim_start();
    match trimmed.as_bytes().first() {
        Some(b'+') => Some((DeltaOp::Insert, &trimmed[1..])),
        Some(b'-') => Some((DeltaOp::Delete, &trimmed[1..])),
        _ => None,
    }
}

/// Parses the `u v` remainder of a delta line (after [`delta_op`] took
/// the sign), with the same `<source>:<line>` diagnostics the query
/// grammar produces.
pub(crate) fn parse_delta_rest(
    op: DeltaOp,
    rest: &str,
    what: &str,
    lineno: usize,
) -> Result<EdgeDelta, String> {
    match crate::parse_pair_line(rest, what, lineno)? {
        Some((u, v)) => Ok(match op {
            DeltaOp::Insert => EdgeDelta::insert(u, v),
            DeltaOp::Delete => EdgeDelta::delete(u, v),
        }),
        None => Err(format!(
            "{what}:{lineno}: expected two vertex ids after the delta sign"
        )),
    }
}

/// Strict delta-script parsing for `hcl update` input: every non-blank,
/// non-comment line must be a `+u v` or `-u v` delta.
pub(crate) fn parse_delta_line(
    line: &str,
    what: &str,
    lineno: usize,
) -> Result<Option<EdgeDelta>, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
        return Ok(None);
    }
    match delta_op(trimmed) {
        Some((op, rest)) => parse_delta_rest(op, rest, what, lineno).map(Some),
        None => Err(format!(
            "{what}:{lineno}: expected `+u v` (insert) or `-u v` (delete), got `{trimmed}`"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcl_core::testkit;
    use hcl_index::{BuildOptions, QueryContext};

    fn engine_for(n: usize, k: usize, seed: u64) -> (Graph, UpdateEngine) {
        let graph = testkit::barabasi_albert(n, 3, seed);
        let index = HighwayCoverIndex::build_with(
            &graph,
            &BuildOptions {
                num_landmarks: k,
                ..Default::default()
            },
        );
        let engine = UpdateEngine::from_views(graph.as_view(), index.as_view(), 0);
        (graph, engine)
    }

    #[test]
    fn delta_lines_parse_and_reject() {
        assert_eq!(
            parse_delta_line("+3 7", "t", 1).unwrap(),
            Some(EdgeDelta::insert(3, 7))
        );
        assert_eq!(
            parse_delta_line("  - 12 4 ", "t", 2).unwrap(),
            Some(EdgeDelta::delete(12, 4))
        );
        assert_eq!(parse_delta_line("# comment", "t", 3).unwrap(), None);
        assert_eq!(parse_delta_line("", "t", 4).unwrap(), None);
        let err = parse_delta_line("3 7", "t", 5).unwrap_err();
        assert!(err.contains("t:5"), "missing location: {err}");
        let err = parse_delta_line("+3", "t", 6).unwrap_err();
        assert!(err.contains("t:6"), "missing location: {err}");
        let err = parse_delta_line("+3 7 9", "t", 7).unwrap_err();
        assert!(err.contains("trailing"), "wrong diagnosis: {err}");
    }

    #[test]
    fn query_lines_are_not_deltas() {
        assert!(delta_op("3 7").is_none());
        assert!(delta_op("# note").is_none());
        assert!(delta_op("").is_none());
        assert!(delta_op("+1 2").is_some());
        assert!(delta_op("-1 2").is_some());
    }

    #[test]
    fn apply_updates_live_answers_and_journals() {
        let (graph, mut engine) = engine_for(40, 4, 9);
        // Find a non-adjacent pair at distance > 1 and connect it.
        let mut pair = None;
        'outer: for u in 0..40u32 {
            for v in (u + 1)..40 {
                if !graph.as_view().neighbors(u).contains(&v) {
                    pair = Some((u, v));
                    break 'outer;
                }
            }
        }
        let (u, v) = pair.expect("a sparse graph has non-adjacent pairs");
        let outcome = engine.apply(EdgeDelta::insert(u, v)).unwrap();
        assert!(outcome.applied);
        assert_eq!(engine.pending(), 1);
        let mut ctx = QueryContext::new();
        let (g, ix) = engine.views();
        assert_eq!(ix.query_with(g, &mut ctx, u, v), Some(1));
        // Re-inserting is a no-op and is not journalled.
        let outcome = engine.apply(EdgeDelta::insert(u, v)).unwrap();
        assert!(!outcome.applied);
        assert_eq!(engine.pending(), 1);
        // Invalid deltas are errors and change nothing.
        assert!(engine.apply(EdgeDelta::insert(0, 40)).is_err());
        assert!(engine.apply(EdgeDelta::insert(3, 3)).is_err());
        assert_eq!(engine.pending(), 1);
    }

    #[test]
    fn compact_folds_journal_into_base() {
        let (_graph, mut engine) = engine_for(30, 4, 2);
        engine.apply(EdgeDelta::insert(0, 17)).unwrap();
        engine.apply(EdgeDelta::delete(0, 17)).unwrap();
        assert_eq!(engine.pending(), 2);
        engine.compact();
        assert_eq!(engine.pending(), 0);
        assert_eq!(engine.compactions(), 1);
        // Nothing pending: a second compact is a no-op.
        engine.compact();
        assert_eq!(engine.compactions(), 1);
    }

    #[test]
    fn fold_store_swaps_in_the_live_answers() {
        let (_graph, mut engine) = engine_for(30, 4, 5);
        engine.apply(EdgeDelta::insert(2, 29)).unwrap();
        let store = engine.fold_store().unwrap();
        assert!(store.journal().unwrap().is_empty());
        let mut ctx = QueryContext::new();
        assert_eq!(
            store.index().query_with(store.graph(), &mut ctx, 2, 29),
            Some(1)
        );
    }
}
