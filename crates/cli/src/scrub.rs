//! Background integrity scrubber for the socket serving mode.
//!
//! Checksums catch corruption only when somebody recomputes them: the
//! open-time CRC-64 pass runs once, after which a serving process can map
//! the same container for weeks while the storage underneath rots, and a
//! trusted reload pipeline (`--trusted`) skips the pass entirely. The
//! scrub loop closes that gap. Every `--scrub-interval-s` it re-verifies
//!
//! 1. the **live generation**: the whole-file CRC-64 over the bytes the
//!    query path is actually reading (the mmap'd or heap-resident
//!    container), against the checksum in its header; and
//! 2. the **reload source**: a full validating re-read of the `--index`
//!    file's *current* bytes on disk — the mmap pins the old inode, so
//!    only a fresh read can notice that the file a future reload (or a
//!    restart) would open has been corrupted.
//!
//! A pass that detects corruption bumps `hcl_scrub_failures_total` and
//! sets the degraded flag, turning `/healthz` into a 503 `degraded`
//! answer so load balancers drain the instance — while the query path
//! keeps answering from the intact mapped generation, byte-identical to
//! before. A later clean pass (the operator repaired the source) or a
//! successful reload clears the flag; transitions are logged once, not
//! per pass.
//!
//! This file is on the serving path (registered in xtask's `no-panics`
//! lint): no `unwrap`/`expect`/indexing — corruption must degrade the
//! process, never abort it.

use crate::server::ServerState;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Runs scrub passes every `interval` until shutdown. Spawned by
/// `serve_listen` when `--scrub-interval-s` is non-zero; exits within one
/// sleep tick of the shutdown flag flipping.
pub(crate) fn scrub_loop(state: &ServerState, interval: Duration) {
    while crate::sync::sleep_unless(interval, &state.shutdown) {
        scrub_once(state);
    }
}

/// One scrub pass over the live generation and the reload source.
fn scrub_once(state: &ServerState) {
    let t0 = Instant::now();
    let generation = state.handle.current();

    // (1) The bytes being served right now.
    let mut failure = generation
        .store
        .verify_checksum()
        .err()
        .map(|e| format!("live generation {}: {e}", generation.number));

    // (2) The bytes a reload would publish. Only when serving from a
    // file; an edge-list server has no on-disk source to scrub.
    if failure.is_none() {
        if let Some(spec) = &state.reload {
            failure = hcl_store::verify_file(&spec.path)
                .err()
                .map(|e| format!("reload source {}: {e}", spec.path));
        }
    }

    match failure {
        None => {
            state.metrics.scrub_passes.inc();
            if state.metrics.degraded.swap(0, Ordering::Relaxed) != 0 {
                eprintln!(
                    "scrub: clean pass in {:.1?}; corruption is gone, /healthz is ok again",
                    t0.elapsed()
                );
            }
        }
        Some(what) => {
            state.metrics.scrub_failures.inc();
            if state.metrics.degraded.swap(1, Ordering::Relaxed) == 0 {
                eprintln!(
                    "error: scrub detected corruption ({what}); /healthz now reports degraded \
                     while queries continue on the intact mapped generation"
                );
            }
        }
    }
}
