//! The network serving front end: `hcl serve --listen <addr>`.
//!
//! A deliberately small, dependency-free socket server in the shape the
//! ROADMAP asked for — the proven pool discipline promoted from stdin to
//! TCP:
//!
//! * **Accept loop** (the calling thread): a non-blocking `TcpListener`
//!   polled on a short tick, so one loop multiplexes accepting, signal
//!   flags (drain / reload), and stdin-EOF shutdown without any async
//!   runtime.
//! * **Admission control**: accepted sockets go through a **bounded**
//!   queue of `--max-inflight` connections feeding `--workers` handler
//!   threads. Beyond the bound, connections are turned away immediately
//!   with a `error: server busy` line (counted in `/metrics`) instead of
//!   queueing unboundedly — total connection memory is
//!   O(workers + max-inflight), and per-connection memory is one bounded
//!   line buffer (the handler answers each request before reading the
//!   next, so a pipelining client cannot balloon the server).
//! * **Two protocols on one port**, sniffed from the first request line:
//!   newline-delimited `u v` pairs answered as `u v d` lines (byte-for-
//!   byte the stdin `serve` format), or minimal HTTP/1.1
//!   (`GET /query?s=..&t=..`, `/healthz`, `/metrics`, `/reload`;
//!   one request per connection, `Connection: close`) for load balancers
//!   and scrapers.
//! * **Fault containment**: malformed and out-of-range requests are
//!   skipped with a stderr diagnostic (the stdin serve contract) and
//!   counted; oversized request lines (> [`MAX_LINE`] bytes), clients
//!   that vanish mid-request, and stalled readers that trip
//!   `--write-timeout-ms` each close *that* connection and bump a
//!   counter — the server stays up.
//! * **Graceful drain**: SIGTERM/SIGINT or stdin EOF stop the accept
//!   loop; handlers finish the request in flight, close, and the process
//!   exits 0 with the same latency summary the stdin path prints.
//! * **Zero-downtime reload**: `GET /reload` (or the `--reload-signal`
//!   Unix signal) re-opens the `--index` file and atomically swaps the
//!   new generation into the shared [`GenerationHandle`]; in-flight
//!   requests finish on the old mmap, which is unmapped when its last
//!   snapshot drops. `save_with`'s rename-into-place makes the writer
//!   side safe, so a build pipeline can overwrite the file and poke the
//!   server with no coordination beyond the poke. A failing reload can
//!   retry with exponential backoff (`--reload-retries`,
//!   `--reload-backoff-ms`); the whole retry loop holds the reload lock,
//!   so concurrent triggers serialise end-to-end.
//! * **Integrity scrubbing**: an optional background thread
//!   (`--scrub-interval-s`, see `scrub.rs`) re-runs the CRC-64 pass over
//!   the live generation and the on-disk reload source; detected
//!   corruption flips `/healthz` to a 503 `degraded` answer (queries keep
//!   flowing from the intact mapping) until a clean pass or a successful
//!   reload restores it.

use crate::metrics::ServerMetrics;
use crate::parse_pair_line;
use crate::slowlog::{SlowLog, SlowQuery};
use crate::update::UpdateEngine;
use hcl_index::{QueryContext, QueryStats};
use hcl_store::{GenerationHandle, IndexStore};
use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Hard cap on one request line, TCP or HTTP. Distance requests are two
/// decimal ids (< 25 bytes); anything kilobytes long is a confused or
/// hostile client, and bounding it keeps per-connection memory fixed.
pub(crate) const MAX_LINE: usize = 8 * 1024;

/// Poll tick for the accept loop (signal flags, shutdown) — the latency
/// floor for noticing a drain or signal-triggered reload.
const ACCEPT_TICK: Duration = Duration::from_millis(25);

/// Read-timeout tick for connection handlers: how often an idle
/// connection re-checks the shutdown flag.
const READ_TICK: Duration = Duration::from_millis(100);

/// Hard cap on a `POST /update` body. A delta line is under 25 bytes, so
/// this admits tens of thousands of deltas per request while keeping
/// per-connection memory bounded.
const MAX_UPDATE_BODY: usize = 1024 * 1024;

/// How the server re-opens the index on reload.
pub(crate) struct ReloadSpec {
    /// Path of the `.hcl` container to re-open (the `--index` argument).
    pub(crate) path: String,
    /// Re-open with `open_trusted` (skip the whole-file CRC pass). The
    /// reload pipeline just wrote the file, so this mirrors `--trusted`.
    pub(crate) trusted: bool,
}

/// Everything the accept loop, the handlers, and the scrubber share.
pub(crate) struct ServerState {
    pub(crate) handle: GenerationHandle,
    /// `None` when the index was built in memory from an edge list —
    /// there is no file to re-open, so reload requests are refused.
    pub(crate) reload: Option<ReloadSpec>,
    /// Serialises concurrent reload triggers (signal + HTTP racing) —
    /// including the whole retry/backoff loop, so a retrying reload and a
    /// concurrent `/reload` can never interleave generation swaps.
    reload_lock: Mutex<()>,
    pub(crate) metrics: ServerMetrics,
    pub(crate) shutdown: AtomicBool,
    write_timeout: Duration,
    /// Extra reload attempts after a failure (`--reload-retries`).
    reload_retries: u32,
    /// Base pause before the first retry, doubling per attempt
    /// (`--reload-backoff-ms`).
    reload_backoff: Duration,
    /// Slow-query sink (`--slow-log-us`), shared by every handler.
    slow_log: Option<Arc<SlowLog>>,
    /// The live-update engine behind `POST /update`, created lazily from
    /// the current generation on the first update. Cleared by a
    /// successful reload (the file on disk superseded it) and by any
    /// failed update (rollback: the next update restarts from the last
    /// published generation).
    update: Mutex<Option<UpdateEngine>>,
    /// Fold the journal once it holds this many deltas (`--compact-after`,
    /// 0 = never).
    compact_after: usize,
}

/// Server configuration assembled by `cmd_serve`.
pub(crate) struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7171` (`:0` picks an ephemeral port,
    /// reported on stderr as `listening on <addr>`).
    pub(crate) addr: String,
    /// Connection-handler threads; each serves one connection at a time.
    pub(crate) workers: usize,
    /// Bound on *queued* admitted connections beyond the `workers` being
    /// served; further connects are rejected with a busy line.
    pub(crate) max_inflight: usize,
    /// How long one blocked answer write may stall before the connection
    /// is declared dead (slow-reader protection).
    pub(crate) write_timeout: Duration,
    /// Reload source; `None` disables `/reload` and the reload signal.
    pub(crate) reload: Option<ReloadSpec>,
    /// Unix signal number that triggers a reload (e.g. SIGHUP = 1), if
    /// any.
    pub(crate) reload_signal: Option<i32>,
    /// Extra attempts after a failed reload (`--reload-retries`).
    pub(crate) reload_retries: u32,
    /// Base backoff before the first retry, doubling per attempt
    /// (`--reload-backoff-ms`).
    pub(crate) reload_backoff: Duration,
    /// Background integrity-scrub cadence (`--scrub-interval-s`); `None`
    /// disables the scrubber thread.
    pub(crate) scrub_interval: Option<Duration>,
    /// Slow-query log (`--slow-log-us` / `--slow-log-file`), if enabled.
    pub(crate) slow_log: Option<Arc<SlowLog>>,
    /// Auto-compaction threshold for live updates (`--compact-after`).
    pub(crate) compact_after: usize,
    /// Suppress the shutdown latency summary line (`--quiet`).
    pub(crate) quiet: bool,
}

/// Runs the socket front end until drained. Returns `Ok` on a graceful
/// shutdown (SIGTERM/SIGINT/stdin-EOF); the process then exits 0.
pub(crate) fn serve_listen(handle: GenerationHandle, cfg: ServerConfig) -> Result<(), String> {
    let listener =
        TcpListener::bind(&cfg.addr).map_err(|e| format!("binding {}: {e}", cfg.addr))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("listener address: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("listener nonblocking: {e}"))?;

    let state = Arc::new(ServerState {
        handle,
        reload: cfg.reload,
        reload_lock: Mutex::new(()),
        metrics: ServerMetrics::new(),
        shutdown: AtomicBool::new(false),
        write_timeout: cfg.write_timeout,
        reload_retries: cfg.reload_retries,
        reload_backoff: cfg.reload_backoff,
        slow_log: cfg.slow_log,
        update: Mutex::new(None),
        compact_after: cfg.compact_after,
    });
    sig::install(cfg.reload_signal);

    // The line the tooling greps for: the bound address (resolving `:0`)
    // plus the knobs that shape admission.
    eprintln!(
        "listening on {local} ({} workers, max {} queued connections, write timeout {:?}{})",
        cfg.workers,
        cfg.max_inflight,
        cfg.write_timeout,
        match (&state.reload, cfg.reload_signal) {
            (Some(r), Some(sig)) => format!(", reload via /reload or signal {sig} from {}", r.path),
            (Some(r), None) => format!(", reload via /reload from {}", r.path),
            (None, _) => ", reload disabled (no --index)".to_string(),
        }
    );

    let (conn_tx, conn_rx) = sync_channel::<TcpStream>(cfg.max_inflight);
    let conn_rx = Arc::new(Mutex::new(conn_rx));
    let handlers: Vec<_> = (0..cfg.workers.max(1))
        .map(|worker| {
            let rx = Arc::clone(&conn_rx);
            let state = Arc::clone(&state);
            std::thread::spawn(move || handler_loop(&rx, &state, worker))
        })
        .collect();

    // Background integrity scrubber: re-runs the CRC-64 pass over the
    // live generation (and the reload source on disk) every interval,
    // flipping `/healthz` to `degraded` while corruption is detected.
    let scrubber = cfg.scrub_interval.map(|interval| {
        let state = Arc::clone(&state);
        std::thread::spawn(move || crate::scrub::scrub_loop(&state, interval))
    });

    // Stdin watcher: EOF on stdin is the portable drain trigger (the
    // stdin serve mode's contract, kept for the socket mode). Detached —
    // it may stay blocked in read() past shutdown if stdin never closes.
    {
        let state = Arc::clone(&state);
        std::thread::spawn(move || {
            let mut buf = [0u8; 1024];
            let mut stdin = std::io::stdin().lock();
            loop {
                match stdin.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {} // stray input on stdin is ignored in listen mode
                }
            }
            state.shutdown.store(true, Ordering::Release);
        });
    }

    let t0 = Instant::now();
    loop {
        if sig::TERM.load(Ordering::Acquire) {
            eprintln!("termination signal received; draining");
            state.shutdown.store(true, Ordering::Release);
        }
        if state.shutdown.load(Ordering::Acquire) {
            break;
        }
        if sig::RELOAD.swap(false, Ordering::AcqRel) {
            match do_reload(&state) {
                Ok(gen) => eprintln!("signal reload: now serving generation {gen}"),
                Err(e) => eprintln!("error: signal reload failed: {e}"),
            }
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                state.metrics.connections.inc();
                match conn_tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => {
                        state.metrics.busy_rejected.inc();
                        reject_busy(stream);
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_TICK),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => {
                // Transient accept failures (EMFILE under load, aborted
                // handshakes) must not kill the server.
                eprintln!("error: accept: {e}; continuing");
                std::thread::sleep(ACCEPT_TICK);
            }
        }
    }

    // Drain: stop admitting (drop the sender), let handlers finish their
    // in-flight request, and close anything still queued unserved.
    state.shutdown.store(true, Ordering::Release);
    drop(conn_tx);
    for h in handlers {
        // A handler that panicked has already dropped (reset) whatever
        // connection it was serving; the server itself keeps draining.
        if h.join().is_err() {
            state.metrics.disconnects.inc();
            eprintln!("error: a connection handler thread panicked; its connection was dropped");
        }
    }
    if let Some(scrubber) = scrubber {
        // The scrub loop polls the shutdown flag every tick, so this join
        // is bounded by one sleep tick plus one verification pass.
        if scrubber.join().is_err() {
            eprintln!("error: the scrubber thread panicked during drain");
        }
    }

    let m = &state.metrics;
    eprintln!(
        "served {} queries over {} connections in {:.1?} with {} workers \
         ({} reloads, {} rejected busy)",
        m.answers.get(),
        m.connections.get(),
        t0.elapsed(),
        cfg.workers.max(1),
        m.reloads.get(),
        m.busy_rejected.get(),
    );
    if let Some(line) = crate::skipped_summary(m) {
        eprintln!("{line}");
    }
    if !cfg.quiet {
        if let Some(line) = m.latency.summary_line() {
            eprintln!("{line}");
        }
    }
    if let Some(log) = &state.slow_log {
        if log.dropped() > 0 {
            eprintln!(
                "slow-log: {} line(s) dropped by the rate limit",
                log.dropped()
            );
        }
    }
    Ok(())
}

/// Re-opens the reload source and swaps it in as the new generation,
/// retrying up to `--reload-retries` times with exponential backoff.
///
/// The whole retry loop runs under `reload_lock`, so a signal-triggered
/// retry sequence and a concurrent HTTP `/reload` are serialised
/// end-to-end — generation swaps can never interleave out of order. A
/// successful reload also clears the scrubber's `degraded` flag: the new
/// generation was just (re-)validated at open.
pub(crate) fn do_reload(state: &ServerState) -> Result<u64, String> {
    let Some(spec) = &state.reload else {
        return Err("reload unavailable: server was built from an edge list, not --index".into());
    };
    // The lock guards no data (it only serialises reload attempts), so a
    // poisoned guard from a panicked reload is safe to recover.
    let _serialised = crate::sync::lock_recover(&state.reload_lock, "reload");
    let t0 = Instant::now();
    let attempts = state.reload_retries.saturating_add(1);
    let mut last_err = String::new();
    for attempt in 0..attempts {
        if attempt > 0 {
            // Exponential backoff: base × 2^(retry-1), capped at 2^10 so
            // the shift cannot overflow however large --reload-retries is.
            let pause = state
                .reload_backoff
                .saturating_mul(1u32 << (attempt - 1).min(10));
            if !crate::sync::sleep_unless(pause, &state.shutdown) {
                return Err(format!(
                    "reload abandoned by shutdown after {attempt} failed attempt(s); \
                     last error: {last_err}"
                ));
            }
        }
        let opened = if spec.trusted {
            IndexStore::open_trusted(&spec.path)
        } else {
            IndexStore::open(&spec.path)
        };
        match opened {
            Ok(store) => {
                let generation = state.handle.swap(store);
                state.metrics.reloads.inc();
                // The file on disk superseded any in-memory update state:
                // drop the engine so the next update restarts from this
                // freshly published generation.
                *crate::sync::lock_recover(&state.update, "update engine") = None;
                if state.metrics.degraded.swap(0, Ordering::Relaxed) != 0 {
                    eprintln!(
                        "health restored: reload published a freshly validated generation; \
                         /healthz is ok again"
                    );
                }
                eprintln!(
                    "reloaded {} as generation {generation} in {:.1?} (in-flight queries finish \
                     on the old mapping)",
                    spec.path,
                    t0.elapsed()
                );
                return Ok(generation);
            }
            Err(e) => {
                state.metrics.reload_failures.inc();
                last_err = format!("re-opening {}: {e}", spec.path);
                if attempt + 1 < attempts {
                    eprintln!(
                        "error: reload attempt {}/{attempts} failed: {last_err}; retrying",
                        attempt + 1
                    );
                }
            }
        }
    }
    Err(last_err)
}

/// Turns away a connection that arrived past the admission bound. Best
/// effort: the client may already be gone, and a stalled client gets at
/// most one second of our time.
fn reject_busy(stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut stream = stream;
    let _ = stream.write_all(b"error: server busy (max-inflight reached); retry later\n");
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// One handler thread: serves admitted connections one at a time until
/// the admission channel closes. Owns one reusable [`QueryContext`] —
/// the per-worker scratch discipline from the stdin pool.
fn handler_loop(rx: &Mutex<Receiver<TcpStream>>, state: &ServerState, worker: usize) {
    let mut ctx = QueryContext::new();
    loop {
        // A peer handler panicking mid-dequeue leaves the Receiver intact;
        // recover the lock and keep admitting connections.
        let conn = crate::sync::lock_recover(rx, "admission queue").recv();
        let Ok(stream) = conn else {
            return; // accept loop dropped the sender: drained
        };
        if state.shutdown.load(Ordering::Acquire) {
            // Admitted but never served before the drain began: close it
            // rather than start new work during shutdown.
            drop(stream);
            continue;
        }
        state.metrics.inflight.fetch_add(1, Ordering::Relaxed);
        handle_conn(stream, &mut ctx, state, worker);
        state.metrics.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Outcome of one bounded line read.
enum LineRead {
    /// A full line is in the buffer (terminator stripped).
    Line,
    /// Peer closed its write side; `partial` is true when bytes of an
    /// unterminated request were left behind (a mid-request disconnect).
    Eof { partial: bool },
    /// The read timed out ([`READ_TICK`]); check shutdown and retry.
    TimedOut,
    /// The line exceeded `max` bytes; the connection is past saving.
    Oversized,
}

/// Reads one `\n`-terminated line into `buf` (which accumulates across
/// [`LineRead::TimedOut`] returns), enforcing the size cap *while
/// reading* — a hostile client cannot make the buffer grow past
/// `max + one BufReader block` no matter how much it sends.
fn read_line_bounded(
    reader: &mut impl BufRead,
    buf: &mut Vec<u8>,
    max: usize,
) -> std::io::Result<LineRead> {
    loop {
        let available = match reader.fill_buf() {
            Ok(available) => available,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Ok(LineRead::TimedOut)
            }
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(LineRead::Eof {
                partial: !buf.is_empty(),
            });
        }
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            buf.extend_from_slice(&available[..pos]);
            reader.consume(pos + 1);
            if buf.last() == Some(&b'\r') {
                buf.pop(); // accept CRLF (telnet/HTTP framing) transparently
            }
            return Ok(if buf.len() > max {
                LineRead::Oversized
            } else {
                LineRead::Line
            });
        }
        let taken = available.len();
        buf.extend_from_slice(available);
        reader.consume(taken);
        if buf.len() > max {
            return Ok(LineRead::Oversized);
        }
    }
}

/// Does a first request line look like HTTP rather than a `u v` pair?
fn looks_like_http(line: &str) -> bool {
    ["GET ", "POST ", "HEAD ", "PUT ", "DELETE "]
        .iter()
        .any(|m| line.starts_with(m))
}

/// Serves one connection to completion: protocol sniff on the first
/// line, then either the newline `u v` loop or one HTTP exchange.
fn handle_conn(stream: TcpStream, ctx: &mut QueryContext, state: &ServerState, worker: usize) {
    let m = &state.metrics;
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "tcp-peer".into());
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let _ = stream.set_write_timeout(Some(state.write_timeout));
    let reader_half = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => {
            m.disconnects.inc();
            return;
        }
    };
    let mut reader = BufReader::with_capacity(4096, reader_half);
    let mut writer = BufWriter::new(stream);

    let mut line = Vec::with_capacity(64);
    let mut lineno = 0usize;
    let mut first = true;
    loop {
        match read_line_bounded(&mut reader, &mut line, MAX_LINE) {
            Ok(LineRead::TimedOut) => {
                if state.shutdown.load(Ordering::Acquire) {
                    let _ = writer.flush();
                    return; // drain: the request in flight (none) is done
                }
            }
            Ok(LineRead::Eof { partial }) => {
                if partial {
                    m.disconnects.inc();
                    eprintln!("error: {peer}: disconnected mid-request (partial line dropped)");
                }
                let _ = writer.flush();
                return;
            }
            Ok(LineRead::Oversized) => {
                m.oversized.inc();
                eprintln!("error: {peer}: request line exceeds {MAX_LINE} bytes; closing");
                let _ = writer
                    .write_all(format!("error: request line exceeds {MAX_LINE} bytes\n").as_bytes())
                    .and_then(|()| writer.flush());
                return;
            }
            Ok(LineRead::Line) => {
                lineno += 1;
                let text = String::from_utf8_lossy(&line).into_owned();
                line.clear();
                if first && looks_like_http(&text) {
                    handle_http(&text, &mut reader, &mut writer, ctx, state, &peer, worker);
                    return; // one exchange per HTTP connection
                }
                first = false;
                if !handle_tcp_request(&text, lineno, &mut writer, ctx, state, &peer, worker) {
                    return;
                }
                if state.shutdown.load(Ordering::Acquire) {
                    let _ = writer.flush();
                    return; // drain: current request answered, stop here
                }
            }
            Err(_) => {
                m.disconnects.inc();
                return;
            }
        }
    }
}

/// Handles one `u v` line. Returns `false` when the connection must
/// close (write failure). Invalid requests are skipped with a stderr
/// diagnostic and a metrics bump — never an answer line — so the answer
/// stream stays byte-identical to stdin serving for the same input.
fn handle_tcp_request(
    text: &str,
    lineno: usize,
    writer: &mut impl Write,
    ctx: &mut QueryContext,
    state: &ServerState,
    peer: &str,
    worker: usize,
) -> bool {
    let trimmed = text.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
        return true;
    }
    state.metrics.requests.inc();
    let t0 = Instant::now();
    let (u, v) = match parse_pair_line(text, peer, lineno) {
        Ok(Some(pair)) => pair,
        Ok(None) => return true,
        Err(msg) => {
            state.metrics.malformed.inc();
            eprintln!("error: {msg}");
            return true;
        }
    };
    let generation = state.handle.current();
    let store = &generation.store;
    let n = store.graph().num_vertices();
    if u as usize >= n || v as usize >= n {
        state.metrics.out_of_range.inc();
        eprintln!("error: {peer}:{lineno}: query ({u}, {v}) out of range (n = {n}); skipped");
        return true;
    }
    // The stats probe always rides along on the socket path: its cost is
    // a handful of field writes per query (far below socket overhead),
    // and it feeds the per-mechanism /metrics counters and the slow log.
    let mut stats = QueryStats::new();
    let d = store
        .index()
        .query_probed(store.graph(), ctx, u, v, &mut stats);
    let mut buf = String::with_capacity(24);
    crate::pool::push_answer_line(&mut buf, u, v, d);
    if !write_answer_bytes(writer, buf.as_bytes(), state, peer) {
        return false;
    }
    let elapsed = t0.elapsed();
    state.metrics.latency.record(elapsed);
    state.metrics.answers.inc();
    state.metrics.record_source(stats.source);
    if let Some(log) = &state.slow_log {
        log.observe(&SlowQuery {
            endpoint: "tcp",
            u,
            v,
            dist: d,
            latency: elapsed,
            stats: &stats,
            worker,
            generation: generation.number,
        });
    }
    true
}

/// Writes and flushes one answer, classifying failures: a stalled reader
/// trips the write timeout, a vanished one counts as a disconnect.
/// Returns `false` when the connection is dead.
fn write_answer_bytes(
    writer: &mut impl Write,
    bytes: &[u8],
    state: &ServerState,
    peer: &str,
) -> bool {
    match writer.write_all(bytes).and_then(|()| writer.flush()) {
        Ok(()) => true,
        Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
            state.metrics.write_timeouts.inc();
            eprintln!(
                "error: {peer}: answer write stalled past {:?} (slow reader); closing",
                state.write_timeout
            );
            false
        }
        Err(_) => {
            state.metrics.disconnects.inc();
            false
        }
    }
}

// ---------------------------------------------------------------------------
// Minimal HTTP/1.x handling
// ---------------------------------------------------------------------------

/// Serves one HTTP exchange: drains headers, dispatches on the path,
/// writes a `Connection: close` response.
#[allow(clippy::too_many_arguments)]
fn handle_http(
    request_line: &str,
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    ctx: &mut QueryContext,
    state: &ServerState,
    peer: &str,
    worker: usize,
) {
    let m = &state.metrics;
    m.http_requests.inc();

    // Drain headers (bounded): the only one we act on is Content-Length
    // (to frame a `POST /update` body), but the socket must be past all
    // of them before the response for well-behaved clients.
    let mut content_length: Option<usize> = None;
    let mut header = Vec::with_capacity(128);
    for _ in 0..100 {
        header.clear();
        match read_line_bounded(reader, &mut header, MAX_LINE) {
            Ok(LineRead::Line) if header.is_empty() => break, // blank line: end of headers
            Ok(LineRead::Line) => {
                let text = String::from_utf8_lossy(&header);
                if let Some((name, value)) = text.split_once(':') {
                    if name.trim().eq_ignore_ascii_case("content-length") {
                        content_length = value.trim().parse::<usize>().ok();
                    }
                }
            }
            Ok(LineRead::TimedOut) => {
                if state.shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Ok(LineRead::Eof { .. }) => break, // HTTP/1.0-style bare request
            Ok(LineRead::Oversized) | Err(_) => {
                m.disconnects.inc();
                return;
            }
        }
    }

    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(method), Some(target)) => (method, target),
        _ => {
            respond(
                writer,
                state,
                peer,
                400,
                "Bad Request",
                "text/plain",
                "malformed request line\n",
            );
            return;
        }
    };
    if method == "POST" && target != "/reload" && target != "/update" {
        respond(
            writer,
            state,
            peer,
            405,
            "Method Not Allowed",
            "text/plain",
            "try GET\n",
        );
        return;
    }
    if target == "/update" && method != "POST" {
        respond(
            writer,
            state,
            peer,
            405,
            "Method Not Allowed",
            "text/plain",
            "try POST\n",
        );
        return;
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/healthz" => {
            // Degraded: the scrubber found corruption in the live
            // generation or the reload source. The server keeps answering
            // queries from the (intact) mapped generation, but load
            // balancers should stop routing new traffic here.
            if m.degraded.load(Ordering::Relaxed) != 0 {
                respond(
                    writer,
                    state,
                    peer,
                    503,
                    "Service Unavailable",
                    "text/plain",
                    "degraded\n",
                );
            } else {
                respond(writer, state, peer, 200, "OK", "text/plain", "ok\n");
            }
        }
        "/metrics" => {
            let body = m.render(state.handle.number());
            respond(writer, state, peer, 200, "OK", "text/plain", &body);
        }
        "/query" => handle_http_query(query, writer, ctx, state, peer, worker),
        "/update" => handle_http_update(content_length, reader, writer, state, peer),
        "/reload" => match do_reload(state) {
            Ok(generation) => {
                let body = format!("{{\"ok\":true,\"generation\":{generation}}}\n");
                respond(writer, state, peer, 200, "OK", "application/json", &body);
            }
            Err(e) => {
                let (status, reason) = if state.reload.is_none() {
                    (409, "Conflict")
                } else {
                    (500, "Internal Server Error")
                };
                let body = format!("{{\"ok\":false,\"error\":{:?}}}\n", e);
                respond(
                    writer,
                    state,
                    peer,
                    status,
                    reason,
                    "application/json",
                    &body,
                );
            }
        },
        _ => {
            respond(
                writer,
                state,
                peer,
                404,
                "Not Found",
                "text/plain",
                "unknown path\n",
            );
        }
    }
}

/// `GET /query?s=A&t=B` → `{"s":A,"t":B,"dist":D|null,"generation":G}`.
fn handle_http_query(
    query: &str,
    writer: &mut impl Write,
    ctx: &mut QueryContext,
    state: &ServerState,
    peer: &str,
    worker: usize,
) {
    state.metrics.requests.inc();
    let t0 = Instant::now();
    let (mut s, mut t) = (None, None);
    for kv in query.split('&') {
        match kv.split_once('=') {
            Some(("s", val)) => s = val.parse::<u32>().ok(),
            Some(("t", val)) => t = val.parse::<u32>().ok(),
            _ => {}
        }
    }
    let (Some(s), Some(t)) = (s, t) else {
        state.metrics.malformed.inc();
        respond(
            writer,
            state,
            peer,
            400,
            "Bad Request",
            "application/json",
            "{\"ok\":false,\"error\":\"expected /query?s=<u32>&t=<u32>\"}\n",
        );
        return;
    };
    let generation = state.handle.current();
    let store = &generation.store;
    let n = store.graph().num_vertices();
    if s as usize >= n || t as usize >= n {
        state.metrics.out_of_range.inc();
        let body = format!("{{\"ok\":false,\"error\":\"vertex id out of range\",\"n\":{n}}}\n");
        respond(
            writer,
            state,
            peer,
            400,
            "Bad Request",
            "application/json",
            &body,
        );
        return;
    }
    let mut stats = QueryStats::new();
    let d = store
        .index()
        .query_probed(store.graph(), ctx, s, t, &mut stats);
    let dist = match d {
        Some(d) => d.to_string(),
        None => "null".into(),
    };
    let body = format!(
        "{{\"s\":{s},\"t\":{t},\"dist\":{dist},\"generation\":{}}}\n",
        generation.number
    );
    if respond(writer, state, peer, 200, "OK", "application/json", &body) {
        let elapsed = t0.elapsed();
        state.metrics.latency.record(elapsed);
        state.metrics.answers.inc();
        state.metrics.record_source(stats.source);
        if let Some(log) = &state.slow_log {
            log.observe(&SlowQuery {
                endpoint: "http",
                u: s,
                v: t,
                dist: d,
                latency: elapsed,
                stats: &stats,
                worker,
                generation: generation.number,
            });
        }
    }
}

/// Reads exactly `len` body bytes, honouring the shutdown flag on
/// read-timeout ticks. `Err` means the connection is past saving (peer
/// vanished or the server is draining) — close without a response.
fn read_body_bounded(
    reader: &mut impl BufRead,
    len: usize,
    state: &ServerState,
) -> Result<Vec<u8>, ()> {
    let mut body = Vec::with_capacity(len.min(MAX_UPDATE_BODY));
    while body.len() < len {
        let available = match reader.fill_buf() {
            Ok(available) => available,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if state.shutdown.load(Ordering::Acquire) {
                    return Err(());
                }
                continue;
            }
            Err(_) => return Err(()),
        };
        if available.is_empty() {
            return Err(()); // peer closed mid-body
        }
        let take = available.len().min(len - body.len());
        body.extend_from_slice(&available[..take]);
        reader.consume(take);
    }
    Ok(body)
}

/// `POST /update`: a body of `+u v` / `-u v` lines applied through
/// incremental label repair and published as a new generation.
///
/// The whole batch is transactional from the client's point of view: the
/// deltas are parsed up front, applied to the (lazily created) update
/// engine, persisted to the `--index` file, and only then swapped in. On
/// *any* failure the engine is discarded — the served generation and the
/// file on disk keep their pre-request state, and the next update
/// restarts from the last published generation.
fn handle_http_update(
    content_length: Option<usize>,
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    state: &ServerState,
    peer: &str,
) {
    let m = &state.metrics;
    let Some(len) = content_length else {
        m.update_failures.inc();
        respond(
            writer,
            state,
            peer,
            411,
            "Length Required",
            "application/json",
            "{\"ok\":false,\"error\":\"POST /update needs a Content-Length body of delta lines\"}\n",
        );
        return;
    };
    if len > MAX_UPDATE_BODY {
        m.update_failures.inc();
        let body =
            format!("{{\"ok\":false,\"error\":\"update body exceeds {MAX_UPDATE_BODY} bytes\"}}\n");
        respond(
            writer,
            state,
            peer,
            413,
            "Payload Too Large",
            "application/json",
            &body,
        );
        return;
    }
    let Ok(body) = read_body_bounded(reader, len, state) else {
        m.disconnects.inc();
        return;
    };
    let text = String::from_utf8_lossy(&body);

    // Parse the whole batch before touching anything: a body with any
    // bad line is rejected as a unit.
    let mut deltas = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        match crate::update::parse_delta_line(line, peer, idx + 1) {
            Ok(Some(delta)) => deltas.push(delta),
            Ok(None) => {}
            Err(e) => {
                m.update_failures.inc();
                let body = format!("{{\"ok\":false,\"error\":{e:?}}}\n");
                respond(
                    writer,
                    state,
                    peer,
                    400,
                    "Bad Request",
                    "application/json",
                    &body,
                );
                return;
            }
        }
    }

    // Same lock order as `do_reload` (reload first, then the engine
    // slot): an update and a concurrent reload serialise end-to-end, so
    // a reload can never unmap state an update is folding from.
    let _serialised = crate::sync::lock_recover(&state.reload_lock, "reload");
    let mut slot = crate::sync::lock_recover(&state.update, "update engine");
    if slot.is_none() {
        let generation = state.handle.current();
        let path = state
            .reload
            .as_ref()
            .map(|spec| std::path::PathBuf::from(&spec.path));
        *slot = Some(UpdateEngine::from_store(
            &generation.store,
            path,
            state.compact_after,
        ));
    }
    // The slot was just filled above; a vacant slot here is unreachable,
    // but degrade to an error response rather than panic on this path.
    let Some(engine) = slot.as_mut() else {
        m.update_failures.inc();
        respond(
            writer,
            state,
            peer,
            500,
            "Internal Server Error",
            "application/json",
            "{\"ok\":false,\"error\":\"update engine unavailable\"}\n",
        );
        return;
    };

    match run_update(engine, deltas) {
        Err((status, reason, err)) => {
            // Rollback: drop the half-updated engine. The served
            // generation and the file on disk still hold the pre-request
            // state, and the next update restarts from them.
            *slot = None;
            m.update_failures.inc();
            let body = format!("{{\"ok\":false,\"error\":{err:?}}}\n");
            respond(
                writer,
                state,
                peer,
                status,
                reason,
                "application/json",
                &body,
            );
        }
        Ok(done) => {
            let generation = state.handle.swap(done.store);
            m.updates_applied.add(done.applied);
            if done.persisted.compacted {
                m.compactions.inc();
            }
            eprintln!(
                "update from {peer}: {} delta(s) applied ({} no-op) as generation {generation}{}{}",
                done.applied,
                done.ignored,
                if done.persisted.compacted {
                    "; journal compacted"
                } else {
                    ""
                },
                match done.persisted.bytes {
                    Some(b) => format!("; {b} bytes written to disk"),
                    None => "; in-memory index, nothing persisted".to_string(),
                }
            );
            let body = format!(
                "{{\"ok\":true,\"applied\":{},\"ignored\":{},\"pending\":{},\
                 \"generation\":{generation}}}\n",
                done.applied, done.ignored, done.pending
            );
            respond(writer, state, peer, 200, "OK", "application/json", &body);
        }
    }
}

/// What a successful `/update` batch produced, ready to publish.
struct UpdateDone {
    applied: u64,
    ignored: u64,
    pending: usize,
    persisted: crate::update::PersistReport,
    store: IndexStore,
}

/// Applies a parsed delta batch to the engine, persists, and folds the
/// live state into a swappable store. Pure engine work — no locking, no
/// I/O to the client — so the caller can treat any `Err` as "discard the
/// engine and report `(status, reason, message)`".
fn run_update(
    engine: &mut UpdateEngine,
    deltas: Vec<hcl_core::EdgeDelta>,
) -> Result<UpdateDone, (u16, &'static str, String)> {
    let mut applied = 0u64;
    let mut ignored = 0u64;
    for delta in deltas {
        match engine.apply(delta) {
            Ok(outcome) if outcome.applied => applied += 1,
            Ok(_) => ignored += 1,
            Err(e) => return Err((400, "Bad Request", e)),
        }
    }
    let persisted = engine
        .persist()
        .map_err(|e| (500, "Internal Server Error", e))?;
    let store = engine
        .fold_store()
        .map_err(|e| (500, "Internal Server Error", e))?;
    Ok(UpdateDone {
        applied,
        ignored,
        pending: engine.pending(),
        persisted,
        store,
    })
}

/// Writes one complete HTTP response. Returns `true` on success (the
/// failure classification happens inside, like every answer write).
fn respond(
    writer: &mut impl Write,
    state: &ServerState,
    peer: &str,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> bool {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    let mut bytes = Vec::with_capacity(head.len() + body.len());
    bytes.extend_from_slice(head.as_bytes());
    bytes.extend_from_slice(body.as_bytes());
    write_answer_bytes(writer, &bytes, state, peer)
}

// ---------------------------------------------------------------------------
// Signal plumbing (flags only; all real work happens on the accept loop)
// ---------------------------------------------------------------------------

#[cfg(unix)]
pub(crate) mod sig {
    //! Async-signal-safe flag setters installed with POSIX `signal(2)`
    //! via the same direct-FFI discipline `hcl-store` uses for mmap: the
    //! handlers only store to static atomics; the accept loop polls.
    //!
    //! This module is the one `unsafe_code` exception in the binary (the
    //! crate root denies it); the FFI surface is two `signal(2)` calls.
    #![allow(unsafe_code)]

    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set by SIGTERM/SIGINT: drain and exit 0.
    pub(crate) static TERM: AtomicBool = AtomicBool::new(false);
    /// Set by the configured reload signal: swap in a new generation.
    pub(crate) static RELOAD: AtomicBool = AtomicBool::new(false);

    pub(crate) const SIGHUP: i32 = 1;
    const SIGINT: i32 = 2;
    #[cfg(any(target_os = "macos", target_os = "freebsd", target_os = "openbsd"))]
    pub(crate) const SIGUSR1: i32 = 30;
    #[cfg(not(any(target_os = "macos", target_os = "freebsd", target_os = "openbsd")))]
    pub(crate) const SIGUSR1: i32 = 10;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    extern "C" fn on_reload(_sig: i32) {
        RELOAD.store(true, Ordering::SeqCst);
    }

    /// Installs the drain handlers (SIGTERM, SIGINT) and, when given, the
    /// reload signal.
    pub(crate) fn install(reload_signal: Option<i32>) {
        let term = on_term as extern "C" fn(i32) as *const () as usize;
        let reload = on_reload as extern "C" fn(i32) as *const () as usize;
        // SAFETY: `signal(2)` is called with valid signal numbers and
        // handler addresses of `extern "C" fn(i32)` items that live for
        // the whole program; the handlers themselves only perform
        // async-signal-safe atomic stores (no allocation, no locks), and
        // installation happens once on the main thread before any
        // handler thread is spawned.
        unsafe {
            signal(SIGTERM, term);
            signal(SIGINT, term);
            if let Some(s) = reload_signal {
                signal(s, reload);
            }
        }
    }
}

#[cfg(not(unix))]
pub(crate) mod sig {
    //! Non-Unix stub: no signals; drain still works via stdin EOF.
    use std::sync::atomic::AtomicBool;

    pub(crate) static TERM: AtomicBool = AtomicBool::new(false);
    pub(crate) static RELOAD: AtomicBool = AtomicBool::new(false);
    pub(crate) const SIGHUP: i32 = 1;
    pub(crate) const SIGUSR1: i32 = 10;

    pub(crate) fn install(_reload_signal: Option<i32>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn bounded_reader_splits_lines_and_strips_crlf() {
        let mut r = BufReader::new(Cursor::new(b"0 1\n2 3\r\npartial".to_vec()));
        let mut buf = Vec::new();
        assert!(matches!(
            read_line_bounded(&mut r, &mut buf, 64).unwrap(),
            LineRead::Line
        ));
        assert_eq!(buf, b"0 1");
        buf.clear();
        assert!(matches!(
            read_line_bounded(&mut r, &mut buf, 64).unwrap(),
            LineRead::Line
        ));
        assert_eq!(buf, b"2 3");
        buf.clear();
        assert!(matches!(
            read_line_bounded(&mut r, &mut buf, 64).unwrap(),
            LineRead::Eof { partial: true }
        ));
    }

    #[test]
    fn bounded_reader_caps_unterminated_floods() {
        // 1 MiB of newline-free garbage must trip the cap long before the
        // stream ends, with the buffer never ballooning past max + block.
        let mut r = BufReader::with_capacity(512, Cursor::new(vec![b'x'; 1 << 20]));
        let mut buf = Vec::new();
        assert!(matches!(
            read_line_bounded(&mut r, &mut buf, 4096).unwrap(),
            LineRead::Oversized
        ));
        assert!(buf.len() <= 4096 + 512);
    }

    #[test]
    fn http_sniff_only_matches_http_verbs() {
        assert!(looks_like_http("GET /healthz HTTP/1.1"));
        assert!(looks_like_http("POST /reload HTTP/1.1"));
        assert!(!looks_like_http("0 1"));
        assert!(!looks_like_http("GETTY 1"));
        assert!(!looks_like_http("# comment"));
    }
}
