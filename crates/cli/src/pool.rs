//! Concurrent query serving: a worker pool over one shared index.
//!
//! The shape is the one the storage layer was designed for: `GraphView` /
//! `IndexView` are `Copy`, read-only, and `Sync`, so every worker thread
//! holds the *same* view of the (typically mmap'd) index and owns a
//! private [`QueryContext`] for scratch. Two entry points share that
//! pattern:
//!
//! * [`answer_batch`] — a materialised workload (query subcommand): fixed
//!   chunks claimed off an atomic cursor, results reassembled in order.
//! * [`serve_pooled`] — a streaming workload (serve subcommand): the
//!   calling thread reads stdin and groups valid pairs into
//!   sequence-numbered chunks pushed through a **bounded** channel
//!   (backpressure: a slow consumer stalls the reader instead of ballooning
//!   memory); workers answer chunks and format output lines; a dedicated
//!   writer thread holds a **reorder buffer** keyed by sequence number and
//!   writes chunks strictly in input order.
//!
//! The ordering guarantee is therefore exact: stdout from `--workers N` is
//! **byte-identical** to `--workers 1` for the same input — answers appear
//! in input order, in the same format — which the CLI test suite asserts
//! across graph families and worker counts. Per-line diagnostics
//! (malformed input, out-of-range ids) are produced by the reading thread
//! *before* pairs enter the pool, so stderr stays in input order too.
//!
//! A stdout consumer that goes away early (`… | head`) — or any other
//! write failure — flips a shutdown flag: the writer drains remaining
//! results without writing (so no worker or reader is ever left blocked
//! on a full channel), workers skip remaining chunks, and the reader
//! stops consuming stdin. A broken pipe then ends the session cleanly
//! (the single-threaded contract); other write errors are reported as
//! fatal after the drain. The reorder buffer itself is bounded by a
//! reader/writer sequence window ([`Window`]), so even a pathologically
//! slow chunk stalling the write front cannot balloon memory.

use crate::metrics::ServerMetrics;
use crate::slowlog::{SlowLog, SlowQuery};
use crate::sync::{lock_recover, wait_recover};
use crate::update::{delta_op, parse_delta_rest, UpdateEngine};
use crate::validate_serve_pair;
use hcl_core::{GraphView, VertexId};
use hcl_index::{IndexView, QueryContext, QueryStats};
use hcl_store::GenerationHandle;
use std::collections::HashMap;
use std::io::{BufRead, ErrorKind, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Queries per pool chunk. Large enough that channel and reorder overhead
/// amortises to noise against µs-scale queries, small enough that a
/// pipelined consumer sees output promptly. Multi-worker serving is a
/// batch-throughput mode: answers are flushed per chunk, not per line.
pub(crate) const CHUNK: usize = 256;

/// Appends one `u v d` answer line; the format single-threaded serving
/// writes, shared so pooled output is byte-identical.
pub(crate) fn push_answer_line(buf: &mut String, u: VertexId, v: VertexId, d: Option<u32>) {
    use std::fmt::Write as _;
    match d {
        Some(d) => writeln!(buf, "{u} {v} {d}"),
        None => writeln!(buf, "{u} {v} inf"),
    }
    .expect("String writes are infallible");
}

/// Answers a materialised workload with `workers` threads, returning
/// answers in input order. `workers <= 1` (or a workload smaller than one
/// chunk) runs inline on one reused context.
pub(crate) fn answer_batch(
    graph: GraphView<'_>,
    index: IndexView<'_>,
    queries: &[(VertexId, VertexId)],
    workers: usize,
) -> Vec<Option<u32>> {
    let num_chunks = queries.len().div_ceil(CHUNK);
    let workers = workers.min(num_chunks);
    if workers <= 1 {
        let mut ctx = QueryContext::new();
        return queries
            .iter()
            .map(|&(u, v)| index.query_with(graph, &mut ctx, u, v))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut parts: Vec<(usize, Vec<Option<u32>>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                s.spawn(move || {
                    let mut ctx = QueryContext::new();
                    let mut out = Vec::new();
                    loop {
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= num_chunks {
                            break;
                        }
                        let chunk = &queries[c * CHUNK..((c + 1) * CHUNK).min(queries.len())];
                        let answers: Vec<Option<u32>> = chunk
                            .iter()
                            .map(|&(u, v)| index.query_with(graph, &mut ctx, u, v))
                            .collect();
                        out.push((c, answers));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("query worker panicked"))
            .collect()
    });
    parts.sort_unstable_by_key(|p| p.0);
    parts.into_iter().flat_map(|p| p.1).collect()
}

/// Outcome of a pooled serving session.
pub(crate) struct ServeSummary {
    /// Answer lines written to stdout.
    pub(crate) served: u64,
    /// Whether the session ended because the stdout reader went away.
    pub(crate) closed: bool,
}

/// One unit of work: input-order sequence number plus the valid pairs of
/// one chunk, each stamped with its parse time so latency can be measured
/// end to end (parse → answer on the wire), matching what the socket
/// front end reports.
type Job = (u64, Vec<(VertexId, VertexId, Instant)>);
/// One unit of output: the chunk's sequence number, its formatted answer
/// lines, and the parse-time stamps riding along so the writer can record
/// each answer's latency *after* the bytes are flushed.
type Chunk = (u64, String, Vec<Instant>);

/// Live-update wiring for a pooled serving session: where `-u v` deltas
/// persist and when the journal auto-compacts.
pub(crate) struct UpdateConfig {
    /// `.hcl` file to write updated containers back to; `None` for an
    /// index built in memory from an edge list (updates stay in memory).
    pub(crate) path: Option<PathBuf>,
    /// `--compact-after N`: fold the journal once it holds N deltas
    /// (0 = never).
    pub(crate) compact_after: usize,
}

/// Streams `u v` queries from `input` through a pool of `workers` query
/// threads, writing answers to `output` in input order. `+u v` / `-u v`
/// lines are edge deltas: the reader quiesces the pool (all earlier
/// answers flushed), repairs the index incrementally, and publishes the
/// result as a new generation — answers before the delta line come from
/// the old graph, answers after it from the new one, exactly as in
/// sequential serving.
///
/// The calling thread reads and validates input (diagnostics to stderr in
/// input order, bad lines skipped — the serve contract); workers answer
/// and format on per-chunk generation snapshots; a writer thread reorders
/// and writes. See the module docs for the channel/ordering design.
pub(crate) fn serve_pooled(
    handle: &GenerationHandle,
    workers: usize,
    input: impl BufRead,
    output: impl Write + Send,
    metrics: &ServerMetrics,
    slow_log: Option<&SlowLog>,
    updates: UpdateConfig,
) -> Result<ServeSummary, String> {
    let shutdown = AtomicBool::new(false);
    // Bounded everywhere: the channels cap chunks in transit, and the
    // reader additionally never runs more than WINDOW_CHUNKS_PER_WORKER
    // chunks ahead of the writer's watermark (see `Window`), so total
    // in-flight memory — including the reorder buffer — stays
    // O(workers · CHUNK) even when one pathologically slow chunk stalls
    // the in-order write front.
    let (job_tx, job_rx) = sync_channel::<Job>(workers * 2);
    let (res_tx, res_rx) = sync_channel::<Chunk>(workers * 2);
    let job_rx = Mutex::new(job_rx);
    let window = Window::new();

    std::thread::scope(|s| {
        let shutdown = &shutdown;
        let window = &window;
        for worker in 0..workers {
            let job_rx = &job_rx;
            let res_tx = res_tx.clone();
            s.spawn(move || worker_loop(handle, job_rx, res_tx, shutdown, slow_log, worker));
        }
        // The clones above keep the channel open; drop the original so the
        // writer sees EOF once every worker is done.
        drop(res_tx);

        let writer = s.spawn(move || writer_loop(output, res_rx, shutdown, window, metrics));

        let read_result = read_loop(
            handle, updates, input, job_tx, shutdown, window, workers, metrics,
        );

        // A writer panic is reported as a serve error, not re-raised: the
        // reader has already returned (join happens after `read_loop`), so
        // nothing is left blocked on the dead thread.
        let summary = writer
            .join()
            .map_err(|_| "writer thread panicked; output is incomplete".to_string())??;
        // A stdin read failure is fatal, exactly as in sequential serving —
        // but only after the pool has drained, so partial output still
        // lands in order.
        read_result?;
        Ok(summary)
    })
}

/// Flow-control handshake between the reader and the writer: `written` is
/// the lowest sequence number the writer has *not yet* flushed. The reader
/// waits before emitting chunk `s` until `s < written + window`, which
/// caps every downstream buffer — including the reorder buffer, which
/// channel bounds alone cannot cap when one slow chunk stalls the write
/// front while faster workers keep completing later ones.
struct Window {
    written: Mutex<u64>,
    cv: Condvar,
}

/// How many chunks per worker the reader may run ahead of the writer.
/// Must comfortably exceed the chunks a worker can have in flight
/// (job queue + processing + results queue ≈ 5) so the window only binds
/// under genuine skew, not in steady state.
const WINDOW_CHUNKS_PER_WORKER: u64 = 8;

impl Window {
    fn new() -> Self {
        Self {
            written: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Blocks until chunk `seq` is inside the window of `width` chunks
    /// past the writer's watermark. The watermark is a plain `u64`, so a
    /// poisoned lock (some thread panicked mid-update of a single store)
    /// is recovered, not propagated — see `crate::sync`.
    fn wait_for(&self, seq: u64, width: u64) {
        let mut written = lock_recover(&self.written, "window");
        while seq >= written.saturating_add(width) {
            written = wait_recover(&self.cv, written, "window");
        }
    }

    /// Advances the watermark (the writer, after flushing up to — not
    /// including — `next_seq`); `u64::MAX` on shutdown lifts the window
    /// entirely so the reader can never be left parked.
    fn advance(&self, next_seq: u64) {
        *lock_recover(&self.written, "window") = next_seq;
        self.cv.notify_all();
    }

    /// Blocks until every chunk below `seq` has been flushed — the pool
    /// quiesce point before an edge delta mutates the index. Shutdown
    /// lifts the window to `u64::MAX`, so this can never park forever.
    fn wait_drained(&self, seq: u64) {
        let mut written = lock_recover(&self.written, "window");
        while *written < seq {
            written = wait_recover(&self.cv, written, "window");
        }
    }
}

/// Reads, validates, chunks, and enqueues stdin pairs; runs on the
/// calling thread so input-order diagnostics need no cross-thread
/// coordination. Delta lines quiesce the pool and swap generations here,
/// between chunks, so the answer stream splits exactly at the delta.
#[allow(clippy::too_many_arguments)]
fn read_loop(
    handle: &GenerationHandle,
    updates: UpdateConfig,
    input: impl BufRead,
    job_tx: SyncSender<Job>,
    shutdown: &AtomicBool,
    window: &Window,
    workers: usize,
    metrics: &ServerMetrics,
) -> Result<(), String> {
    let n = handle.current().store.graph().num_vertices();
    let width = workers as u64 * WINDOW_CHUNKS_PER_WORKER;
    let mut seq = 0u64;
    let mut batch: Vec<(VertexId, VertexId, Instant)> = Vec::with_capacity(CHUNK);
    let mut engine: Option<UpdateEngine> = None;
    let mut result = Ok(());
    for (lineno, line) in input.lines().enumerate() {
        if shutdown.load(Ordering::Acquire) {
            return result; // stdout reader went away; stop consuming stdin
        }
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                // Fatal, as in sequential serving — but flush what was
                // already read through the pool first.
                result = Err(format!("reading stdin: {e}"));
                break;
            }
        };
        if let Some((op, rest)) = delta_op(&line) {
            // Quiesce: flush the partial chunk and wait until everything
            // enqueued so far is on the wire, so no in-flight chunk can
            // straddle the generation swap.
            if !batch.is_empty() {
                window.wait_for(seq, width);
                let full = std::mem::replace(&mut batch, Vec::with_capacity(CHUNK));
                if job_tx.send((seq, full)).is_err() {
                    return result;
                }
                seq += 1;
            }
            window.wait_drained(seq);
            if shutdown.load(Ordering::Acquire) {
                return result;
            }
            apply_stdin_delta(op, rest, lineno + 1, handle, &updates, &mut engine, metrics);
            continue;
        }
        let Some((u, v)) = validate_serve_pair(&line, lineno + 1, n, metrics) else {
            continue;
        };
        // Stamp at parse time: the recorded latency then covers queueing,
        // the query itself, and the in-order write — the same end-to-end
        // span the socket front end measures.
        batch.push((u, v, Instant::now()));
        if batch.len() == CHUNK {
            window.wait_for(seq, width);
            let full = std::mem::replace(&mut batch, Vec::with_capacity(CHUNK));
            if job_tx.send((seq, full)).is_err() {
                return result; // pool tore down; stop reading
            }
            seq += 1;
        }
    }
    if !batch.is_empty() {
        job_tx.send((seq, batch)).ok();
    }
    // Dropping job_tx closes the channel; workers drain and exit.
    result
}

/// Applies one `+u v` / `-u v` stdin line: incremental repair, persist,
/// publish as a new generation. The serve contract for bad lines holds —
/// a stderr diagnostic, a failure-counter bump, and the session continues
/// on the old state. The caller has already quiesced the pool.
fn apply_stdin_delta(
    op: hcl_core::DeltaOp,
    rest: &str,
    lineno: usize,
    handle: &GenerationHandle,
    updates: &UpdateConfig,
    engine: &mut Option<UpdateEngine>,
    metrics: &ServerMetrics,
) {
    let delta = match parse_delta_rest(op, rest, "stdin", lineno) {
        Ok(delta) => delta,
        Err(msg) => {
            metrics.update_failures.inc();
            eprintln!("error: {msg}");
            return;
        }
    };
    if engine.is_none() {
        let generation = handle.current();
        *engine = Some(UpdateEngine::from_store(
            &generation.store,
            updates.path.clone(),
            updates.compact_after,
        ));
    }
    let Some(eng) = engine.as_mut() else {
        return; // unreachable: the slot was just filled
    };
    match eng.apply(delta) {
        Ok(outcome) if !outcome.applied => {
            eprintln!("update stdin:{lineno}: {delta} is a no-op (edge state unchanged)");
        }
        Ok(_) => {
            let published = eng
                .persist()
                .and_then(|report| eng.fold_store().map(|store| (report, store)));
            match published {
                Ok((report, store)) => {
                    let generation = handle.swap(store);
                    metrics.updates_applied.inc();
                    if report.compacted {
                        metrics.compactions.inc();
                    }
                    eprintln!(
                        "update stdin:{lineno}: applied {delta}; now serving generation \
                         {generation}"
                    );
                }
                Err(e) => {
                    // The in-memory repair succeeded but publication
                    // failed: discard the engine so the next delta
                    // restarts from the generation actually being served.
                    *engine = None;
                    metrics.update_failures.inc();
                    eprintln!("error: stdin:{lineno}: publishing {delta} failed: {e}");
                }
            }
        }
        Err(e) => {
            metrics.update_failures.inc();
            eprintln!("error: stdin:{lineno}: {e}");
        }
    }
}

/// Claims chunks, answers them on a private context, formats the output
/// bytes. Skips the work (but keeps draining) once shutdown is flagged.
/// When a slow log is attached, every query runs with the stats probe and
/// over-threshold ones are logged here, with the parse → answer span as
/// the latency (the writer has not flushed yet, so the wire time is not
/// in it — but the slow part of a slow query is the queue and the query,
/// which are).
fn worker_loop(
    handle: &GenerationHandle,
    job_rx: &Mutex<Receiver<Job>>,
    res_tx: SyncSender<Chunk>,
    shutdown: &AtomicBool,
    slow_log: Option<&SlowLog>,
    worker: usize,
) {
    let mut ctx = QueryContext::new();
    loop {
        // Hold the lock only for the dequeue, never across query work. A
        // peer worker panicking mid-`recv` leaves the Receiver intact, so
        // recover the poisoned lock and keep serving.
        let job = lock_recover(job_rx, "job queue").recv();
        let (seq, pairs) = match job {
            Ok(job) => job,
            Err(_) => return, // reader dropped the channel: input exhausted
        };
        if shutdown.load(Ordering::Acquire) {
            continue; // drain without computing; nobody will write it
        }
        // One generation snapshot per chunk: the reader quiesces the pool
        // before swapping generations, so every chunk sees exactly the
        // generation that was current when it was enqueued, and a swap
        // can never unmap state under a running chunk.
        let generation = handle.current();
        let store = &generation.store;
        let graph = store.graph();
        let index = store.index();
        let mut buf = String::with_capacity(pairs.len() * 12);
        let mut stamps = Vec::with_capacity(pairs.len());
        for (u, v, stamp) in pairs {
            let answer = match slow_log {
                Some(log) => {
                    let mut stats = QueryStats::new();
                    let d = index.query_probed(graph, &mut ctx, u, v, &mut stats);
                    log.observe(&SlowQuery {
                        endpoint: "stdin",
                        u,
                        v,
                        dist: d,
                        latency: stamp.elapsed(),
                        stats: &stats,
                        worker,
                        generation: generation.number,
                    });
                    d
                }
                None => index.query_with(graph, &mut ctx, u, v),
            };
            push_answer_line(&mut buf, u, v, answer);
            stamps.push(stamp);
        }
        if res_tx.send((seq, buf, stamps)).is_err() {
            return; // writer gone (can only mean it panicked) — bail out
        }
    }
}

/// Writes chunks strictly in sequence order via a reorder buffer, flushing
/// per chunk and advancing the reader's flow-control watermark. **Any**
/// write error — broken pipe or fatal — flips the shutdown flag, lifts
/// the window, and keeps draining the results channel until it closes:
/// returning early instead would leave the job `Receiver` alive with
/// nobody recv'ing, wedging the reader in a full `job_tx.send` forever.
/// Fatal errors are reported after the drain.
fn writer_loop(
    output: impl Write,
    res_rx: Receiver<Chunk>,
    shutdown: &AtomicBool,
    window: &Window,
    metrics: &ServerMetrics,
) -> Result<ServeSummary, String> {
    let mut out = std::io::BufWriter::new(output);
    let mut pending: HashMap<u64, (String, Vec<Instant>)> = HashMap::new();
    let mut next_seq = 0u64;
    let mut served = 0u64;
    let mut closed = false;
    let mut fatal: Option<String> = None;

    while let Ok((seq, buf, stamps)) = res_rx.recv() {
        if closed || fatal.is_some() {
            continue; // draining: output is done, the pool is winding down
        }
        pending.insert(seq, (buf, stamps));
        while let Some((buf, stamps)) = pending.remove(&next_seq) {
            let res = out.write_all(buf.as_bytes()).and_then(|()| out.flush());
            match res {
                Ok(()) => {
                    // Latency is recorded only now, after the answers hit
                    // the wire: parse-stamp to flushed-write, the same
                    // end-to-end span the socket front end reports.
                    let now = Instant::now();
                    for stamp in &stamps {
                        metrics
                            .latency
                            .record(now.saturating_duration_since(*stamp));
                    }
                    served += stamps.len() as u64;
                    next_seq += 1;
                    window.advance(next_seq);
                }
                Err(e) => {
                    if e.kind() == ErrorKind::BrokenPipe {
                        closed = true;
                    } else {
                        fatal = Some(format!("writing output: {e}"));
                    }
                    shutdown.store(true, Ordering::Release);
                    pending.clear();
                    window.advance(u64::MAX); // never leave the reader parked
                    break;
                }
            }
        }
    }
    match fatal {
        Some(e) => Err(e),
        None => Ok(ServeSummary { served, closed }),
    }
}
