//! Request-latency histograms and serving counters.
//!
//! One [`LatencyHistogram`] underlies every serving mode — sequential
//! stdin, the pooled stdin workers, and the TCP/HTTP front end — so their
//! shutdown summaries report the **same fields in the same format** and
//! stay directly comparable. The histogram is log-linear (8 linear
//! sub-buckets per power-of-two octave of nanoseconds, ≤ 12.5 % relative
//! quantile error), lock-free (`AtomicU64` buckets, relaxed ordering), and
//! fixed-size (~2.6 KiB), so any number of worker threads can record into
//! a shared instance without coordination.
//!
//! [`ServerMetrics`] adds the counters the socket front end exposes on
//! `GET /metrics`: totals for requests, answers, malformed and
//! out-of-range requests, connections, backpressure rejections, client
//! disconnects, write timeouts, oversized lines, and index reloads. The
//! rendered format is Prometheus-style `name value` lines.

use hcl_index::AnswerSource;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// Linear sub-buckets per octave: values map to bucket by their top
/// `1 + SUB_BITS` mantissa bits, bounding relative error at
/// `2^-SUB_BITS` = 12.5 %.
const SUB_BITS: u32 = 3;
const SUBS: usize = 1 << SUB_BITS;
/// Octaves above the linear range: covers durations up to 2^42 ns ≈ 73 min,
/// far past anything a distance query can take.
const OCTAVES: usize = 40;
const NUM_BUCKETS: usize = SUBS + OCTAVES * SUBS;

/// A fixed-size, thread-safe, log-linear histogram of request latencies.
pub(crate) struct LatencyHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

/// Bucket index for a duration of `ns` nanoseconds.
fn bucket_of(ns: u64) -> usize {
    if ns < SUBS as u64 {
        return ns as usize;
    }
    let octave = 63 - ns.leading_zeros() as usize; // >= SUB_BITS
    let sub = ((ns >> (octave - SUB_BITS as usize)) & (SUBS as u64 - 1)) as usize;
    let idx = (octave - SUB_BITS as usize) * SUBS + sub + SUBS;
    idx.min(NUM_BUCKETS - 1)
}

/// Inclusive upper bound (in ns) of the values mapping to bucket `idx` —
/// the value quantiles report, so quantiles never under-estimate.
fn bucket_upper_ns(idx: usize) -> u64 {
    if idx < SUBS {
        return idx as u64;
    }
    let octave = (idx - SUBS) / SUBS + SUB_BITS as usize;
    let sub = ((idx - SUBS) % SUBS) as u64;
    ((SUBS as u64 + sub + 1) << (octave - SUB_BITS as usize)) - 1
}

impl LatencyHistogram {
    pub(crate) fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records one request latency. Lock-free; safe from any thread.
    pub(crate) fn record(&self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Recorded sample count.
    pub(crate) fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (0 < q <= 1) in microseconds, or `None` with no
    /// samples. Reported as the upper bound of the bucket holding the
    /// rank, so the true quantile is never under-reported and the error
    /// is bounded by the bucket width (≤ 12.5 % relative).
    pub(crate) fn quantile_us(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(bucket_upper_ns(idx) as f64 / 1_000.0);
            }
        }
        // Counter skew between count and buckets under concurrent
        // recording can land here; the last bucket is the honest answer.
        Some(bucket_upper_ns(NUM_BUCKETS - 1) as f64 / 1_000.0)
    }

    /// Mean latency in microseconds, or `None` with no samples.
    pub(crate) fn mean_us(&self) -> Option<f64> {
        let total = self.count();
        (total > 0).then(|| self.sum_ns.load(Ordering::Relaxed) as f64 / total as f64 / 1_000.0)
    }

    /// The one-line latency summary every serving mode prints at
    /// shutdown, and the format the CLI test suite pins:
    ///
    /// `latency: p50=1.2µs p90=3.4µs p99=5.6µs mean=1.8µs over 100 queries`
    ///
    /// `None` when nothing was recorded (an idle session prints no
    /// summary, matching the existing `served …` line's behaviour).
    pub(crate) fn summary_line(&self) -> Option<String> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        Some(format!(
            "latency: p50={:.1}µs p90={:.1}µs p99={:.1}µs mean={:.1}µs over {n} queries",
            self.quantile_us(0.50)?,
            self.quantile_us(0.90)?,
            self.quantile_us(0.99)?,
            self.mean_us()?,
        ))
    }
}

/// One monotonically increasing counter, exported under `name`.
pub(crate) struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
        }
    }

    pub(crate) fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds a whole batch at once (e.g. every delta a `POST /update`
    /// body applied).
    pub(crate) fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Every counter the socket front end maintains, plus the shared latency
/// histogram. All fields are updated lock-free from connection handlers.
pub(crate) struct ServerMetrics {
    /// Accepted TCP connections (including ones later rejected as busy).
    pub(crate) connections: Counter,
    /// Requests received on any transport (valid or not).
    pub(crate) requests: Counter,
    /// Answer lines / JSON answers successfully written.
    pub(crate) answers: Counter,
    /// Requests dropped because they did not parse as `u v`.
    pub(crate) malformed: Counter,
    /// Requests dropped because a vertex id was out of range.
    pub(crate) out_of_range: Counter,
    /// HTTP requests (a subset of `requests` for `/query`, plus the
    /// control/observability endpoints).
    pub(crate) http_requests: Counter,
    /// Connections turned away at admission because `--max-inflight`
    /// connections were already queued.
    pub(crate) busy_rejected: Counter,
    /// Connections that vanished mid-request (EOF with a partial line,
    /// reset, or any other terminal read error).
    pub(crate) disconnects: Counter,
    /// Connections dropped because a stalled client tripped the write
    /// timeout.
    pub(crate) write_timeouts: Counter,
    /// Connections dropped for exceeding the request-line size cap.
    pub(crate) oversized: Counter,
    /// Successful zero-downtime index reloads (generation swaps).
    pub(crate) reloads: Counter,
    /// Reload attempts that failed (the old generation stays live).
    pub(crate) reload_failures: Counter,
    /// Scrub passes that completed clean (live generation and reload
    /// source both verified).
    pub(crate) scrub_passes: Counter,
    /// Scrub passes that detected corruption (the server degrades).
    pub(crate) scrub_failures: Counter,
    /// Edge deltas applied through live updates (stdin `+u v` / `-u v`
    /// lines and `POST /update` bodies); no-op deltas are not counted.
    pub(crate) updates_applied: Counter,
    /// Update requests rejected (parse error, invalid delta, or a
    /// persistence failure — the previous generation stays live).
    pub(crate) update_failures: Counter,
    /// Journal folds triggered by `--compact-after` during live updates.
    pub(crate) compactions: Counter,
    /// Degradation gauge: non-zero while `/healthz` reports `degraded`
    /// (corruption detected by the scrubber, cleared by a clean scrub
    /// pass or a successful reload).
    pub(crate) degraded: AtomicU64,
    /// Answers resolved purely by the common-hub label merge.
    pub(crate) answers_label_hit: Counter,
    /// Answers where the highway cross-product tightened the label bound.
    pub(crate) answers_highway: Counter,
    /// Answers where the residual BFS beat the label/highway bound.
    pub(crate) answers_bfs: Counter,
    /// Trivial answers (`u == v`).
    pub(crate) answers_trivial: Counter,
    /// Queries whose endpoints are in different components.
    pub(crate) answers_disconnected: Counter,
    /// Connections currently being handled (gauge).
    pub(crate) inflight: AtomicI64,
    /// Per-request latency across all transports.
    pub(crate) latency: LatencyHistogram,
}

impl ServerMetrics {
    pub(crate) fn new() -> Self {
        Self {
            connections: Counter::new("hcl_connections_total"),
            requests: Counter::new("hcl_requests_total"),
            answers: Counter::new("hcl_answers_total"),
            malformed: Counter::new("hcl_malformed_total"),
            out_of_range: Counter::new("hcl_out_of_range_total"),
            http_requests: Counter::new("hcl_http_requests_total"),
            busy_rejected: Counter::new("hcl_busy_rejected_total"),
            disconnects: Counter::new("hcl_disconnects_total"),
            write_timeouts: Counter::new("hcl_write_timeouts_total"),
            oversized: Counter::new("hcl_oversized_total"),
            reloads: Counter::new("hcl_reloads_total"),
            reload_failures: Counter::new("hcl_reload_failures_total"),
            scrub_passes: Counter::new("hcl_scrub_passes_total"),
            scrub_failures: Counter::new("hcl_scrub_failures_total"),
            updates_applied: Counter::new("hcl_updates_applied_total"),
            update_failures: Counter::new("hcl_update_failures_total"),
            compactions: Counter::new("hcl_compactions_total"),
            degraded: AtomicU64::new(0),
            answers_label_hit: Counter::new("hcl_answers_label_hit_total"),
            answers_highway: Counter::new("hcl_answers_highway_total"),
            answers_bfs: Counter::new("hcl_answers_bfs_total"),
            answers_trivial: Counter::new("hcl_answers_trivial_total"),
            answers_disconnected: Counter::new("hcl_answers_disconnected_total"),
            inflight: AtomicI64::new(0),
            latency: LatencyHistogram::new(),
        }
    }

    /// Bumps the per-mechanism aggregate matching one query's
    /// [`AnswerSource`] (as classified by `hcl_index::QueryStats`).
    pub(crate) fn record_source(&self, source: AnswerSource) {
        match source {
            AnswerSource::LabelHit => self.answers_label_hit.inc(),
            AnswerSource::HighwayBound => self.answers_highway.inc(),
            AnswerSource::ResidualBfs => self.answers_bfs.inc(),
            AnswerSource::Trivial => self.answers_trivial.inc(),
            AnswerSource::Disconnected => self.answers_disconnected.inc(),
        }
    }

    /// Renders the `GET /metrics` body: Prometheus-style `name value`
    /// lines — every counter, the in-flight gauge, the current index
    /// generation, and the latency quantiles (omitted until the first
    /// sample, like every quantile exporter).
    pub(crate) fn render(&self, generation: u64) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(768);
        out.push_str("hcl_up 1\n");
        let _ = writeln!(out, "hcl_index_generation {generation}");
        for c in [
            &self.connections,
            &self.requests,
            &self.answers,
            &self.malformed,
            &self.out_of_range,
            &self.http_requests,
            &self.busy_rejected,
            &self.disconnects,
            &self.write_timeouts,
            &self.oversized,
            &self.reloads,
            &self.reload_failures,
            &self.scrub_passes,
            &self.scrub_failures,
            &self.updates_applied,
            &self.update_failures,
            &self.compactions,
            &self.answers_label_hit,
            &self.answers_highway,
            &self.answers_bfs,
            &self.answers_trivial,
            &self.answers_disconnected,
        ] {
            let _ = writeln!(out, "{} {}", c.name, c.get());
        }
        let _ = writeln!(
            out,
            "hcl_inflight_connections {}",
            self.inflight.load(Ordering::Relaxed).max(0)
        );
        let _ = writeln!(
            out,
            "hcl_degraded {}",
            self.degraded.load(Ordering::Relaxed).min(1)
        );
        // Process-global (see `crate::sync`): poison recoveries in the
        // stdin pool and slow log count here too.
        let _ = writeln!(
            out,
            "hcl_lock_poisoned_total {}",
            crate::sync::LOCK_POISONED.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "hcl_latency_samples {}", self.latency.count());
        for (q, label) in [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99")] {
            if let Some(us) = self.latency.quantile_us(q) {
                let _ = writeln!(out, "hcl_latency_us{{quantile=\"{label}\"}} {us:.1}");
            }
        }
        if let Some(us) = self.latency.mean_us() {
            let _ = writeln!(out, "hcl_latency_us_mean {us:.1}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_round_trip_and_bound_error() {
        for ns in [
            0u64,
            1,
            7,
            8,
            100,
            999,
            12_345,
            1_000_000,
            3_600_000_000_000,
        ] {
            let idx = bucket_of(ns);
            let upper = bucket_upper_ns(idx);
            assert!(upper >= ns, "upper {upper} < value {ns}");
            // ≤ 12.5 % relative over-report (exact in the linear range).
            assert!(
                upper as f64 <= ns as f64 * 1.125 + 1.0,
                "bucket too wide: {ns} -> {upper}"
            );
            if idx > 0 {
                assert!(bucket_upper_ns(idx - 1) < ns, "value below bucket floor");
            }
        }
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let h = LatencyHistogram::new();
        // 100 samples: 1µs ×90, 100µs ×9, 10ms ×1.
        for _ in 0..90 {
            h.record(Duration::from_micros(1));
        }
        for _ in 0..9 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(10));
        assert_eq!(h.count(), 100);

        let p50 = h.quantile_us(0.50).unwrap();
        assert!((1.0..=1.2).contains(&p50), "p50 = {p50}");
        let p90 = h.quantile_us(0.90).unwrap();
        assert!((1.0..=1.2).contains(&p90), "p90 = {p90}"); // rank 90 is still a 1µs sample
        let p99 = h.quantile_us(0.99).unwrap();
        assert!((100.0..=113.0).contains(&p99), "p99 = {p99}");
        let p100 = h.quantile_us(1.0).unwrap();
        assert!(p100 >= 10_000.0, "p100 = {p100}");
        let mean = h.mean_us().unwrap();
        assert!((100.0..=120.0).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn summary_line_pins_the_shared_format() {
        let h = LatencyHistogram::new();
        assert!(h.summary_line().is_none(), "idle sessions print no summary");
        for us in [1, 2, 3] {
            h.record(Duration::from_micros(us));
        }
        let line = h.summary_line().unwrap();
        assert!(line.starts_with("latency: p50="), "line = {line}");
        for field in [" p90=", " p99=", " mean=", "µs", " over 3 queries"] {
            assert!(line.contains(field), "missing {field} in {line}");
        }
    }

    #[test]
    fn render_exposes_counters_generation_and_quantiles() {
        let m = ServerMetrics::new();
        m.requests.inc();
        m.requests.inc();
        m.answers.inc();
        m.latency.record(Duration::from_micros(5));
        m.record_source(AnswerSource::LabelHit);
        m.record_source(AnswerSource::LabelHit);
        m.record_source(AnswerSource::ResidualBfs);
        let text = m.render(3);
        for needle in [
            "hcl_up 1\n",
            "hcl_index_generation 3\n",
            "hcl_requests_total 2\n",
            "hcl_answers_total 1\n",
            "hcl_busy_rejected_total 0\n",
            "hcl_answers_label_hit_total 2\n",
            "hcl_answers_highway_total 0\n",
            "hcl_answers_bfs_total 1\n",
            "hcl_answers_trivial_total 0\n",
            "hcl_answers_disconnected_total 0\n",
            "hcl_scrub_passes_total 0\n",
            "hcl_scrub_failures_total 0\n",
            "hcl_updates_applied_total 0\n",
            "hcl_update_failures_total 0\n",
            "hcl_compactions_total 0\n",
            "hcl_degraded 0\n",
            "hcl_latency_samples 1\n",
            "hcl_latency_us{quantile=\"0.99\"}",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
