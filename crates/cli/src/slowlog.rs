//! The slow-query log: one JSON line per over-threshold query, with the
//! probe's full work breakdown attached.
//!
//! Every serving mode (sequential stdin, pooled stdin, TCP/HTTP) shares
//! one [`SlowLog`]: the threshold comes from `--slow-log-us N`, the sink
//! is stderr unless `--slow-log-file` redirects it, and a token bucket
//! caps emission at [`MAX_LINES_PER_SEC`] so a pathological workload
//! (e.g. `--slow-log-us 0` on a firehose) degrades to sampling instead of
//! flooding the disk. Suppressed lines are counted and reported once at
//! shutdown.
//!
//! The line format is a single flat JSON object per line — stable keys,
//! numeric values except for the two mechanism tokens — so `jq`, `grep`,
//! and log shippers can consume it without configuration:
//!
//! ```json
//! {"endpoint":"stdin","u":0,"v":13,"dist":2,"latency_us":12,
//!  "source":"label-hit","merge":"linear","hub_entries":5,
//!  "highway_improvements":0,"bfs_nodes":0,"bfs_frontier_peak":0,
//!  "worker":0,"generation":1}
//! ```
//!
//! `dist` is `null` for disconnected pairs. `worker` is the serving
//! thread's index (0 for single-threaded modes); `generation` is the live
//! index generation (fixed at 1 for stdin modes, which cannot reload).

use crate::sync::lock_recover;
use hcl_index::QueryStats;
use std::io::Write;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Token-bucket rate: at most this many lines per second (with an equal
/// burst allowance), regardless of how many queries trip the threshold.
const MAX_LINES_PER_SEC: f64 = 1000.0;

/// One over-threshold query, ready to be formatted.
pub(crate) struct SlowQuery<'a> {
    /// Which front end served it: `"stdin"`, `"tcp"`, or `"http"`.
    pub(crate) endpoint: &'static str,
    pub(crate) u: u32,
    pub(crate) v: u32,
    /// The answer (`None` for disconnected pairs).
    pub(crate) dist: Option<u32>,
    pub(crate) latency: Duration,
    /// The probe's breakdown of where the answer came from.
    pub(crate) stats: &'a QueryStats,
    /// Serving thread index (0 for single-threaded modes).
    pub(crate) worker: usize,
    /// Live index generation when the query ran.
    pub(crate) generation: u64,
}

struct Inner {
    out: Box<dyn Write + Send>,
    tokens: f64,
    last_refill: Instant,
    dropped: u64,
}

/// Shared, thread-safe slow-query sink. Cheap to consult when the query
/// was fast: the threshold test happens before the lock is touched.
pub(crate) struct SlowLog {
    threshold: Duration,
    inner: Mutex<Inner>,
}

impl SlowLog {
    /// `threshold_us` comes straight from `--slow-log-us`; `out` is stderr
    /// or the `--slow-log-file` handle.
    pub(crate) fn new(threshold_us: u64, out: Box<dyn Write + Send>) -> Self {
        Self {
            threshold: Duration::from_micros(threshold_us),
            inner: Mutex::new(Inner {
                out,
                tokens: MAX_LINES_PER_SEC,
                last_refill: Instant::now(),
                dropped: 0,
            }),
        }
    }

    /// Logs the query if it is over threshold and the rate limiter has a
    /// token; otherwise returns immediately.
    pub(crate) fn observe(&self, q: &SlowQuery<'_>) {
        if q.latency < self.threshold {
            return;
        }
        let line = format_line(q);
        // Diagnostics must never take serving down: a poisoned lock (a
        // panic inside some other observe call) is recovered — the token
        // bucket state degrades gracefully no matter where the panic hit.
        let mut inner = lock_recover(&self.inner, "slow-log");
        let now = Instant::now();
        let elapsed = now.duration_since(inner.last_refill).as_secs_f64();
        inner.last_refill = now;
        inner.tokens = (inner.tokens + elapsed * MAX_LINES_PER_SEC).min(MAX_LINES_PER_SEC);
        if inner.tokens < 1.0 {
            inner.dropped += 1;
            return;
        }
        inner.tokens -= 1.0;
        // A sink error (disk full, closed fd) must never take the serving
        // path down; count the line as dropped and carry on.
        if inner.out.write_all(line.as_bytes()).is_err() || inner.out.flush().is_err() {
            inner.dropped += 1;
        }
    }

    /// Lines suppressed by the rate limiter (or lost to sink errors),
    /// reported once in the shutdown summary.
    pub(crate) fn dropped(&self) -> u64 {
        lock_recover(&self.inner, "slow-log").dropped
    }
}

/// Renders one slow-query record as a JSON line. All keys are fixed and
/// all values numeric except the two mechanism tokens, which come from
/// the closed sets in `hcl_index::{AnswerSource, MergeKind}` — nothing
/// needs escaping.
fn format_line(q: &SlowQuery<'_>) -> String {
    let dist = match q.dist {
        Some(d) => d.to_string(),
        None => "null".to_string(),
    };
    format!(
        concat!(
            "{{\"endpoint\":\"{}\",\"u\":{},\"v\":{},\"dist\":{},\"latency_us\":{},",
            "\"source\":\"{}\",\"merge\":\"{}\",\"hub_entries\":{},",
            "\"highway_improvements\":{},\"bfs_nodes\":{},\"bfs_frontier_peak\":{},",
            "\"worker\":{},\"generation\":{}}}\n"
        ),
        q.endpoint,
        q.u,
        q.v,
        dist,
        q.latency.as_micros(),
        q.stats.source.as_str(),
        q.stats.merge.as_str(),
        q.stats.hub_entries_scanned,
        q.stats.highway_improvements,
        q.stats.bfs_nodes_expanded,
        q.stats.bfs_frontier_peak,
        q.worker,
        q.generation,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A `Write` sink tests can read back.
    #[derive(Clone, Default)]
    struct Sink(Arc<StdMutex<Vec<u8>>>);

    impl Write for Sink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn sample_stats() -> QueryStats {
        use hcl_index::Probe as _;
        let mut s = QueryStats::new();
        s.merge_done(false, 5, 2);
        s.query_done(false, 2, 2);
        s
    }

    #[test]
    fn line_format_is_stable_and_null_for_disconnected() {
        let stats = sample_stats();
        let line = format_line(&SlowQuery {
            endpoint: "stdin",
            u: 0,
            v: 13,
            dist: Some(2),
            latency: Duration::from_micros(12),
            stats: &stats,
            worker: 0,
            generation: 1,
        });
        assert_eq!(
            line,
            "{\"endpoint\":\"stdin\",\"u\":0,\"v\":13,\"dist\":2,\"latency_us\":12,\
             \"source\":\"label-hit\",\"merge\":\"linear\",\"hub_entries\":5,\
             \"highway_improvements\":0,\"bfs_nodes\":0,\"bfs_frontier_peak\":0,\
             \"worker\":0,\"generation\":1}\n"
        );

        let line = format_line(&SlowQuery {
            endpoint: "http",
            u: 7,
            v: 9,
            dist: None,
            latency: Duration::from_micros(3),
            stats: &stats,
            worker: 2,
            generation: 4,
        });
        assert!(line.contains("\"dist\":null,"), "line = {line}");
        assert!(line.contains("\"worker\":2,\"generation\":4}"), "{line}");
    }

    #[test]
    fn threshold_filters_and_rate_limit_counts_drops() {
        let sink = Sink::default();
        let log = SlowLog::new(10, Box::new(sink.clone()));
        let stats = sample_stats();
        let mut q = SlowQuery {
            endpoint: "stdin",
            u: 1,
            v: 2,
            dist: Some(1),
            latency: Duration::from_micros(5),
            stats: &stats,
            worker: 0,
            generation: 1,
        };
        log.observe(&q); // under threshold: nothing written
        assert!(sink.0.lock().unwrap().is_empty());

        q.latency = Duration::from_micros(50);
        // Exhaust the burst and then some; the excess must be dropped,
        // counted, and never block.
        for _ in 0..(MAX_LINES_PER_SEC as usize + 100) {
            log.observe(&q);
        }
        let written = sink.0.lock().unwrap().clone();
        let lines = written.split(|&b| b == b'\n').filter(|l| !l.is_empty());
        assert!(lines.count() <= MAX_LINES_PER_SEC as usize + 1);
        assert!(log.dropped() >= 99, "dropped = {}", log.dropped());
    }
}
