//! Poison-recovering lock helpers for the serving path.
//!
//! A poisoned `Mutex` means some thread panicked while holding it. For
//! the serving structures in this crate (slow-log sink state, the pool's
//! flow-control window, the admission and job queues, the reload lock)
//! the protected data stays structurally valid across a panic — every
//! critical section either completes its writes or leaves independently
//! meaningful fields — so propagating the poison would only convert one
//! thread's failure into a whole-process outage. These helpers recover
//! the guard instead, count the event (exported as
//! `hcl_lock_poisoned_total` on `/metrics`), and log it once per
//! occurrence so the original panic stays visible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Times a lock was recovered from poisoning anywhere in the process.
/// Global rather than per-`ServerMetrics` so the stdin modes (which share
/// the slow log and pool but not a metrics registry) are counted too.
pub(crate) static LOCK_POISONED: AtomicU64 = AtomicU64::new(0);

fn note_poisoned(what: &str) {
    LOCK_POISONED.fetch_add(1, Ordering::Relaxed);
    eprintln!("warning: {what} lock was poisoned by a panicking thread; recovering");
}

/// Locks `mutex`, recovering (and counting) a poisoned guard. `what`
/// names the lock in the degradation log line.
pub(crate) fn lock_recover<'a, T>(mutex: &'a Mutex<T>, what: &str) -> MutexGuard<'a, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            note_poisoned(what);
            poisoned.into_inner()
        }
    }
}

/// Sleeps for `total`, waking every 25 ms to poll `stop`; returns `false`
/// as soon as `stop` is set (shutdown), `true` after a full sleep. Used by
/// the reload retry backoff and the scrubber interval so neither can hold
/// up a drain for longer than one tick.
pub(crate) fn sleep_unless(
    total: std::time::Duration,
    stop: &std::sync::atomic::AtomicBool,
) -> bool {
    const TICK: std::time::Duration = std::time::Duration::from_millis(25);
    let mut remaining = total;
    while !remaining.is_zero() {
        if stop.load(Ordering::Relaxed) {
            return false;
        }
        let step = remaining.min(TICK);
        std::thread::sleep(step);
        remaining = remaining.saturating_sub(step);
    }
    !stop.load(Ordering::Relaxed)
}

/// `Condvar::wait` with the same poison recovery as [`lock_recover`].
pub(crate) fn wait_recover<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    what: &str,
) -> MutexGuard<'a, T> {
    match cv.wait(guard) {
        Ok(guard) => guard,
        Err(poisoned) => {
            note_poisoned(what);
            poisoned.into_inner()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisoned_lock_is_recovered_and_counted() {
        let m = std::sync::Arc::new(Mutex::new(7u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        let before = LOCK_POISONED.load(Ordering::Relaxed);
        assert_eq!(*lock_recover(&m, "test"), 7);
        assert!(LOCK_POISONED.load(Ordering::Relaxed) > before);
        // Still usable afterwards.
        *lock_recover(&m, "test") = 8;
        assert_eq!(*lock_recover(&m, "test"), 8);
    }
}
