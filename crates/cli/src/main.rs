//! `hcl` — build a highway-cover labelling over an edge-list graph and
//! answer exact distance queries.
//!
//! ```text
//! hcl <graph.edges> [--landmarks K] [--queries FILE] [--random N --seed S]
//! ```
//!
//! The graph file holds one `u v` pair per line; blank lines and lines
//! starting with `#` are ignored. Queries come from `--queries FILE`, from
//! stdin (a hint is printed when stdin is a terminal), or are generated
//! uniformly at random with `--random N`. Each answer is printed as
//! `u v d` (`d` is `inf` for disconnected pairs). Timing and index
//! statistics go to stderr so stdout stays machine-readable.

use hcl_core::{bfs, Graph, GraphBuilder, VertexId};
use hcl_index::{HighwayCoverIndex, IndexConfig, QueryContext};
use std::io::{BufRead, IsTerminal, Write};
use std::process::ExitCode;
use std::time::Instant;

struct Options {
    graph_path: String,
    num_landmarks: usize,
    queries_path: Option<String>,
    random_queries: Option<usize>,
    seed: u64,
    verify: bool,
}

const USAGE: &str = "usage: hcl <graph.edges> [--landmarks K] [--queries FILE] \
     [--random N] [--seed S] [--verify]\n\
     \n\
     Answers exact shortest-path distance queries using a highway-cover\n\
     hub labelling. Query lines are `u v` pairs (file, or stdin when\n\
     --queries/--random are absent); answers are `u v d` on stdout.\n\
     --verify re-checks every answer against a BFS oracle.\n\
     --queries and --random are mutually exclusive.";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2)
}

fn help() -> ! {
    println!("{USAGE}");
    std::process::exit(0)
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        graph_path: String::new(),
        num_landmarks: 16,
        queries_path: None,
        random_queries: None,
        seed: 0xC0FFEE,
        verify: false,
    };
    let next_value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("error: {flag} expects a value");
            usage()
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--landmarks" | "-k" => {
                opts.num_landmarks = next_value(&mut args, "--landmarks")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--queries" | "-q" => opts.queries_path = Some(next_value(&mut args, "--queries")),
            "--random" => {
                opts.random_queries = Some(
                    next_value(&mut args, "--random")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--seed" => {
                opts.seed = next_value(&mut args, "--seed")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--verify" => opts.verify = true,
            "--help" | "-h" => help(),
            _ if opts.graph_path.is_empty() && !arg.starts_with('-') => opts.graph_path = arg,
            _ => {
                eprintln!("error: unrecognised argument `{arg}`");
                usage()
            }
        }
    }
    if opts.graph_path.is_empty() {
        usage();
    }
    if opts.queries_path.is_some() && opts.random_queries.is_some() {
        eprintln!("error: --queries and --random are mutually exclusive");
        usage();
    }
    opts
}

/// Parses `u v` pairs from a reader, ignoring blanks and `#` comments.
fn parse_pairs(reader: impl BufRead, what: &str) -> Result<Vec<(VertexId, VertexId)>, String> {
    let mut pairs = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("reading {what}: {e}"))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<VertexId, String> {
            tok.ok_or_else(|| format!("{what}:{}: expected two vertex ids", lineno + 1))?
                .parse()
                .map_err(|_| format!("{what}:{}: invalid vertex id", lineno + 1))
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        if it.next().is_some() {
            return Err(format!(
                "{what}:{}: expected exactly two vertex ids per line \
                 (weighted edge lists are not supported)",
                lineno + 1
            ));
        }
        pairs.push((u, v));
    }
    Ok(pairs)
}

fn load_graph(path: &str) -> Result<Graph, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
    let edges = parse_pairs(std::io::BufReader::new(file), path)?;
    let mut b = GraphBuilder::new();
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    Ok(b.build())
}

fn collect_queries(opts: &Options, n: usize) -> Result<Vec<(VertexId, VertexId)>, String> {
    if let Some(count) = opts.random_queries {
        if n == 0 {
            return Err("cannot generate random queries on an empty graph".into());
        }
        let mut rng = hcl_core::testkit::SplitMix64::new(opts.seed);
        return Ok((0..count)
            .map(|_| {
                (
                    rng.next_below(n as u64) as VertexId,
                    rng.next_below(n as u64) as VertexId,
                )
            })
            .collect());
    }
    if let Some(path) = &opts.queries_path {
        let file = std::fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
        return parse_pairs(std::io::BufReader::new(file), path);
    }
    let stdin = std::io::stdin();
    if stdin.is_terminal() {
        eprintln!("reading queries from stdin: one `u v` pair per line, Ctrl-D to finish");
    }
    parse_pairs(stdin.lock(), "stdin")
}

fn run() -> Result<(), String> {
    let opts = parse_args();

    let t0 = Instant::now();
    let graph = load_graph(&opts.graph_path)?;
    let load_time = t0.elapsed();

    let t1 = Instant::now();
    let index = HighwayCoverIndex::build(
        &graph,
        IndexConfig {
            num_landmarks: opts.num_landmarks,
        },
    );
    let build_time = t1.elapsed();
    let stats = index.stats();

    eprintln!(
        "graph: {} vertices, {} edges (loaded in {:.1?})",
        graph.num_vertices(),
        graph.num_edges(),
        load_time
    );
    eprintln!(
        "index: {} landmarks, {} label entries (avg {:.2}/vertex, max {}), \
         {:.1} KiB, built in {:.1?}",
        stats.num_landmarks,
        stats.total_label_entries,
        stats.avg_label_size,
        stats.max_label_size,
        stats.bytes as f64 / 1024.0,
        build_time
    );

    let queries = collect_queries(&opts, graph.num_vertices())?;
    let n = graph.num_vertices() as u64;
    for &(u, v) in &queries {
        if u as u64 >= n || v as u64 >= n {
            return Err(format!("query ({u}, {v}) out of range (n = {n})"));
        }
    }

    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut ctx = QueryContext::new();
    let t2 = Instant::now();
    let mut answers = Vec::with_capacity(queries.len());
    for &(u, v) in &queries {
        answers.push(index.query_with(&graph, &mut ctx, u, v));
    }
    let query_time = t2.elapsed();

    for (&(u, v), &d) in queries.iter().zip(&answers) {
        match d {
            Some(d) => writeln!(out, "{u} {v} {d}"),
            None => writeln!(out, "{u} {v} inf"),
        }
        .map_err(|e| format!("writing output: {e}"))?;
    }
    out.flush().map_err(|e| format!("writing output: {e}"))?;

    if !queries.is_empty() {
        eprintln!(
            "queries: {} answered in {:.1?} ({:.2} µs/query)",
            queries.len(),
            query_time,
            query_time.as_secs_f64() * 1e6 / queries.len() as f64
        );
    }

    if opts.verify {
        let t3 = Instant::now();
        for (&(u, v), &d) in queries.iter().zip(&answers) {
            let oracle = bfs::distance(&graph, u, v);
            if d != oracle {
                return Err(format!(
                    "VERIFICATION FAILED: query ({u}, {v}) = {d:?}, BFS oracle says {oracle:?}"
                ));
            }
        }
        eprintln!(
            "verify: all {} answers match the BFS oracle ({:.1?})",
            queries.len(),
            t3.elapsed()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
