//! `hcl` — build, persist, inspect, and serve highway-cover distance
//! indexes.
//!
//! ```text
//! hcl build <graph.edges> [--out FILE.hcl] [--landmarks K] [--strategy S]
//!           [--progress]
//! hcl query (--index FILE.hcl [--trusted] | <graph.edges> [--landmarks K]
//!           [--strategy S]) [--queries FILE | --random N] [--seed S]
//!           [--workers W] [--verify] [--explain]
//! hcl serve (--index FILE.hcl [--trusted] | <graph.edges> [--landmarks K]
//!           [--strategy S]) [--workers W] [--compact-after N]
//!           [--slow-log-us N] [--quiet]
//! hcl update <FILE.hcl> [--deltas FILE] [--compact-after N] [--compact]
//! hcl inspect <FILE.hcl> [--stats]
//! ```
//!
//! `build` parses a whitespace `u v` edge list (blank lines and `#`/`%`
//! comment lines are skipped), runs the labelling once, and writes a
//! versioned, checksummed `.hcl` container. `query --index` and `serve
//! --index` memory-map that container and answer queries with **no
//! rebuild and no deserialisation** — the serving path the paper's scheme
//! exists for; `--trusted` skips the whole-file checksum pass for files a
//! trusted pipeline stage just wrote, and `--workers` fans the workload
//! out over a thread pool sharing the single mapped index (output stays
//! byte-identical to the sequential path — see the `pool` module).
//! `inspect` dumps header metadata and the section table.
//!
//! Invoking `hcl <graph.edges> …` without a subcommand keeps the original
//! build-in-memory-and-query behaviour for compatibility.
//!
//! Answers are printed as `u v d` (`d` is `inf` for disconnected pairs) on
//! stdout; timing and index statistics go to stderr so stdout stays
//! machine-readable. `--verify` re-checks every answer against the BFS
//! oracle, regardless of backing.

// The only unsafe in this binary is the POSIX `signal(2)` FFI, confined
// to `server::sig` behind a scoped allow; everything else is checked.
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

mod metrics;
mod pool;
mod scrub;
mod server;
mod slowlog;
mod sync;
mod update;

use hcl_core::{bfs, EdgeDelta, Graph, GraphBuilder, GraphView, VertexId};
use hcl_index::{
    BuildOptions, HighwayCoverIndex, IndexView, QueryContext, QueryStats, SelectionStrategy,
};
use hcl_store::IndexStore;
use std::io::{BufRead, ErrorKind, IsTerminal, Write};
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage: hcl <command> [args]\n\
     \n\
     commands:\n\
       build <graph.edges> [--out FILE.hcl] [--landmarks K] [--threads T]\n\
             [--batch B] [--strategy S] [--progress]\n\
           Build the highway-cover index once and persist it (default\n\
           output: <graph.edges>.hcl). --threads shards the landmark\n\
           searches over T worker threads (default: HCL_BUILD_THREADS or\n\
           all available cores); the output is byte-identical at every\n\
           thread count. --batch sets landmarks per batch (advanced;\n\
           changes the labelling shape, not its exactness). --strategy\n\
           picks how landmarks are chosen: degree-rank (default),\n\
           approx-coverage[:seed], or seeded-random[:seed] (default:\n\
           HCL_BUILD_STRATEGY, else degree-rank); the choice is recorded\n\
           in the container header and shown by inspect. --progress\n\
           streams per-phase timing lines (selection, each landmark\n\
           batch, highway closure) to stderr while the build runs. Build\n\
           counters (BFS visits, domination prunes, per-landmark label\n\
           contributions) are always recorded in the container and shown\n\
           by inspect --stats.\n\
       query (--index FILE.hcl [--trusted] | <graph.edges> [--landmarks K]\n\
             [--threads T] [--strategy S]) [--queries FILE | --random N]\n\
             [--seed S] [--workers W] [--verify] [--explain]\n\
           Answer `u v` distance queries. With --index the saved container\n\
           is memory-mapped and served zero-copy — no rebuild; --trusted\n\
           additionally skips the whole-file checksum pass (for files this\n\
           pipeline just wrote). Queries come from --queries, --random, or\n\
           stdin; answers are `u v d` lines (`inf` when disconnected), in\n\
           input order regardless of --workers. Out-of-range ids are\n\
           reported with their source line and skipped. --workers W\n\
           answers the workload on W threads sharing one index (0 = all\n\
           cores). --verify re-checks against a BFS oracle. --explain\n\
           prints one per-query trace line to stderr (answer source,\n\
           merge kind, hub entries scanned, residual-BFS work); stdout\n\
           stays byte-identical to a run without it. --explain answers\n\
           sequentially, so it ignores --workers.\n\
       serve (--index FILE.hcl [--trusted] | <graph.edges> [--landmarks K]\n\
             [--threads T] [--strategy S]) [--workers W] [--listen ADDR]\n\
             [--max-inflight N] [--write-timeout-ms MS]\n\
             [--reload-signal hup|usr1|none] [--reload-retries N]\n\
             [--reload-backoff-ms MS] [--scrub-interval-s N]\n\
             [--slow-log-us N] [--slow-log-file F] [--quiet]\n\
           Serving loop: read `u v` per line on stdin. With --workers 1\n\
           (default) answers are flushed per line; --workers W > 1 runs a\n\
           thread pool over the shared index, reading stdin in chunks and\n\
           writing answers in input order (byte-identical to --workers 1,\n\
           flushed per chunk — a throughput mode; 0 = all cores). Bad\n\
           lines are reported and skipped; a closed stdout (e.g. `| head`)\n\
           is a clean shutdown. Both modes end with a latency summary\n\
           (p50/p90/p99/mean) on stderr.\n\
           --listen ADDR serves sockets instead of stdin: newline `u v`\n\
           requests answered as `u v d` lines, plus HTTP GET /query?s=&t=,\n\
           /healthz, /metrics, and /reload (zero-downtime generation swap\n\
           of the --index file; also triggered by --reload-signal, default\n\
           hup). --workers handler threads (default: all cores) serve one\n\
           connection each; beyond --max-inflight queued connections\n\
           (default 1024) new connects are rejected busy; answers that\n\
           stall past --write-timeout-ms (default 30000) drop that\n\
           connection. SIGTERM/SIGINT or stdin EOF drains gracefully.\n\
           A failed reload retries up to --reload-retries times (default\n\
           0) with exponential backoff starting at --reload-backoff-ms\n\
           (default 100); all attempts are serialised, and the old\n\
           generation serves throughout. --scrub-interval-s N (default\n\
           0 = off) runs a background integrity scrubber every N seconds\n\
           re-checksumming the live generation and the --index file;\n\
           detected corruption turns /healthz into 503 `degraded` (queries\n\
           keep flowing) until a clean pass or good reload clears it.\n\
           --slow-log-us N logs every query slower than N µs as one JSON\n\
           line (endpoints, latency, trace fields, worker, generation) to\n\
           stderr, or to F with --slow-log-file (rate-limited; drops are\n\
           counted and reported at shutdown). --quiet suppresses the\n\
           stderr latency summary line; diagnostics and exit codes are\n\
           unchanged.\n\
           Live edge updates: a stdin line `+u v` inserts the edge (u, v)\n\
           and `-u v` deletes it — the index is repaired incrementally\n\
           (no rebuild), answers after the line reflect the edit, and\n\
           with --index the journalled container is written back to disk.\n\
           In listen mode, POST /update with a body of such lines does\n\
           the same atomically (in-flight queries finish on the old\n\
           generation). --compact-after N folds the journal into the\n\
           base sections once N deltas accumulate (0 = never, default).\n\
       update <FILE.hcl> [--deltas FILE] [--compact-after N] [--compact]\n\
              [--trusted]\n\
           Apply a script of `+u v` / `-u v` edge deltas to a saved\n\
           container offline, repairing the labels incrementally (no\n\
           rebuild) and journalling the deltas for crash-safe replay at\n\
           open. Deltas come from --deltas FILE or stdin; every\n\
           non-comment line must be a delta (strict, unlike serve).\n\
           --compact folds the journal into the base sections now;\n\
           --compact-after N folds automatically once N deltas are\n\
           pending. --trusted skips the open-time checksum pass.\n\
       inspect <FILE.hcl> [--stats]\n\
           Print header metadata, build statistics, journal state\n\
           (pending deltas, size, compactions — format v6+), and the\n\
           section table.\n\
           --stats adds the label-size histogram (p50/p99/max entries per\n\
           vertex), the top hubs by label frequency, and the recorded\n\
           build counters (BFS visits, domination cut rate, per-landmark\n\
           contributions) when the container carries them (format v5+).\n\
     \n\
     `hcl <graph.edges> [query flags]` (no subcommand) behaves like\n\
     `hcl query <graph.edges>`.";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2)
}

fn help() -> ! {
    println!("{USAGE}");
    std::process::exit(0)
}

// ---------------------------------------------------------------------------
// Edge-list / query-pair parsing
// ---------------------------------------------------------------------------

/// Parses `u v` pairs from a reader.
///
/// Blank lines and comment lines starting with `#` or `%` (METIS/DIMACS
/// style) are skipped. Every malformed line is reported as
/// `<source>:<line>: <problem>`, quoting the offending token, instead of a
/// bare parse panic.
fn parse_pairs(reader: impl BufRead, what: &str) -> Result<Vec<(VertexId, VertexId)>, String> {
    Ok(parse_pairs_numbered(reader, what)?
        .into_iter()
        .map(|(_, u, v)| (u, v))
        .collect())
}

/// [`parse_pairs`], keeping each pair's 1-based source line so later
/// diagnostics (e.g. out-of-range vertex ids, which parsing cannot detect
/// because it does not know the graph) can still point at the input.
fn parse_pairs_numbered(
    reader: impl BufRead,
    what: &str,
) -> Result<Vec<(usize, VertexId, VertexId)>, String> {
    let mut pairs = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("reading {what}: {e}"))?;
        if let Some((u, v)) = parse_pair_line(&line, what, lineno + 1)? {
            pairs.push((lineno + 1, u, v));
        }
    }
    Ok(pairs)
}

/// Parses one line; `Ok(None)` for blanks and comments.
pub(crate) fn parse_pair_line(
    line: &str,
    what: &str,
    lineno: usize,
) -> Result<Option<(VertexId, VertexId)>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
        return Ok(None);
    }
    let mut it = line.split_whitespace();
    let parse = |tok: Option<&str>| -> Result<VertexId, String> {
        let tok = tok.ok_or_else(|| format!("{what}:{lineno}: expected two vertex ids"))?;
        tok.parse().map_err(|_| {
            format!("{what}:{lineno}: invalid vertex id `{tok}` (expected a non-negative integer)")
        })
    };
    let u = parse(it.next())?;
    let v = parse(it.next())?;
    if let Some(extra) = it.next() {
        return Err(format!(
            "{what}:{lineno}: unexpected trailing token `{extra}` — expected exactly two vertex \
             ids per line (weighted edge lists are not supported)"
        ));
    }
    Ok(Some((u, v)))
}

fn load_graph(path: &str) -> Result<Graph, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
    let edges = parse_pairs(std::io::BufReader::new(file), path)?;
    let mut b = GraphBuilder::new();
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    Ok(b.build())
}

// ---------------------------------------------------------------------------
// Shared option plumbing
// ---------------------------------------------------------------------------

fn next_value(args: &mut std::vec::IntoIter<String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("error: {flag} expects a value");
        usage()
    })
}

fn parse_or_usage<T: std::str::FromStr>(value: String, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid value for {flag}: `{value}`");
        usage()
    })
}

/// Parses a `--strategy name[:seed]` value, exiting with the detailed
/// parse error (not the generic invalid-value line) on failure, since the
/// strategy grammar is richer than a plain number.
fn parse_strategy_or_usage(value: String) -> SelectionStrategy {
    SelectionStrategy::parse(&value).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        usage()
    })
}

/// Default landmark count when `--landmarks` is not passed.
const DEFAULT_LANDMARKS: usize = 16;

/// One-line heads-up when an **explicitly requested** landmark count is
/// silently clamped: the index that gets built (and persisted) has fewer
/// landmarks than asked for, which would otherwise only surface in
/// inspect output much later. The built-in default clamping on small
/// graphs is expected behaviour and stays quiet — the user never asked
/// for 16.
fn resolve_landmarks(requested: Option<usize>, n: usize) -> usize {
    match requested {
        Some(k) => {
            if k > n {
                eprintln!(
                    "warning: requested {k} landmarks but the graph has {n} vertices; \
                     building with {n}"
                );
            }
            k
        }
        None => DEFAULT_LANDMARKS,
    }
}

/// Builder thread count: explicit `--threads` wins, then the
/// `HCL_BUILD_THREADS` environment variable, then every available core.
/// The count never changes the built index, only how fast it appears.
fn resolve_build_threads(explicit: Option<usize>) -> usize {
    explicit.filter(|&t| t > 0).unwrap_or_else(|| {
        BuildOptions::threads_from_env(std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// Serving worker count: `--workers 0` means every available core;
/// absent means 1 (the sequential path). Never changes any answer or any
/// output byte, only throughput.
fn resolve_workers(explicit: Option<usize>) -> usize {
    match explicit {
        Some(0) => std::thread::available_parallelism().map_or(1, |n| n.get()),
        Some(w) => w,
        None => 1,
    }
}

/// Result of writing one answer line to stdout.
enum AnswerSink {
    /// Written (and flushed, where the caller asked for it).
    Written,
    /// The reader closed the pipe (e.g. `hcl serve … | head`). Not an
    /// error: the caller should stop producing output and shut down
    /// cleanly, keeping its stderr summary.
    Closed,
}

/// Writes one `u v d` answer line, treating a broken pipe as a clean
/// end-of-output signal instead of a fatal error.
fn write_answer(
    out: &mut impl Write,
    u: VertexId,
    v: VertexId,
    d: Option<u32>,
    flush: bool,
) -> Result<AnswerSink, String> {
    // One formatter for every path — the pool's byte-identity guarantee
    // rests on sequential and pooled serving sharing it.
    let mut line = String::new();
    pool::push_answer_line(&mut line, u, v, d);
    let res = out
        .write_all(line.as_bytes())
        .and_then(|()| if flush { out.flush() } else { Ok(()) });
    match res {
        Ok(()) => Ok(AnswerSink::Written),
        Err(e) if e.kind() == ErrorKind::BrokenPipe => Ok(AnswerSink::Closed),
        Err(e) => Err(format!("writing output: {e}")),
    }
}

/// Parses and range-checks one serve-loop input line; `None` for blanks,
/// comments, and diagnosed-and-skipped bad lines (the serve contract:
/// report to stderr, keep serving). Shared by the sequential loop and the
/// worker pool's reader so diagnostics stay identical across `--workers`
/// counts. Skips are tallied in the shared metrics counters (the same
/// `hcl_malformed_total` / `hcl_out_of_range_total` the socket server
/// exports) so the shutdown summary can report them.
pub(crate) fn validate_serve_pair(
    line: &str,
    lineno: usize,
    n: usize,
    metrics: &metrics::ServerMetrics,
) -> Option<(VertexId, VertexId)> {
    let (u, v) = match parse_pair_line(line, "stdin", lineno) {
        Ok(Some(pair)) => pair,
        Ok(None) => return None,
        Err(msg) => {
            metrics.malformed.inc();
            eprintln!("error: {msg}");
            return None;
        }
    };
    if u as usize >= n || v as usize >= n {
        metrics.out_of_range.inc();
        eprintln!("error: stdin:{lineno}: query ({u}, {v}) out of range (n = {n}); skipped");
        return None;
    }
    Some((u, v))
}

/// One stderr line summarising skipped input, or `None` when nothing was
/// skipped (the common case stays silent). Printed separately from the
/// pinned latency summary line, whose field count is part of the CLI
/// contract.
fn skipped_summary(metrics: &metrics::ServerMetrics) -> Option<String> {
    let malformed = metrics.malformed.get();
    let out_of_range = metrics.out_of_range.get();
    (malformed + out_of_range > 0)
        .then(|| format!("skipped: {malformed} malformed, {out_of_range} out of range"))
}

/// Where the graph + index come from: built in memory from an edge list, or
/// served from a persisted container.
enum Source {
    Built {
        graph: Graph,
        index: HighwayCoverIndex,
    },
    // Boxed: an IndexStore (with its replay state) dwarfs the built pair,
    // and `Source` moves through several call frames by value.
    Stored(Box<IndexStore>),
}

impl Source {
    fn views(&self) -> (GraphView<'_>, IndexView<'_>) {
        match self {
            Source::Built { graph, index } => (graph.as_view(), index.as_view()),
            Source::Stored(store) => (store.graph(), store.index()),
        }
    }

    /// Loads and reports to stderr: either build-from-edge-list or
    /// mmap-from-container. `trusted` skips the container's whole-file
    /// checksum pass (structural and semantic validation still run);
    /// `selection` picks the landmark strategy for the build-from-edge-
    /// list forms (`None` = `HCL_BUILD_STRATEGY`, else degree ranking).
    fn prepare(
        index_path: Option<&str>,
        graph_path: Option<&str>,
        num_landmarks: Option<usize>,
        threads: usize,
        trusted: bool,
        selection: Option<SelectionStrategy>,
    ) -> Result<Self, String> {
        match (index_path, graph_path) {
            (Some(path), None) => {
                let t0 = Instant::now();
                let store = if trusted {
                    IndexStore::open_trusted(path)
                } else {
                    IndexStore::open(path)
                }
                .map_err(|e| format!("opening {path}: {e}"))?;
                let load_time = t0.elapsed();
                let meta = store.meta();
                eprintln!(
                    "index file: {} vertices, {} edges, {} landmarks, {} label entries \
                     ({:.1} KiB file, {} backing, loaded+{} in {:.1?}, no rebuild)",
                    meta.num_vertices,
                    meta.num_edges,
                    meta.num_landmarks,
                    meta.label_entries,
                    store.len_bytes() as f64 / 1024.0,
                    store.backing_kind(),
                    if trusted {
                        "trusted (checksum skipped)"
                    } else {
                        "validated"
                    },
                    load_time
                );
                Ok(Source::Stored(Box::new(store)))
            }
            (None, Some(path)) => {
                let t0 = Instant::now();
                let graph = load_graph(path)?;
                let load_time = t0.elapsed();
                let num_landmarks = resolve_landmarks(num_landmarks, graph.num_vertices());
                let options = BuildOptions {
                    num_landmarks,
                    threads,
                    batch_size: 0,
                    selection,
                };
                let t1 = Instant::now();
                let index = HighwayCoverIndex::build_with(&graph, &options);
                let build_time = t1.elapsed();
                let stats = index.stats();
                eprintln!(
                    "graph: {} vertices, {} edges (loaded in {:.1?})",
                    graph.num_vertices(),
                    graph.num_edges(),
                    load_time
                );
                eprintln!(
                    "index: {} landmarks, {} label entries (avg {:.2}/vertex, max {}), \
                     {:.1} KiB, built in {:.1?} with {threads} thread(s), strategy {}",
                    stats.num_landmarks,
                    stats.total_label_entries,
                    stats.avg_label_size,
                    stats.max_label_size,
                    stats.bytes as f64 / 1024.0,
                    build_time,
                    options.resolved_selection()
                );
                Ok(Source::Built { graph, index })
            }
            (Some(_), Some(g)) => Err(format!(
                "pass either --index or an edge-list path, not both (got `{g}` too)"
            )),
            (None, None) => Err("no input: pass --index FILE.hcl or an edge-list path".into()),
        }
    }

    /// Converts into the owned [`IndexStore`] the socket server hands out
    /// through its generation handle. Stored sources pass straight
    /// through; built ones are serialised once into an in-memory
    /// container image (trusted: these bytes were produced in-process,
    /// so a CRC pass over them proves nothing).
    fn into_store(self) -> Result<IndexStore, String> {
        match self {
            Source::Stored(store) => Ok(*store),
            Source::Built { graph, index } => {
                let bytes = hcl_store::serialize(&graph, &index)
                    .map_err(|e| format!("serialising built index: {e}"))?;
                IndexStore::from_bytes_trusted(&bytes)
                    .map_err(|e| format!("re-opening built index image: {e}"))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// hcl build
// ---------------------------------------------------------------------------

fn cmd_build(args: Vec<String>) -> Result<(), String> {
    let mut graph_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut num_landmarks: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut batch_size = 0usize;
    let mut selection: Option<SelectionStrategy> = None;
    let mut progress = false;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" | "-o" => out_path = Some(next_value(&mut args, "--out")),
            "--progress" => progress = true,
            "--landmarks" | "-k" => {
                num_landmarks = Some(parse_or_usage(
                    next_value(&mut args, "--landmarks"),
                    "--landmarks",
                ))
            }
            "--threads" | "-t" => {
                threads = Some(parse_or_usage(
                    next_value(&mut args, "--threads"),
                    "--threads",
                ))
            }
            "--batch" => batch_size = parse_or_usage(next_value(&mut args, "--batch"), "--batch"),
            "--strategy" | "-s" => {
                selection = Some(parse_strategy_or_usage(next_value(&mut args, "--strategy")))
            }
            "--help" | "-h" => help(),
            _ if graph_path.is_none() && !arg.starts_with('-') => graph_path = Some(arg),
            _ => {
                eprintln!("error: unrecognised argument `{arg}`");
                usage()
            }
        }
    }
    let graph_path = graph_path.unwrap_or_else(|| {
        eprintln!("error: build needs an edge-list path");
        usage()
    });
    let out_path = out_path.unwrap_or_else(|| format!("{graph_path}.hcl"));

    let t0 = Instant::now();
    let graph = load_graph(&graph_path)?;
    let load_time = t0.elapsed();
    let options = BuildOptions {
        num_landmarks: resolve_landmarks(num_landmarks, graph.num_vertices()),
        threads: resolve_build_threads(threads),
        batch_size,
        selection,
    };
    let t1 = Instant::now();
    let mut progress_sink = |line: String| eprintln!("{line}");
    let (index, build_stats) = HighwayCoverIndex::build_with_stats(
        &graph,
        &options,
        progress.then_some(&mut progress_sink as &mut dyn FnMut(String)),
    );
    let build_time = t1.elapsed();
    let stats = index.stats();
    let t2 = Instant::now();
    let build_info = hcl_store::BuildInfo {
        threads: options.threads as u32,
        batch_size: options.resolved_batch_size() as u32,
        strategy: options.resolved_selection(),
    };
    // The container always carries the build counters (they are
    // deterministic — independent of thread count — so persisted output
    // stays byte-identical at every --threads value). Wall times are
    // not persisted: they would break that identity.
    let stored_stats = hcl_store::StoredBuildStats::from_build(&build_stats);
    let bytes = hcl_store::save_with_stats(&out_path, &graph, &index, build_info, &stored_stats)
        .map_err(|e| format!("writing {out_path}: {e}"))?;
    let save_time = t2.elapsed();

    if progress {
        eprintln!(
            "phases: selection {}µs, searches {}µs over {} batch(es), merge {}µs, closure {}µs",
            build_stats.selection_us,
            build_stats.batch_us.iter().sum::<u64>(),
            build_stats.batch_us.len(),
            build_stats.merge_us,
            build_stats.closure_us
        );
        eprintln!(
            "pruning: {} BFS visits, {} label insertions, {} dominated ({:.1}% cut)",
            build_stats.bfs_visits,
            build_stats.label_insertions,
            build_stats.dominated,
            build_stats.domination_cut_rate() * 100.0
        );
    }

    eprintln!(
        "graph: {} vertices, {} edges (loaded in {:.1?})",
        graph.num_vertices(),
        graph.num_edges(),
        load_time
    );
    eprintln!(
        "index: {} landmarks, {} label entries (avg {:.2}/vertex, max {}), built in {:.1?} \
         with {} thread(s), batch {}, strategy {}",
        stats.num_landmarks,
        stats.total_label_entries,
        stats.avg_label_size,
        stats.max_label_size,
        build_time,
        build_info.threads,
        build_info.batch_size,
        build_info.strategy
    );
    eprintln!(
        "wrote {out_path}: {bytes} bytes ({:.1} KiB) in {:.1?}",
        bytes as f64 / 1024.0,
        save_time
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// hcl query  (also the legacy no-subcommand mode)
// ---------------------------------------------------------------------------

struct QueryOptions {
    index_path: Option<String>,
    graph_path: Option<String>,
    /// `Some` only when `--landmarks` was passed explicitly, so serving
    /// from a stored index can reject the flag instead of ignoring it.
    num_landmarks: Option<usize>,
    /// Same deal for `--threads` (build-time only).
    threads: Option<usize>,
    /// And for `--strategy` (build-time only; the stored index already
    /// has its landmarks).
    strategy: Option<SelectionStrategy>,
    queries_path: Option<String>,
    random_queries: Option<usize>,
    seed: u64,
    verify: bool,
    /// Query-pool worker threads (`--workers`); `Some(0)` = all cores.
    workers: Option<usize>,
    /// Skip the container checksum pass (`--trusted`; `--index` only).
    trusted: bool,
    /// Print a per-query trace line to stderr (`--explain`). Stdout stays
    /// byte-identical to a run without the flag.
    explain: bool,
}

fn parse_query_args(args: Vec<String>) -> QueryOptions {
    let mut opts = QueryOptions {
        index_path: None,
        graph_path: None,
        num_landmarks: None,
        threads: None,
        strategy: None,
        queries_path: None,
        random_queries: None,
        seed: 0xC0FFEE,
        verify: false,
        workers: None,
        trusted: false,
        explain: false,
    };
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--index" | "-i" => opts.index_path = Some(next_value(&mut args, "--index")),
            "--landmarks" | "-k" => {
                opts.num_landmarks = Some(parse_or_usage(
                    next_value(&mut args, "--landmarks"),
                    "--landmarks",
                ))
            }
            "--threads" | "-t" => {
                opts.threads = Some(parse_or_usage(
                    next_value(&mut args, "--threads"),
                    "--threads",
                ))
            }
            "--strategy" => {
                opts.strategy = Some(parse_strategy_or_usage(next_value(&mut args, "--strategy")))
            }
            "--queries" | "-q" => opts.queries_path = Some(next_value(&mut args, "--queries")),
            "--random" => {
                opts.random_queries = Some(parse_or_usage(
                    next_value(&mut args, "--random"),
                    "--random",
                ))
            }
            "--seed" => opts.seed = parse_or_usage(next_value(&mut args, "--seed"), "--seed"),
            "--verify" => opts.verify = true,
            "--workers" | "-w" => {
                opts.workers = Some(parse_or_usage(
                    next_value(&mut args, "--workers"),
                    "--workers",
                ))
            }
            "--trusted" => opts.trusted = true,
            "--explain" => opts.explain = true,
            "--help" | "-h" => help(),
            _ if opts.graph_path.is_none() && !arg.starts_with('-') => opts.graph_path = Some(arg),
            _ => {
                eprintln!("error: unrecognised argument `{arg}`");
                usage()
            }
        }
    }
    if opts.queries_path.is_some() && opts.random_queries.is_some() {
        eprintln!("error: --queries and --random are mutually exclusive");
        usage();
    }
    if opts.index_path.is_some()
        && (opts.num_landmarks.is_some() || opts.threads.is_some() || opts.strategy.is_some())
    {
        eprintln!(
            "error: --landmarks/--threads/--strategy only apply when building from an edge list"
        );
        usage();
    }
    if opts.trusted && opts.index_path.is_none() {
        eprintln!("error: --trusted only applies when serving from --index");
        usage();
    }
    opts
}

/// Renders one `--explain` trace line. The format is pinned by the CLI
/// test suite: fixed key order, `inf` for disconnected pairs, mechanism
/// tokens from the closed sets in `hcl_index::{AnswerSource, MergeKind}`.
fn explain_line(u: VertexId, v: VertexId, d: Option<u32>, stats: &QueryStats) -> String {
    let dist = match d {
        Some(d) => d.to_string(),
        None => "inf".to_string(),
    };
    format!(
        "explain: ({u}, {v}) -> {dist} source={} merge={} hub_entries={} \
         highway_improvements={} bfs_nodes={} bfs_frontier_peak={}",
        stats.source.as_str(),
        stats.merge.as_str(),
        stats.hub_entries_scanned,
        stats.highway_improvements,
        stats.bfs_nodes_expanded,
        stats.bfs_frontier_peak,
    )
}

/// The collected query workload: pairs with their 1-based source line
/// (0 for generated queries, which cannot be out of range) and the name of
/// where they came from, for diagnostics.
struct Workload {
    source: String,
    pairs: Vec<(usize, VertexId, VertexId)>,
}

fn collect_queries(opts: &QueryOptions, n: usize) -> Result<Workload, String> {
    if let Some(count) = opts.random_queries {
        if n == 0 {
            return Err("cannot generate random queries on an empty graph".into());
        }
        let mut rng = hcl_core::testkit::SplitMix64::new(opts.seed);
        return Ok(Workload {
            source: "--random".into(),
            pairs: (0..count)
                .map(|_| {
                    (
                        0,
                        rng.next_below(n as u64) as VertexId,
                        rng.next_below(n as u64) as VertexId,
                    )
                })
                .collect(),
        });
    }
    if let Some(path) = &opts.queries_path {
        let file = std::fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
        return Ok(Workload {
            source: path.clone(),
            pairs: parse_pairs_numbered(std::io::BufReader::new(file), path)?,
        });
    }
    let stdin = std::io::stdin();
    if stdin.is_terminal() {
        eprintln!("reading queries from stdin: one `u v` pair per line, Ctrl-D to finish");
    }
    Ok(Workload {
        source: "stdin".into(),
        pairs: parse_pairs_numbered(stdin.lock(), "stdin")?,
    })
}

fn cmd_query(args: Vec<String>) -> Result<(), String> {
    let opts = parse_query_args(args);
    let source = Source::prepare(
        opts.index_path.as_deref(),
        opts.graph_path.as_deref(),
        opts.num_landmarks,
        resolve_build_threads(opts.threads),
        opts.trusted,
        opts.strategy,
    )?;
    let (graph, index) = source.views();

    let workload = collect_queries(&opts, graph.num_vertices())?;
    let n = graph.num_vertices();
    // Out-of-range ids are diagnosed with their source line and skipped —
    // the same skip-don't-die contract `serve` has always had, so a batch
    // file with one bad id still gets its other answers.
    let mut queries = Vec::with_capacity(workload.pairs.len());
    for &(lineno, u, v) in &workload.pairs {
        if (u as usize) < n && (v as usize) < n {
            queries.push((u, v));
        } else {
            eprintln!(
                "error: {}:{lineno}: query ({u}, {v}) out of range (n = {n}); skipped",
                workload.source
            );
        }
    }

    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    // One reused context per worker (a single context when sequential):
    // per-call allocation would dominate µs-scale queries.
    let workers = if opts.explain {
        1 // --explain traces sequentially; the summary reports it honestly
    } else {
        resolve_workers(opts.workers)
    };
    let t2 = Instant::now();
    let answers = if opts.explain {
        // Explain mode answers sequentially with the stats probe attached,
        // printing one trace line per query to stderr. Stdout is produced
        // by the same formatter from the same answers, so it stays
        // byte-identical to a run without --explain.
        let mut ctx = QueryContext::new();
        let mut stats = QueryStats::new();
        let mut answers = Vec::with_capacity(queries.len());
        for &(u, v) in &queries {
            let d = index.query_probed(graph, &mut ctx, u, v, &mut stats);
            eprintln!("{}", explain_line(u, v, d, &stats));
            answers.push(d);
        }
        answers
    } else {
        pool::answer_batch(graph, index, &queries, workers)
    };
    let query_time = t2.elapsed();

    for (&(u, v), &d) in queries.iter().zip(&answers) {
        if let AnswerSink::Closed = write_answer(&mut out, u, v, d, false)? {
            eprintln!("stdout closed by reader; stopping output early");
            break;
        }
    }
    if let Err(e) = out.flush() {
        if e.kind() != ErrorKind::BrokenPipe {
            return Err(format!("writing output: {e}"));
        }
    }

    if !queries.is_empty() {
        eprintln!(
            "queries: {} answered in {:.1?} ({:.2} µs/query, {workers} worker(s))",
            queries.len(),
            query_time,
            query_time.as_secs_f64() * 1e6 / queries.len() as f64
        );
    }

    if opts.verify {
        let t3 = Instant::now();
        let mut scratch = bfs::BfsScratch::new();
        for (&(u, v), &d) in queries.iter().zip(&answers) {
            let oracle = bfs::distance_with(graph, u, v, &mut scratch);
            if d != oracle {
                return Err(format!(
                    "VERIFICATION FAILED: query ({u}, {v}) = {d:?}, BFS oracle says {oracle:?}"
                ));
            }
        }
        eprintln!(
            "verify: all {} answers match the BFS oracle ({:.1?})",
            queries.len(),
            t3.elapsed()
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// hcl serve
// ---------------------------------------------------------------------------

/// Parses a `--reload-signal` value into a Unix signal number.
fn parse_reload_signal(value: String) -> Option<i32> {
    match value.as_str() {
        "hup" => Some(server::sig::SIGHUP),
        "usr1" => Some(server::sig::SIGUSR1),
        "none" => None,
        other => {
            eprintln!("error: invalid --reload-signal `{other}` (expected hup, usr1, or none)");
            usage()
        }
    }
}

fn cmd_serve(args: Vec<String>) -> Result<(), String> {
    let mut index_path: Option<String> = None;
    let mut graph_path: Option<String> = None;
    let mut num_landmarks: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut strategy: Option<SelectionStrategy> = None;
    let mut workers: Option<usize> = None;
    let mut trusted = false;
    let mut listen: Option<String> = None;
    let mut max_inflight = 1024usize;
    let mut write_timeout_ms = 30_000u64;
    let mut reload_signal = Some(server::sig::SIGHUP);
    let mut reload_retries = 0u32;
    let mut reload_backoff_ms = 100u64;
    let mut scrub_interval_s = 0u64;
    let mut slow_log_us: Option<u64> = None;
    let mut slow_log_file: Option<String> = None;
    let mut compact_after = 0usize;
    let mut quiet = false;
    let mut listen_only_flag_seen: Option<&'static str> = None;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--index" | "-i" => index_path = Some(next_value(&mut args, "--index")),
            "--landmarks" | "-k" => {
                num_landmarks = Some(parse_or_usage(
                    next_value(&mut args, "--landmarks"),
                    "--landmarks",
                ))
            }
            "--threads" | "-t" => {
                threads = Some(parse_or_usage(
                    next_value(&mut args, "--threads"),
                    "--threads",
                ))
            }
            "--strategy" => {
                strategy = Some(parse_strategy_or_usage(next_value(&mut args, "--strategy")))
            }
            "--workers" | "-w" => {
                workers = Some(parse_or_usage(
                    next_value(&mut args, "--workers"),
                    "--workers",
                ))
            }
            "--trusted" => trusted = true,
            "--listen" | "-l" => listen = Some(next_value(&mut args, "--listen")),
            "--max-inflight" => {
                max_inflight =
                    parse_or_usage(next_value(&mut args, "--max-inflight"), "--max-inflight");
                listen_only_flag_seen = Some("--max-inflight");
            }
            "--write-timeout-ms" => {
                write_timeout_ms = parse_or_usage(
                    next_value(&mut args, "--write-timeout-ms"),
                    "--write-timeout-ms",
                );
                listen_only_flag_seen = Some("--write-timeout-ms");
            }
            "--reload-signal" => {
                reload_signal = parse_reload_signal(next_value(&mut args, "--reload-signal"));
                listen_only_flag_seen = Some("--reload-signal");
            }
            "--reload-retries" => {
                reload_retries = parse_or_usage(
                    next_value(&mut args, "--reload-retries"),
                    "--reload-retries",
                );
                listen_only_flag_seen = Some("--reload-retries");
            }
            "--reload-backoff-ms" => {
                reload_backoff_ms = parse_or_usage(
                    next_value(&mut args, "--reload-backoff-ms"),
                    "--reload-backoff-ms",
                );
                listen_only_flag_seen = Some("--reload-backoff-ms");
            }
            "--scrub-interval-s" => {
                scrub_interval_s = parse_or_usage(
                    next_value(&mut args, "--scrub-interval-s"),
                    "--scrub-interval-s",
                );
                listen_only_flag_seen = Some("--scrub-interval-s");
            }
            "--slow-log-us" => {
                slow_log_us = Some(parse_or_usage(
                    next_value(&mut args, "--slow-log-us"),
                    "--slow-log-us",
                ))
            }
            "--slow-log-file" => slow_log_file = Some(next_value(&mut args, "--slow-log-file")),
            "--compact-after" => {
                compact_after =
                    parse_or_usage(next_value(&mut args, "--compact-after"), "--compact-after")
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => help(),
            _ if graph_path.is_none() && !arg.starts_with('-') => graph_path = Some(arg),
            _ => {
                eprintln!("error: unrecognised argument `{arg}`");
                usage()
            }
        }
    }
    if index_path.is_some() && (num_landmarks.is_some() || threads.is_some() || strategy.is_some())
    {
        eprintln!(
            "error: --landmarks/--threads/--strategy only apply when building from an edge list"
        );
        usage();
    }
    if trusted && index_path.is_none() {
        eprintln!("error: --trusted only applies when serving from --index");
        usage();
    }
    if listen.is_none() {
        if let Some(flag) = listen_only_flag_seen {
            eprintln!("error: {flag} only applies with --listen");
            usage();
        }
    }
    if max_inflight == 0 {
        eprintln!("error: --max-inflight must be at least 1");
        usage();
    }
    if slow_log_file.is_some() && slow_log_us.is_none() {
        eprintln!("error: --slow-log-file only applies with --slow-log-us");
        usage();
    }
    // Shared by every serving mode: threshold from --slow-log-us, sink
    // stderr unless --slow-log-file redirects it.
    let slow_log = match slow_log_us {
        Some(us) => {
            let out: Box<dyn Write + Send> = match &slow_log_file {
                Some(path) => Box::new(
                    std::fs::File::create(path)
                        .map_err(|e| format!("creating slow-log file {path}: {e}"))?,
                ),
                None => Box::new(std::io::stderr()),
            };
            Some(std::sync::Arc::new(slowlog::SlowLog::new(us, out)))
        }
        None => None,
    };
    let source = Source::prepare(
        index_path.as_deref(),
        graph_path.as_deref(),
        num_landmarks,
        resolve_build_threads(threads),
        trusted,
        strategy,
    )?;

    if let Some(addr) = listen {
        // Socket front end: the server owns the store outright (generation
        // swaps need ownership), so convert before views are ever taken.
        // Handler threads default to every core — it's a server.
        let handle = hcl_store::GenerationHandle::new(source.into_store()?);
        let reload = index_path.map(|path| server::ReloadSpec { path, trusted });
        return server::serve_listen(
            handle,
            server::ServerConfig {
                addr,
                workers: resolve_workers(workers.or(Some(0))),
                max_inflight,
                write_timeout: std::time::Duration::from_millis(write_timeout_ms),
                // A reload signal without a reload source would only ever
                // log failures; leave it uninstalled.
                reload_signal: if reload.is_some() {
                    reload_signal
                } else {
                    None
                },
                reload,
                reload_retries,
                reload_backoff: std::time::Duration::from_millis(reload_backoff_ms),
                scrub_interval: (scrub_interval_s > 0)
                    .then(|| std::time::Duration::from_secs(scrub_interval_s)),
                slow_log,
                compact_after,
                quiet,
            },
        );
    }

    let n = {
        let (graph, _) = source.views();
        graph.num_vertices()
    };
    let workers = resolve_workers(workers);

    let stdin = std::io::stdin();
    if workers > 1 {
        // Pooled throughput mode: the reader thread chunks stdin, workers
        // take per-chunk generation snapshots with a private context each,
        // and a sequence-numbered reorder buffer keeps stdout
        // byte-identical to the sequential path. The generation handle
        // exists so `+u v` / `-u v` delta lines can swap in a repaired
        // index without stopping the pool.
        if stdin.is_terminal() {
            eprintln!(
                "serving with {workers} workers: one `u v` pair per line, answers flushed per \
                 chunk of {}, Ctrl-D to finish",
                pool::CHUNK
            );
        }
        let metrics = metrics::ServerMetrics::new();
        let t0 = Instant::now();
        let handle = hcl_store::GenerationHandle::new(source.into_store()?);
        let summary = pool::serve_pooled(
            &handle,
            workers,
            stdin.lock(),
            std::io::stdout(),
            &metrics,
            slow_log.as_deref(),
            pool::UpdateConfig {
                path: index_path.map(std::path::PathBuf::from),
                compact_after,
            },
        )?;
        if summary.closed {
            eprintln!("stdout closed by reader; shutting down");
        }
        if summary.served > 0 {
            eprintln!(
                "served {} queries in {:.1?} with {workers} workers",
                summary.served,
                t0.elapsed()
            );
        }
        if metrics.updates_applied.get() > 0 {
            eprintln!(
                "applied {} live update(s) ({} compaction(s), {} failed)",
                metrics.updates_applied.get(),
                metrics.compactions.get(),
                metrics.update_failures.get()
            );
        }
        if let Some(line) = skipped_summary(&metrics) {
            eprintln!("{line}");
        }
        if !quiet {
            if let Some(line) = metrics.latency.summary_line() {
                eprintln!("{line}");
            }
        }
        if let Some(log) = &slow_log {
            if log.dropped() > 0 {
                eprintln!(
                    "slow-log: {} line(s) dropped by the rate limit",
                    log.dropped()
                );
            }
        }
        return Ok(());
    }
    if stdin.is_terminal() {
        eprintln!("serving: one `u v` pair per line, answers flushed per line, Ctrl-D to finish");
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut ctx = QueryContext::new();
    let metrics = metrics::ServerMetrics::new();
    // Live-update state: `None` until the first `+u v` / `-u v` line;
    // afterwards queries are answered from the engine's repaired index
    // instead of the original source.
    let mut engine: Option<update::UpdateEngine> = None;
    let mut served = 0u64;
    let t0 = Instant::now();
    for (lineno, line) in stdin.lock().lines().enumerate() {
        let line = line.map_err(|e| format!("reading stdin: {e}"))?;
        if let Some((op, rest)) = update::delta_op(&line) {
            apply_seq_delta(
                op,
                rest,
                lineno + 1,
                &source,
                index_path.as_deref(),
                compact_after,
                &mut engine,
                &metrics,
            );
            continue;
        }
        let Some((u, v)) = validate_serve_pair(&line, lineno + 1, n, &metrics) else {
            continue;
        };
        let (graph, index) = match engine.as_mut() {
            Some(eng) => eng.views(),
            None => source.views(),
        };
        let t1 = Instant::now();
        // The probe only rides along when a slow log wants its fields;
        // the default path keeps the probe-free monomorphisation.
        let (answer, stats) = match &slow_log {
            Some(_) => {
                let mut stats = QueryStats::new();
                let d = index.query_probed(graph, &mut ctx, u, v, &mut stats);
                (d, Some(stats))
            }
            None => (index.query_with(graph, &mut ctx, u, v), None),
        };
        if let AnswerSink::Closed = write_answer(&mut out, u, v, answer, true)? {
            // The reader went away (e.g. `hcl serve … | head`): that ends
            // the session, it doesn't fail it.
            eprintln!("stdout closed by reader; shutting down");
            break;
        }
        let elapsed = t1.elapsed();
        metrics.latency.record(elapsed);
        if let (Some(log), Some(stats)) = (&slow_log, &stats) {
            log.observe(&slowlog::SlowQuery {
                endpoint: "stdin",
                u,
                v,
                dist: answer,
                latency: elapsed,
                stats,
                worker: 0,
                generation: 1,
            });
        }
        served += 1;
    }
    if served > 0 {
        eprintln!("served {served} queries in {:.1?}", t0.elapsed());
    }
    if metrics.updates_applied.get() > 0 {
        eprintln!(
            "applied {} live update(s) ({} compaction(s), {} failed)",
            metrics.updates_applied.get(),
            metrics.compactions.get(),
            metrics.update_failures.get()
        );
    }
    if let Some(line) = skipped_summary(&metrics) {
        eprintln!("{line}");
    }
    if !quiet {
        if let Some(line) = metrics.latency.summary_line() {
            eprintln!("{line}");
        }
    }
    if let Some(log) = &slow_log {
        if log.dropped() > 0 {
            eprintln!(
                "slow-log: {} line(s) dropped by the rate limit",
                log.dropped()
            );
        }
    }
    Ok(())
}

/// Applies one `+u v` / `-u v` stdin line in sequential serving:
/// incremental label repair, then write-back to the `--index` file (if
/// any). The serve contract for bad lines holds — a stderr diagnostic, a
/// failure-counter bump, and the session continues on the old state.
#[allow(clippy::too_many_arguments)]
fn apply_seq_delta(
    op: hcl_core::DeltaOp,
    rest: &str,
    lineno: usize,
    source: &Source,
    index_path: Option<&str>,
    compact_after: usize,
    engine: &mut Option<update::UpdateEngine>,
    metrics: &metrics::ServerMetrics,
) {
    let delta = match update::parse_delta_rest(op, rest, "stdin", lineno) {
        Ok(delta) => delta,
        Err(msg) => {
            metrics.update_failures.inc();
            eprintln!("error: {msg}");
            return;
        }
    };
    if engine.is_none() {
        *engine = Some(match source {
            Source::Stored(store) => update::UpdateEngine::from_store(
                store,
                index_path.map(std::path::PathBuf::from),
                compact_after,
            ),
            Source::Built { graph, index } => {
                update::UpdateEngine::from_views(graph.as_view(), index.as_view(), compact_after)
            }
        });
    }
    let mut discard = false;
    if let Some(eng) = engine.as_mut() {
        match eng.apply(delta) {
            Ok(outcome) if !outcome.applied => {
                eprintln!("update stdin:{lineno}: {delta} is a no-op (edge state unchanged)");
            }
            Ok(_) => match eng.persist() {
                Ok(report) => {
                    metrics.updates_applied.inc();
                    if report.compacted {
                        metrics.compactions.inc();
                    }
                    eprintln!(
                        "update stdin:{lineno}: applied {delta}{}{}",
                        if report.compacted {
                            "; journal compacted"
                        } else {
                            ""
                        },
                        match report.bytes {
                            Some(b) => format!("; {b} bytes written to disk"),
                            None => String::new(),
                        }
                    );
                }
                Err(e) => {
                    // Persistence failed after the in-memory repair: drop
                    // the engine so served answers revert to the state the
                    // container on disk still holds.
                    discard = true;
                    metrics.update_failures.inc();
                    eprintln!("error: stdin:{lineno}: persisting {delta} failed: {e}");
                }
            },
            Err(e) => {
                metrics.update_failures.inc();
                eprintln!("error: stdin:{lineno}: {e}");
            }
        }
    }
    if discard {
        *engine = None;
    }
}

// ---------------------------------------------------------------------------
// hcl update
// ---------------------------------------------------------------------------

fn cmd_update(args: Vec<String>) -> Result<(), String> {
    let mut path: Option<String> = None;
    let mut deltas_path: Option<String> = None;
    let mut compact_after = 0usize;
    let mut force_compact = false;
    let mut trusted = false;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deltas" | "-d" => deltas_path = Some(next_value(&mut args, "--deltas")),
            "--compact-after" => {
                compact_after =
                    parse_or_usage(next_value(&mut args, "--compact-after"), "--compact-after")
            }
            "--compact" => force_compact = true,
            "--trusted" => trusted = true,
            "--help" | "-h" => help(),
            _ if path.is_none() && !arg.starts_with('-') => path = Some(arg),
            _ => {
                eprintln!("error: unrecognised argument `{arg}`");
                usage()
            }
        }
    }
    let path = path.unwrap_or_else(|| {
        eprintln!("error: update needs an index-file path");
        usage()
    });

    // Read the whole delta script up front (strict grammar: every
    // non-blank, non-comment line must be a delta) so a typo on line 40
    // aborts before line 1 mutates anything.
    fn read_deltas(reader: impl BufRead, what: &str) -> Result<Vec<EdgeDelta>, String> {
        let mut deltas = Vec::new();
        for (lineno, line) in reader.lines().enumerate() {
            let line = line.map_err(|e| format!("reading {what}: {e}"))?;
            if let Some(delta) = update::parse_delta_line(&line, what, lineno + 1)? {
                deltas.push(delta);
            }
        }
        Ok(deltas)
    }
    let deltas = match &deltas_path {
        Some(file) => {
            let f = std::fs::File::open(file).map_err(|e| format!("opening {file}: {e}"))?;
            read_deltas(std::io::BufReader::new(f), file)?
        }
        None => read_deltas(std::io::stdin().lock(), "stdin")?,
    };

    let t0 = Instant::now();
    let store = if trusted {
        IndexStore::open_trusted(&path)
    } else {
        IndexStore::open(&path)
    }
    .map_err(|e| format!("opening {path}: {e}"))?;
    let mut engine = update::UpdateEngine::from_store(
        &store,
        Some(std::path::PathBuf::from(&path)),
        compact_after,
    );
    // The engine owns everything it needs; release the mapping before the
    // write-back replaces the file under it.
    drop(store);

    let mut applied = 0u64;
    let mut noops = 0u64;
    let mut trees = 0usize;
    let mut full_relabels = 0u64;
    for delta in deltas {
        let outcome = engine.apply(delta)?;
        if outcome.applied {
            applied += 1;
            trees += outcome.affected_landmarks;
            if outcome.full_relabel {
                full_relabels += 1;
            }
        } else {
            noops += 1;
        }
    }
    if force_compact {
        engine.compact();
    }
    let report = engine.persist()?;
    eprintln!(
        "updated {path}: {applied} delta(s) applied ({noops} no-op), {trees} landmark tree(s) \
         repaired, {full_relabels} full relabel(s); journal: {} pending, {} compaction(s){}; \
         took {:.1?}",
        engine.pending(),
        engine.compactions(),
        match report.bytes {
            Some(b) => format!(", {b} bytes written"),
            None => String::new(),
        },
        t0.elapsed()
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// hcl inspect
// ---------------------------------------------------------------------------

/// The `inspect --stats` appendix: the label-size distribution, the hubs
/// that dominate the labels, and the build counters recorded in v5+
/// containers (older containers print a one-line absence note instead).
fn write_deep_stats(out: &mut dyn Write, store: &IndexStore) -> std::io::Result<()> {
    let index = store.index();
    let offsets = index.label_offsets();
    let mut sizes: Vec<u64> = offsets.windows(2).map(|w| w[1] - w[0]).collect();
    sizes.sort_unstable();
    // Nearest-rank quantiles over the exact per-vertex sizes — no
    // bucketing, the data is right there.
    let quantile = |q: f64| -> u64 {
        if sizes.is_empty() {
            return 0;
        }
        let rank = ((q * sizes.len() as f64).ceil() as usize).clamp(1, sizes.len());
        sizes[rank - 1]
    };
    writeln!(out, "label histogram:")?;
    writeln!(
        out,
        "  entries/vertex: p50={} p99={} max={}",
        quantile(0.50),
        quantile(0.99),
        sizes.last().copied().unwrap_or(0)
    )?;

    let landmarks = index.landmarks();
    let mut freq = vec![0u64; landmarks.len()];
    for &entry in index.label_entries() {
        let (rank, _) = hcl_index::unpack_label_entry(entry);
        if let Some(slot) = freq.get_mut(rank as usize) {
            *slot += 1;
        }
    }
    let mut by_freq: Vec<(u64, usize)> = freq
        .iter()
        .copied()
        .enumerate()
        .map(|(r, c)| (c, r))
        .collect();
    by_freq.sort_unstable_by_key(|&(count, rank)| (std::cmp::Reverse(count), rank));
    writeln!(out, "top hubs:")?;
    if by_freq.is_empty() {
        writeln!(out, "  (no landmarks)")?;
    }
    for (place, &(count, rank)) in by_freq.iter().take(10).enumerate() {
        writeln!(
            out,
            "  #{:<2} vertex {} (rank {rank}): {count} label entries",
            place + 1,
            landmarks[rank]
        )?;
    }

    match store.build_stats() {
        Some(bs) => {
            writeln!(out, "build stats:")?;
            writeln!(out, "  bfs visits:       {}", bs.bfs_visits)?;
            writeln!(out, "  label insertions: {}", bs.label_insertions)?;
            writeln!(
                out,
                "  dominated:        {} ({:.1}% of visits cut)",
                bs.dominated,
                bs.domination_cut_rate() * 100.0
            )?;
            let mut contrib: Vec<(u64, usize)> = bs
                .landmark_labels
                .iter()
                .copied()
                .enumerate()
                .map(|(r, c)| (c, r))
                .collect();
            contrib.sort_unstable_by_key(|&(count, rank)| (std::cmp::Reverse(count), rank));
            writeln!(out, "  top contributors:")?;
            for &(count, rank) in contrib.iter().take(10) {
                writeln!(
                    out,
                    "    rank {rank} (vertex {}): {count} labels",
                    landmarks.get(rank).copied().unwrap_or_default()
                )?;
            }
        }
        None => writeln!(
            out,
            "build stats:   (not recorded; container written before format v5)"
        )?,
    }
    Ok(())
}

fn cmd_inspect(args: Vec<String>) -> Result<(), String> {
    let mut path: Option<String> = None;
    let mut show_stats = false;
    for arg in args {
        match arg.as_str() {
            "--stats" => show_stats = true,
            "--help" | "-h" => help(),
            _ if path.is_none() && !arg.starts_with('-') => path = Some(arg),
            _ => {
                eprintln!("error: unrecognised argument `{arg}`");
                usage()
            }
        }
    }
    let path = path.unwrap_or_else(|| {
        eprintln!("error: inspect needs an index-file path");
        usage()
    });

    let t0 = Instant::now();
    let store = IndexStore::open(&path).map_err(|e| format!("opening {path}: {e}"))?;
    let load_time = t0.elapsed();
    let meta = store.meta();
    let stats = store.index().stats();

    // Explicit writes instead of println!, so `hcl inspect … | head` is a
    // clean early exit (the serve/query contract) rather than a panic.
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let report = |out: &mut dyn Write| -> std::io::Result<()> {
        writeln!(out, "file:          {path}")?;
        writeln!(
            out,
            "size:          {} bytes ({:.1} KiB)",
            meta.file_len,
            meta.file_len as f64 / 1024.0
        )?;
        writeln!(
            out,
            "format:        HCLSTOR v{} (checksum {:#018x}, verified)",
            meta.version, meta.checksum
        )?;
        writeln!(
            out,
            "backing:       {} (validated in {:.1?})",
            store.backing_kind(),
            load_time
        )?;
        writeln!(out, "vertices:      {}", meta.num_vertices)?;
        writeln!(out, "edges:         {}", meta.num_edges)?;
        writeln!(out, "landmarks:     {}", meta.num_landmarks)?;
        // v2/v3 files predate recorded strategies and load as degree-rank.
        writeln!(out, "strategy:      {}", meta.build.strategy)?;
        writeln!(
            out,
            "label entries: {} (avg {:.2}/vertex, max {})",
            meta.label_entries, stats.avg_label_size, stats.max_label_size
        )?;
        if meta.build == hcl_store::BuildInfo::default() {
            writeln!(out, "built with:    (unrecorded)")?;
        } else {
            writeln!(
                out,
                "built with:    {} thread(s), landmark batch {}",
                meta.build.threads, meta.build.batch_size
            )?;
        }
        match store.journal() {
            Some(j) => writeln!(
                out,
                "journal:       {} pending delta(s), {} B, {} compaction(s)",
                j.len(),
                store.journal_bytes(),
                j.compactions
            )?,
            None => writeln!(
                out,
                "journal:       (none; live-update journals start at format v6)"
            )?,
        }
        writeln!(out, "sections:")?;
        for s in store.sections() {
            writeln!(
                out,
                "  {:<16} {:>12} B @ {:<10} ({} B/elem, {} elems)",
                s.name,
                s.len_bytes,
                s.offset,
                s.elem_size,
                s.len_bytes / s.elem_size as u64
            )?;
        }
        if show_stats {
            write_deep_stats(out, &store)?;
        }
        out.flush()
    };
    match report(&mut out) {
        Err(e) if e.kind() == ErrorKind::BrokenPipe => Ok(()),
        Err(e) => Err(format!("writing output: {e}")),
        Ok(()) => Ok(()),
    }
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    match args[0].as_str() {
        "build" => cmd_build(args.split_off(1)),
        "query" => cmd_query(args.split_off(1)),
        "serve" => cmd_serve(args.split_off(1)),
        "update" => cmd_update(args.split_off(1)),
        "inspect" => cmd_inspect(args.split_off(1)),
        "--help" | "-h" => help(),
        // Legacy invocation: `hcl <graph.edges> [query flags]`.
        _ => cmd_query(args),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<Vec<(VertexId, VertexId)>, String> {
        parse_pairs(std::io::Cursor::new(text), "test.edges")
    }

    #[test]
    fn parses_plain_pairs_and_whitespace() {
        assert_eq!(
            parse("0 1\n2\t3\n  4   5  \n").unwrap(),
            vec![(0, 1), (2, 3), (4, 5)]
        );
    }

    #[test]
    fn skips_blank_and_comment_lines() {
        let text = "# header comment\n\n0 1\n   \n% metis-style comment\n1 2\n  # indented\n";
        assert_eq!(parse(text).unwrap(), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn errors_carry_file_and_line_and_token() {
        let err = parse("0 1\nx 2\n").unwrap_err();
        assert!(err.contains("test.edges:2"), "missing file:line in {err:?}");
        assert!(err.contains("`x`"), "missing offending token in {err:?}");

        let err = parse("0 1\n\n3\n").unwrap_err();
        assert!(err.contains("test.edges:3"), "missing file:line in {err:?}");
        assert!(err.contains("expected two"), "wrong message: {err:?}");

        let err = parse("1 2 9\n").unwrap_err();
        assert!(err.contains("test.edges:1"), "missing file:line in {err:?}");
        assert!(err.contains("`9`"), "missing offending token in {err:?}");
        assert!(
            err.contains("weighted"),
            "should hint at weighted lists: {err:?}"
        );

        // Negative ids name the token, not a bare parse failure.
        let err = parse("-1 2\n").unwrap_err();
        assert!(err.contains("`-1`"), "missing offending token in {err:?}");
    }

    #[test]
    fn comment_only_input_is_empty_not_error() {
        assert_eq!(parse("# nothing here\n% or here\n").unwrap(), vec![]);
    }
}
