//! Breadth-first-search distance oracles.
//!
//! These are deliberately simple and obviously correct: they serve as the
//! ground truth that the hub-labelling index is property-tested against, and
//! as the fallback search primitive inside the query engine.
//!
//! Both oracles accept anything convertible to a
//! [`DynGraphView`](crate::DynGraphView) — an owned `&Graph`, a borrowed
//! [`GraphView`](crate::GraphView) over a memory-mapped store, or a
//! [`DeltaGraph`](crate::DeltaGraph) edit overlay — so verification works
//! identically on every backing, frozen or dynamic.

use crate::delta::DynGraphView;
use crate::graph::{VertexId, INFINITY};
use std::collections::VecDeque;

/// Observation hooks for BFS-shaped traversals.
///
/// Every hook is an empty `#[inline]` default, so a search generic over
/// `P: BfsProbe` monomorphised with [`NoProbe`] compiles to exactly the
/// un-instrumented loop — instrumentation is opt-in per *call site*, not a
/// runtime branch on the hot path. `hcl-index` extends this trait with
/// label-merge hooks for its query engine; the traversal-shaped hooks live
/// here because the searches they observe (full oracles, the residual BFS,
/// the pruned landmark BFS) are all built from this crate's primitives.
pub trait BfsProbe {
    /// Called once per vertex expanded (taken off the frontier or pushed
    /// onto the next one, depending on the traversal's shape).
    #[inline]
    fn bfs_node_expanded(&mut self) {}

    /// Called once per completed level with the size of the *next*
    /// frontier, so an implementation can track the peak frontier width.
    #[inline]
    fn bfs_level(&mut self, frontier_len: usize) {
        let _ = frontier_len;
    }
}

/// The do-nothing probe: the zero-cost default for un-instrumented runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoProbe;

impl BfsProbe for NoProbe {}

/// Reusable BFS scratch space: one distance array, one FIFO queue, and the
/// touched-list used to reset the distance array in `O(visited)` instead of
/// `O(n)`.
///
/// This is the allocation-free building block for callers that run many
/// searches back to back — the batch verifier in the CLI, and every worker
/// of the parallel index builder (via `hcl-index`'s `BuildContext`). The
/// fields are public so specialised traversals (e.g. the pruned landmark
/// BFS) can drive the loop themselves while reusing the buffers; the only
/// invariant to uphold is the one [`reset`](BfsScratch::reset) restores:
/// **every vertex whose `dist` entry is not [`INFINITY`] must be on
/// `touched`**.
#[derive(Default)]
pub struct BfsScratch {
    /// Per-vertex distances; [`INFINITY`] everywhere between searches.
    pub dist: Vec<u32>,
    /// FIFO frontier queue; empty between searches.
    pub queue: VecDeque<VertexId>,
    /// Vertices whose `dist` entry was written by the current search.
    pub touched: Vec<VertexId>,
}

impl BfsScratch {
    /// Creates an empty scratch; buffers grow lazily to the graph size.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the distance array to at least `n` entries (all [`INFINITY`]).
    pub fn ensure_capacity(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, INFINITY);
        }
    }

    /// Restores the between-searches invariant: resets every touched
    /// distance back to [`INFINITY`] and clears the queue and touched-list.
    pub fn reset(&mut self) {
        for &v in &self.touched {
            self.dist[v as usize] = INFINITY;
        }
        self.touched.clear();
        self.queue.clear();
    }
}

/// Distances from `src` to every vertex, with [`INFINITY`] for vertices in
/// other connected components.
///
/// # Panics
/// Panics if `src` is out of range.
pub fn distances_from<'a>(graph: impl Into<DynGraphView<'a>>, src: VertexId) -> Vec<u32> {
    let graph = graph.into();
    let mut scratch = BfsScratch::new();
    distances_from_with(graph, src, &mut scratch);
    scratch.dist
}

/// Runs a full BFS from `src`, leaving per-vertex distances in
/// `scratch.dist` and the visited set in `scratch.touched`.
///
/// The allocation-free form of [`distances_from`]: the caller owns the
/// scratch and reads the results out of it, then the next search reuses the
/// same buffers. `scratch` is [`reset`](BfsScratch::reset) on entry, so the
/// results stay readable until the next call.
///
/// # Panics
/// Panics if `src` is out of range.
pub fn distances_from_with<'a>(
    graph: impl Into<DynGraphView<'a>>,
    src: VertexId,
    scratch: &mut BfsScratch,
) {
    distances_from_probed(graph, src, scratch, &mut NoProbe);
}

/// [`distances_from_with`] with observation hooks: `probe` sees every
/// expanded vertex. Monomorphised with [`NoProbe`] this is byte-for-byte
/// the plain search.
///
/// # Panics
/// Panics if `src` is out of range.
pub fn distances_from_probed<'a, P: BfsProbe>(
    graph: impl Into<DynGraphView<'a>>,
    src: VertexId,
    scratch: &mut BfsScratch,
    probe: &mut P,
) {
    let graph = graph.into();
    scratch.reset();
    scratch.ensure_capacity(graph.num_vertices());
    scratch.dist[src as usize] = 0;
    scratch.touched.push(src);
    scratch.queue.push_back(src);
    while let Some(u) = scratch.queue.pop_front() {
        probe.bfs_node_expanded();
        let du = scratch.dist[u as usize];
        for &w in graph.neighbors(u) {
            if scratch.dist[w as usize] == INFINITY {
                scratch.dist[w as usize] = du + 1;
                scratch.touched.push(w);
                scratch.queue.push_back(w);
            }
        }
    }
}

/// Exact distance between `u` and `v`, or `None` if they are disconnected.
///
/// Early-exits as soon as `v` is settled, so point-to-point queries do not
/// pay for the whole component.
///
/// # Panics
/// Panics if `u` or `v` is out of range.
pub fn distance<'a>(graph: impl Into<DynGraphView<'a>>, u: VertexId, v: VertexId) -> Option<u32> {
    distance_with(graph, u, v, &mut BfsScratch::new())
}

/// Exact distance between `u` and `v` reusing caller-owned scratch — the
/// batch form of [`distance`], e.g. for verifying many answers in a row.
///
/// # Panics
/// Panics if `u` or `v` is out of range.
pub fn distance_with<'a>(
    graph: impl Into<DynGraphView<'a>>,
    u: VertexId,
    v: VertexId,
    scratch: &mut BfsScratch,
) -> Option<u32> {
    let graph = graph.into();
    assert!((v as usize) < graph.num_vertices(), "vertex out of range");
    if u == v {
        return Some(0);
    }
    scratch.reset();
    scratch.ensure_capacity(graph.num_vertices());
    scratch.dist[u as usize] = 0;
    scratch.touched.push(u);
    scratch.queue.push_back(u);
    while let Some(x) = scratch.queue.pop_front() {
        let dx = scratch.dist[x as usize];
        for &w in graph.neighbors(x) {
            if scratch.dist[w as usize] == INFINITY {
                if w == v {
                    // Leave the partial search on the touched-list; the next
                    // call's reset() cleans it up.
                    scratch.touched.push(w);
                    scratch.dist[w as usize] = dx + 1;
                    return Some(dx + 1);
                }
                scratch.dist[w as usize] = dx + 1;
                scratch.touched.push(w);
                scratch.queue.push_back(w);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn distances_on_a_path() {
        let g = Graph::from_edges(&[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(distances_from(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(distance(&g, 0, 3), Some(3));
        assert_eq!(distance(&g, 3, 0), Some(3));
        assert_eq!(distance(&g, 2, 2), Some(0));
    }

    #[test]
    fn disconnected_components_are_unreachable() {
        let mut b = crate::GraphBuilder::new();
        b.add_edge(0, 1).add_edge(2, 3);
        let g = b.build();
        assert_eq!(distance(&g, 0, 3), None);
        assert_eq!(distances_from(&g, 0), vec![0, 1, INFINITY, INFINITY]);
    }

    #[test]
    fn scratch_reuse_is_clean_across_searches() {
        let mut b = crate::GraphBuilder::new();
        b.add_edge(0, 1).add_edge(1, 2).add_edge(3, 4);
        let g = b.build();
        let mut scratch = BfsScratch::new();
        for _ in 0..3 {
            assert_eq!(distance_with(&g, 0, 2, &mut scratch), Some(2));
            assert_eq!(distance_with(&g, 0, 4, &mut scratch), None);
            distances_from_with(&g, 3, &mut scratch);
            assert_eq!(scratch.dist[4], 1);
            assert_eq!(scratch.dist[0], INFINITY);
            assert_eq!(scratch.touched.len(), 2);
        }
    }

    #[test]
    fn probed_search_counts_every_expansion() {
        struct Counting {
            expanded: u64,
        }
        impl BfsProbe for Counting {
            fn bfs_node_expanded(&mut self) {
                self.expanded += 1;
            }
        }
        let g = Graph::from_edges(&[(0, 1), (1, 2), (2, 3), (4, 5)]);
        let mut scratch = BfsScratch::new();
        let mut probe = Counting { expanded: 0 };
        distances_from_probed(&g, 0, &mut scratch, &mut probe);
        // The whole 4-vertex component is expanded; the other stays cold.
        assert_eq!(probe.expanded, 4);
        assert_eq!(scratch.dist[3], 3);
        assert_eq!(scratch.dist[4], INFINITY);
    }

    #[test]
    fn views_answer_like_owned_graphs() {
        let g = Graph::from_edges(&[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let view = g.as_view();
        assert_eq!(distance(view, 0, 4), Some(4));
        assert_eq!(distances_from(view, 1), distances_from(&g, 1));
    }
}
