//! Breadth-first-search distance oracles.
//!
//! These are deliberately simple and obviously correct: they serve as the
//! ground truth that the hub-labelling index is property-tested against, and
//! as the fallback search primitive inside the query engine.
//!
//! Both oracles accept anything convertible to a [`GraphView`] — an owned
//! `&Graph` or a borrowed view over a memory-mapped store — so verification
//! works identically on every backing.

use crate::graph::{GraphView, VertexId, INFINITY};
use std::collections::VecDeque;

/// Distances from `src` to every vertex, with [`INFINITY`] for vertices in
/// other connected components.
///
/// # Panics
/// Panics if `src` is out of range.
pub fn distances_from<'a>(graph: impl Into<GraphView<'a>>, src: VertexId) -> Vec<u32> {
    let graph = graph.into();
    let mut dist = vec![INFINITY; graph.num_vertices()];
    dist[src as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &w in graph.neighbors(u) {
            if dist[w as usize] == INFINITY {
                dist[w as usize] = du + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Exact distance between `u` and `v`, or `None` if they are disconnected.
///
/// Early-exits as soon as `v` is settled, so point-to-point queries do not
/// pay for the whole component.
///
/// # Panics
/// Panics if `u` or `v` is out of range.
pub fn distance<'a>(graph: impl Into<GraphView<'a>>, u: VertexId, v: VertexId) -> Option<u32> {
    let graph = graph.into();
    assert!((v as usize) < graph.num_vertices(), "vertex out of range");
    if u == v {
        return Some(0);
    }
    let mut dist = vec![INFINITY; graph.num_vertices()];
    dist[u as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(u);
    while let Some(x) = queue.pop_front() {
        let dx = dist[x as usize];
        for &w in graph.neighbors(x) {
            if dist[w as usize] == INFINITY {
                if w == v {
                    return Some(dx + 1);
                }
                dist[w as usize] = dx + 1;
                queue.push_back(w);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn distances_on_a_path() {
        let g = Graph::from_edges(&[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(distances_from(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(distance(&g, 0, 3), Some(3));
        assert_eq!(distance(&g, 3, 0), Some(3));
        assert_eq!(distance(&g, 2, 2), Some(0));
    }

    #[test]
    fn disconnected_components_are_unreachable() {
        let mut b = crate::GraphBuilder::new();
        b.add_edge(0, 1).add_edge(2, 3);
        let g = b.build();
        assert_eq!(distance(&g, 0, 3), None);
        assert_eq!(distances_from(&g, 0), vec![0, 1, INFINITY, INFINITY]);
    }

    #[test]
    fn views_answer_like_owned_graphs() {
        let g = Graph::from_edges(&[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let view = g.as_view();
        assert_eq!(distance(view, 0, 4), Some(4));
        assert_eq!(distances_from(view, 1), distances_from(&g, 1));
    }
}
