//! Immutable CSR (compressed sparse row) graph storage — owned graphs and
//! zero-copy borrowed views.
//!
//! The graph model throughout the workspace is the one used by the paper:
//! unweighted, undirected, simple graphs. [`GraphBuilder`] accepts arbitrary
//! messy edge lists (self-loops, duplicates, either endpoint order) and
//! canonicalises them at build time, so the resulting [`Graph`] can assume a
//! clean adjacency structure on every hot path.
//!
//! Storage comes in two flavours sharing one implementation:
//!
//! * [`Graph`] — owns its two arrays (`Vec`-backed). Produced by
//!   [`GraphBuilder`] or [`Graph::from_csr`].
//! * [`GraphView`] — borrows the same two arrays as slices. This is what
//!   `hcl-store` hands out when serving a memory-mapped index file without
//!   copying: the mmap'd bytes *are* the arrays.
//!
//! Every algorithm (BFS oracle, index build, query engine) is written
//! against [`GraphView`]; `Graph` methods delegate through
//! [`Graph::as_view`], so owned and mapped graphs behave identically.
//!
//! Offsets are stored as `u64` (not `usize`) so the in-memory layout matches
//! the on-disk little-endian format exactly, making the borrowed view a
//! straight reinterpretation of file bytes.

use std::fmt;

/// Vertex identifier. Dense, zero-based.
pub type VertexId = u32;

/// Sentinel distance meaning "unreachable" in `u32` distance arrays.
pub const INFINITY: u32 = u32::MAX;

/// Validation failure for raw CSR arrays ([`Graph::from_csr`] /
/// [`GraphView::from_csr`]).
///
/// Untrusted CSR data (e.g. read from disk) is validated once up front;
/// afterwards every traversal can rely on the invariants without rechecking
/// them on hot paths.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CsrError {
    /// The offsets array is empty; it must hold `n + 1` entries.
    EmptyOffsets,
    /// `offsets[0]` is not zero.
    NonZeroFirstOffset,
    /// The offsets array implies more vertices than [`VertexId`] can address.
    TooManyVertices {
        /// Vertex count implied by the offsets array.
        num_vertices: u64,
    },
    /// `offsets[vertex + 1] < offsets[vertex]` (negative extent).
    NonMonotoneOffsets {
        /// Vertex whose extent is negative.
        vertex: usize,
    },
    /// The final offset disagrees with the neighbour-array length.
    LengthMismatch {
        /// Value of the final offset.
        last_offset: u64,
        /// Actual length of the neighbour array.
        neighbors_len: usize,
    },
    /// A neighbour id is out of range (`>= n`).
    NeighborOutOfRange {
        /// Vertex whose adjacency list holds the bad entry.
        vertex: usize,
        /// The out-of-range neighbour id.
        neighbor: VertexId,
    },
    /// A vertex appears in its own adjacency list.
    SelfLoop {
        /// The offending vertex.
        vertex: usize,
    },
    /// An adjacency list is not strictly ascending (unsorted or duplicated).
    UnsortedNeighbors {
        /// Vertex whose adjacency list is malformed.
        vertex: usize,
    },
    /// Edge `u -> v` is present without its reverse `v -> u`; the graph
    /// model is undirected, so adjacency must be symmetric.
    MissingReverseEdge {
        /// Source of the one-directional edge.
        u: VertexId,
        /// Target of the one-directional edge.
        v: VertexId,
    },
}

impl fmt::Display for CsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsrError::EmptyOffsets => write!(f, "CSR offsets array is empty"),
            CsrError::NonZeroFirstOffset => write!(f, "CSR offsets must start at 0"),
            CsrError::TooManyVertices { num_vertices } => {
                write!(f, "{num_vertices} vertices exceed the VertexId range")
            }
            CsrError::NonMonotoneOffsets { vertex } => {
                write!(f, "CSR offsets decrease at vertex {vertex}")
            }
            CsrError::LengthMismatch {
                last_offset,
                neighbors_len,
            } => write!(
                f,
                "final CSR offset {last_offset} != neighbour array length {neighbors_len}"
            ),
            CsrError::NeighborOutOfRange { vertex, neighbor } => {
                write!(f, "vertex {vertex} has out-of-range neighbour {neighbor}")
            }
            CsrError::SelfLoop { vertex } => write!(f, "vertex {vertex} has a self-loop"),
            CsrError::UnsortedNeighbors { vertex } => {
                write!(
                    f,
                    "adjacency list of vertex {vertex} is not strictly ascending"
                )
            }
            CsrError::MissingReverseEdge { u, v } => {
                write!(f, "edge {u} -> {v} has no reverse edge {v} -> {u}")
            }
        }
    }
}

impl std::error::Error for CsrError {}

/// A borrowed, zero-copy view of a CSR graph.
///
/// Layout-identical to [`Graph`], but the arrays live elsewhere — inside an
/// owned `Graph`, or inside a memory-mapped index file. `Copy`, so pass it
/// by value.
#[derive(Clone, Copy, Debug)]
pub struct GraphView<'a> {
    /// `offsets[v]..offsets[v + 1]` indexes `neighbors` for vertex `v`.
    offsets: &'a [u64],
    /// Concatenated, per-vertex-sorted adjacency lists.
    neighbors: &'a [VertexId],
}

impl<'a> GraphView<'a> {
    /// Builds a validated view over raw CSR arrays.
    ///
    /// Checks every structural invariant the traversal code relies on:
    /// offsets are monotone and span the neighbour array, adjacency lists
    /// are strictly ascending, in range, self-loop free, and symmetric
    /// (this is an undirected graph). `O(n + m log m)` — run once per load,
    /// never per query.
    pub fn from_csr(offsets: &'a [u64], neighbors: &'a [VertexId]) -> Result<Self, CsrError> {
        let view = Self::from_csr_unchecked(offsets, neighbors);
        view.validate()?;
        Ok(view)
    }

    /// Builds a view over raw CSR arrays **without validating them**.
    ///
    /// This is still a safe function: malformed arrays can cause wrong
    /// answers or panics in later traversals, but never undefined
    /// behaviour. Use only on arrays that already passed
    /// [`GraphView::from_csr`] (e.g. re-borrowing from a validated store).
    pub fn from_csr_unchecked(offsets: &'a [u64], neighbors: &'a [VertexId]) -> Self {
        Self { offsets, neighbors }
    }

    fn validate(&self) -> Result<(), CsrError> {
        let offsets = self.offsets;
        if offsets.is_empty() {
            return Err(CsrError::EmptyOffsets);
        }
        if offsets[0] != 0 {
            return Err(CsrError::NonZeroFirstOffset);
        }
        let n = offsets.len() - 1;
        if n as u64 > VertexId::MAX as u64 + 1 {
            return Err(CsrError::TooManyVertices {
                num_vertices: n as u64,
            });
        }
        let mut prev = 0u64;
        for (v, &off) in offsets.iter().enumerate().skip(1) {
            if off < prev {
                return Err(CsrError::NonMonotoneOffsets { vertex: v - 1 });
            }
            prev = off;
        }
        if prev != self.neighbors.len() as u64 {
            return Err(CsrError::LengthMismatch {
                last_offset: prev,
                neighbors_len: self.neighbors.len(),
            });
        }
        for v in 0..n {
            let adj = &self.neighbors[offsets[v] as usize..offsets[v + 1] as usize];
            let mut last: Option<VertexId> = None;
            for &w in adj {
                if w as usize >= n {
                    return Err(CsrError::NeighborOutOfRange {
                        vertex: v,
                        neighbor: w,
                    });
                }
                if w as usize == v {
                    return Err(CsrError::SelfLoop { vertex: v });
                }
                if let Some(l) = last {
                    if w <= l {
                        return Err(CsrError::UnsortedNeighbors { vertex: v });
                    }
                }
                last = Some(w);
            }
        }
        // Symmetry: every directed entry must have its reverse.
        for v in 0..n {
            for &w in self.neighbors_of(v) {
                if self.neighbors(w).binary_search(&(v as VertexId)).is_err() {
                    return Err(CsrError::MissingReverseEdge {
                        u: v as VertexId,
                        v: w,
                    });
                }
            }
        }
        Ok(())
    }

    fn neighbors_of(&self, v: usize) -> &'a [VertexId] {
        &self.neighbors[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges (each edge counted once).
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// The sorted neighbour list of vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: VertexId) -> &'a [VertexId] {
        self.neighbors_of(v as usize)
    }

    /// Whether `u` and `v` are adjacent (`O(log degree(u))`).
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Vertices ranked by importance: descending degree, ties broken by
    /// ascending id so the order is deterministic.
    ///
    /// The first `k` entries are the landmark set used by the
    /// highway-cover labelling, mirroring the paper's heuristic that
    /// high-degree vertices cover the most shortest paths in complex
    /// networks.
    pub fn rank_by_degree(&self) -> Vec<VertexId> {
        let mut order: Vec<VertexId> = (0..self.num_vertices() as VertexId).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(self.degree(v)), v));
        order
    }

    /// The first `k` entries of [`GraphView::rank_by_degree`] without
    /// sorting the whole vertex set: a partial selection
    /// (`select_nth_unstable`) followed by a sort of just the top slice.
    ///
    /// The ranking key `(Reverse(degree), id)` is injective, so the top-`k`
    /// set and its order are unique — this is **exactly**
    /// `rank_by_degree()[..k]`, element for element, which the
    /// degree-ranked landmark selection relies on for bit-for-bit
    /// reproducible indexes. `O(n + k log k)` instead of `O(n log n)`.
    pub fn top_k_by_degree(&self, k: usize) -> Vec<VertexId> {
        let n = self.num_vertices();
        let k = k.min(n);
        if k == 0 {
            return Vec::new();
        }
        let key = |v: &VertexId| (std::cmp::Reverse(self.degree(*v)), *v);
        let mut order: Vec<VertexId> = (0..n as VertexId).collect();
        if k < n {
            order.select_nth_unstable_by_key(k - 1, key);
            order.truncate(k);
        }
        order.sort_unstable_by_key(key);
        order
    }

    /// The raw CSR offsets array (`n + 1` entries), e.g. for serialisation.
    pub fn csr_offsets(&self) -> &'a [u64] {
        self.offsets
    }

    /// The raw concatenated neighbour array, e.g. for serialisation.
    pub fn csr_neighbors(&self) -> &'a [VertexId] {
        self.neighbors
    }

    /// Copies the view into an owned [`Graph`].
    pub fn to_owned_graph(&self) -> Graph {
        Graph {
            offsets: self.offsets.to_vec(),
            neighbors: self.neighbors.to_vec(),
        }
    }
}

/// An immutable unweighted, undirected simple graph in CSR form.
///
/// Neighbour lists are stored back-to-back in one contiguous array and are
/// sorted ascending per vertex, which makes iteration cache-friendly and
/// membership checks binary-searchable. All traversal methods delegate to
/// [`GraphView`], so owned graphs and mmap-backed views share one code path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<u64>,
    neighbors: Vec<VertexId>,
}

impl Graph {
    /// Builds a graph directly from an edge list.
    ///
    /// Convenience wrapper over [`GraphBuilder`]; the vertex count is
    /// inferred as `max endpoint + 1` (0 for an empty list).
    pub fn from_edges(edges: &[(VertexId, VertexId)]) -> Self {
        let mut b = GraphBuilder::new();
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Builds a graph from raw CSR arrays, validating every invariant
    /// (see [`GraphView::from_csr`]).
    pub fn from_csr(offsets: Vec<u64>, neighbors: Vec<VertexId>) -> Result<Self, CsrError> {
        GraphView::from_csr(&offsets, &neighbors)?;
        Ok(Self { offsets, neighbors })
    }

    /// A borrowed, `Copy` view of this graph. Cheap; use it to share one
    /// code path between owned and memory-mapped graphs.
    pub fn as_view(&self) -> GraphView<'_> {
        GraphView {
            offsets: &self.offsets,
            neighbors: &self.neighbors,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.as_view().num_vertices()
    }

    /// Number of undirected edges (each edge counted once).
    pub fn num_edges(&self) -> usize {
        self.as_view().num_edges()
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: VertexId) -> usize {
        self.as_view().degree(v)
    }

    /// The sorted neighbour list of vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.as_view().neighbors(v)
    }

    /// Whether `u` and `v` are adjacent (`O(log degree(u))`).
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.as_view().has_edge(u, v)
    }

    /// Vertices ranked by importance: descending degree, ties broken by
    /// ascending id. See [`GraphView::rank_by_degree`].
    pub fn rank_by_degree(&self) -> Vec<VertexId> {
        self.as_view().rank_by_degree()
    }

    /// The first `k` entries of the degree ranking via partial selection.
    /// See [`GraphView::top_k_by_degree`].
    pub fn top_k_by_degree(&self, k: usize) -> Vec<VertexId> {
        self.as_view().top_k_by_degree(k)
    }

    /// The raw CSR offsets array (`n + 1` entries), e.g. for serialisation.
    pub fn csr_offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw concatenated neighbour array, e.g. for serialisation.
    pub fn csr_neighbors(&self) -> &[VertexId] {
        &self.neighbors
    }
}

impl<'a> From<&'a Graph> for GraphView<'a> {
    fn from(g: &'a Graph) -> Self {
        g.as_view()
    }
}

/// Incremental builder producing a canonical [`Graph`].
///
/// Canonicalisation performed by [`GraphBuilder::build`]:
/// * self-loops are dropped,
/// * duplicate edges (in either orientation) are deduplicated,
/// * every kept edge is materialised in both directions,
/// * adjacency lists are sorted ascending.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    edges: Vec<(VertexId, VertexId)>,
    num_vertices: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures the graph has at least `n` vertices, so trailing isolated
    /// vertices survive even though no edge mentions them.
    pub fn reserve_vertices(&mut self, n: usize) -> &mut Self {
        self.num_vertices = self.num_vertices.max(n);
        self
    }

    /// Adds an undirected edge. Order of endpoints is irrelevant;
    /// self-loops and duplicates are tolerated and cleaned up in
    /// [`GraphBuilder::build`].
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.num_vertices = self.num_vertices.max(u.max(v) as usize + 1);
        self.edges.push((u, v));
        self
    }

    /// Finalises the builder into an immutable CSR [`Graph`].
    pub fn build(&self) -> Graph {
        let n = self.num_vertices;
        // Canonicalise: drop self-loops, order endpoints, sort, dedup.
        let mut canon: Vec<(VertexId, VertexId)> = self
            .edges
            .iter()
            .filter(|&&(u, v)| u != v)
            .map(|&(u, v)| if u <= v { (u, v) } else { (v, u) })
            .collect();
        canon.sort_unstable();
        canon.dedup();

        let mut degrees = vec![0u64; n];
        for &(u, v) in &canon {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<usize> = offsets[..n].iter().map(|&o| o as usize).collect();
        let mut neighbors = vec![0 as VertexId; acc as usize];
        for &(u, v) in &canon {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        for v in 0..n {
            neighbors[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
        }
        Graph { offsets, neighbors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn self_loops_are_dropped() {
        let g = Graph::from_edges(&[(0, 0), (0, 1), (1, 1)]);
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let g = Graph::from_edges(&[(0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn isolated_vertices_are_kept() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1).reserve_vertices(5);
        let g = b.build();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.degree(3), 0);
        assert!(g.neighbors(4).is_empty());
    }

    #[test]
    fn adjacency_is_sorted_and_queryable() {
        let g = Graph::from_edges(&[(2, 0), (2, 3), (2, 1), (0, 3)]);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert!(g.has_edge(2, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(1, 3));
    }

    #[test]
    fn degree_ranking_is_deterministic() {
        // Star centred on 0 plus an extra edge raising vertex 1's degree.
        let g = Graph::from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let rank = g.rank_by_degree();
        assert_eq!(rank[0], 0); // degree 3
        assert_eq!(rank[1], 1); // degree 2, ties broken by id
        assert_eq!(rank[2], 2);
        assert_eq!(rank[3], 3);
    }

    #[test]
    fn top_k_by_degree_equals_full_ranking_prefix() {
        // Injective ranking key ⇒ the partial selection must reproduce the
        // full sort's prefix exactly, for every k including 0, n, and > n.
        let graphs = [
            GraphBuilder::new().build(),
            Graph::from_edges(&[(0, 1)]),
            Graph::from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (3, 4), (4, 5), (5, 3)]),
            {
                // Many degree ties so the id tiebreak is actually exercised.
                let mut b = GraphBuilder::new();
                for v in 1..40u32 {
                    b.add_edge(v - 1, v);
                }
                b.build()
            },
        ];
        for g in &graphs {
            let full = g.rank_by_degree();
            for k in [0, 1, 2, 3, g.num_vertices() / 2, g.num_vertices(), 1000] {
                let want = &full[..k.min(g.num_vertices())];
                assert_eq!(g.top_k_by_degree(k), want, "k={k}");
            }
        }
    }

    #[test]
    fn view_matches_owned_graph() {
        let g = Graph::from_edges(&[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let v = g.as_view();
        assert_eq!(v.num_vertices(), g.num_vertices());
        assert_eq!(v.num_edges(), g.num_edges());
        for x in 0..4 {
            assert_eq!(v.neighbors(x), g.neighbors(x));
            assert_eq!(v.degree(x), g.degree(x));
        }
        assert_eq!(v.rank_by_degree(), g.rank_by_degree());
        assert_eq!(v.to_owned_graph(), g);
    }

    #[test]
    fn from_csr_roundtrips_builder_output() {
        let g = Graph::from_edges(&[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let rebuilt = Graph::from_csr(g.csr_offsets().to_vec(), g.csr_neighbors().to_vec())
            .expect("builder output must be valid CSR");
        assert_eq!(rebuilt, g);
    }

    #[test]
    fn from_csr_rejects_malformed_arrays() {
        assert_eq!(
            GraphView::from_csr(&[], &[]).unwrap_err(),
            CsrError::EmptyOffsets
        );
        assert_eq!(
            GraphView::from_csr(&[1, 2], &[0, 0]).unwrap_err(),
            CsrError::NonZeroFirstOffset
        );
        assert!(matches!(
            GraphView::from_csr(&[0, 2, 1], &[1, 0]).unwrap_err(),
            CsrError::NonMonotoneOffsets { vertex: 1 }
        ));
        assert!(matches!(
            GraphView::from_csr(&[0, 1, 2], &[1, 0, 0]).unwrap_err(),
            CsrError::LengthMismatch { .. }
        ));
        assert!(matches!(
            GraphView::from_csr(&[0, 1, 2], &[7, 0]).unwrap_err(),
            CsrError::NeighborOutOfRange {
                vertex: 0,
                neighbor: 7
            }
        ));
        assert!(matches!(
            GraphView::from_csr(&[0, 1, 2], &[0, 0]).unwrap_err(),
            CsrError::SelfLoop { vertex: 0 }
        ));
        // 0 -> 1 without 1 -> 0.
        assert!(matches!(
            GraphView::from_csr(&[0, 1, 1], &[1]).unwrap_err(),
            CsrError::MissingReverseEdge { u: 0, v: 1 }
        ));
        // Unsorted adjacency.
        assert!(matches!(
            GraphView::from_csr(&[0, 2, 3, 4], &[2, 1, 0, 0]).unwrap_err(),
            CsrError::UnsortedNeighbors { vertex: 0 }
        ));
    }
}
