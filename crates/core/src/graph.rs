//! Immutable CSR (compressed sparse row) graph storage.
//!
//! The graph model throughout the workspace is the one used by the paper:
//! unweighted, undirected, simple graphs. [`GraphBuilder`] accepts arbitrary
//! messy edge lists (self-loops, duplicates, either endpoint order) and
//! canonicalises them at build time, so the resulting [`Graph`] can assume a
//! clean adjacency structure on every hot path.

/// Vertex identifier. Dense, zero-based.
pub type VertexId = u32;

/// Sentinel distance meaning "unreachable" in `u32` distance arrays.
pub const INFINITY: u32 = u32::MAX;

/// An immutable unweighted, undirected simple graph in CSR form.
///
/// Neighbour lists are stored back-to-back in one contiguous array and are
/// sorted ascending per vertex, which makes iteration cache-friendly and
/// membership checks binary-searchable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v + 1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<usize>,
    /// Concatenated, per-vertex-sorted adjacency lists.
    neighbors: Vec<VertexId>,
}

impl Graph {
    /// Builds a graph directly from an edge list.
    ///
    /// Convenience wrapper over [`GraphBuilder`]; the vertex count is
    /// inferred as `max endpoint + 1` (0 for an empty list).
    pub fn from_edges(edges: &[(VertexId, VertexId)]) -> Self {
        let mut b = GraphBuilder::new();
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges (each edge counted once).
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The sorted neighbour list of vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether `u` and `v` are adjacent (`O(log degree(u))`).
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Vertices ranked by importance: descending degree, ties broken by
    /// ascending id so the order is deterministic.
    ///
    /// The first `k` entries are the landmark set used by the
    /// highway-cover labelling, mirroring the paper's heuristic that
    /// high-degree vertices cover the most shortest paths in complex
    /// networks.
    pub fn rank_by_degree(&self) -> Vec<VertexId> {
        let mut order: Vec<VertexId> = (0..self.num_vertices() as VertexId).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(self.degree(v)), v));
        order
    }
}

/// Incremental builder producing a canonical [`Graph`].
///
/// Canonicalisation performed by [`GraphBuilder::build`]:
/// * self-loops are dropped,
/// * duplicate edges (in either orientation) are deduplicated,
/// * every kept edge is materialised in both directions,
/// * adjacency lists are sorted ascending.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    edges: Vec<(VertexId, VertexId)>,
    num_vertices: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures the graph has at least `n` vertices, so trailing isolated
    /// vertices survive even though no edge mentions them.
    pub fn reserve_vertices(&mut self, n: usize) -> &mut Self {
        self.num_vertices = self.num_vertices.max(n);
        self
    }

    /// Adds an undirected edge. Order of endpoints is irrelevant;
    /// self-loops and duplicates are tolerated and cleaned up in
    /// [`GraphBuilder::build`].
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.num_vertices = self.num_vertices.max(u.max(v) as usize + 1);
        self.edges.push((u, v));
        self
    }

    /// Finalises the builder into an immutable CSR [`Graph`].
    pub fn build(&self) -> Graph {
        let n = self.num_vertices;
        // Canonicalise: drop self-loops, order endpoints, sort, dedup.
        let mut canon: Vec<(VertexId, VertexId)> = self
            .edges
            .iter()
            .filter(|&&(u, v)| u != v)
            .map(|&(u, v)| if u <= v { (u, v) } else { (v, u) })
            .collect();
        canon.sort_unstable();
        canon.dedup();

        let mut degrees = vec![0usize; n];
        for &(u, v) in &canon {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as VertexId; acc];
        for &(u, v) in &canon {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        for v in 0..n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph { offsets, neighbors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn self_loops_are_dropped() {
        let g = Graph::from_edges(&[(0, 0), (0, 1), (1, 1)]);
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let g = Graph::from_edges(&[(0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn isolated_vertices_are_kept() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1).reserve_vertices(5);
        let g = b.build();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.degree(3), 0);
        assert!(g.neighbors(4).is_empty());
    }

    #[test]
    fn adjacency_is_sorted_and_queryable() {
        let g = Graph::from_edges(&[(2, 0), (2, 3), (2, 1), (0, 3)]);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert!(g.has_edge(2, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(1, 3));
    }

    #[test]
    fn degree_ranking_is_deterministic() {
        // Star centred on 0 plus an extra edge raising vertex 1's degree.
        let g = Graph::from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let rank = g.rank_by_degree();
        assert_eq!(rank[0], 0); // degree 3
        assert_eq!(rank[1], 1); // degree 2, ties broken by id
        assert_eq!(rank[2], 2);
        assert_eq!(rank[3], 3);
    }
}
