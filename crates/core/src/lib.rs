//! Core graph storage and traversal primitives for the highway-cover
//! labelling system.
//!
//! This crate provides the three foundations every other layer builds on:
//!
//! * [`graph::Graph`] — an immutable, cache-friendly CSR (compressed sparse
//!   row) adjacency structure for unweighted undirected graphs, built from
//!   arbitrary edge lists via [`graph::GraphBuilder`].
//! * [`bfs`] — plain breadth-first-search distance oracles. These are the
//!   ground truth that the hub-labelling index in `hcl-index` is
//!   property-tested against.
//! * [`testkit`] — deterministic, seeded synthetic graph generators (paths,
//!   cycles, stars, grids, Erdős–Rényi) so every crate in the workspace can
//!   write reproducible property tests.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bfs;
pub mod graph;
pub mod testkit;

pub use graph::{Graph, GraphBuilder, VertexId, INFINITY};
