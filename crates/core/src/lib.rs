pub fn placeholder() {}
