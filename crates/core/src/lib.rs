//! Core graph storage and traversal primitives for the highway-cover
//! labelling system.
//!
//! This crate provides the three foundations every other layer builds on:
//!
//! * [`graph::Graph`] — an immutable, cache-friendly CSR (compressed sparse
//!   row) adjacency structure for unweighted undirected graphs, built from
//!   arbitrary edge lists via [`graph::GraphBuilder`], plus
//!   [`graph::GraphView`], a borrowed zero-copy view over the same layout
//!   used when serving memory-mapped index files. Raw CSR arrays can be
//!   validated and adopted wholesale via [`graph::Graph::from_csr`].
//! * [`bfs`] — plain breadth-first-search distance oracles. These are the
//!   ground truth that the hub-labelling index in `hcl-index` is
//!   property-tested against. They run over views, so mapped graphs verify
//!   identically to owned ones.
//! * [`rng`] — the seeded SplitMix64 generator. Its output stream is
//!   **frozen**: seeded landmark selection records only `(strategy, seed)`
//!   in the on-disk container, so the stream is part of that format
//!   contract.
//! * [`testkit`] — deterministic, seeded synthetic graph generators (paths,
//!   cycles, stars, grids, Erdős–Rényi, Barabási–Albert) plus the shared
//!   eleven-family property-test sweep, so every crate in the workspace
//!   can write reproducible property tests.
//! * [`bitset::DenseBitSet`] — a dense membership bitset for hot-path
//!   "is this vertex in the small special set?" probes (one bit per
//!   vertex instead of a 4-byte table load).
//! * [`delta`] — the dynamic-graph layer: [`delta::EdgeDelta`] edge edits,
//!   the [`delta::DeltaGraph`] overlay that applies them without touching
//!   the frozen CSR, and [`delta::DynGraphView`], the enum-dispatched view
//!   the BFS oracles accept so traversals run over base+delta unchanged.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bfs;
pub mod bitset;
pub mod delta;
pub mod graph;
pub mod rng;
pub mod testkit;

pub use bfs::{BfsProbe, NoProbe};
pub use bitset::DenseBitSet;
pub use delta::{DeltaError, DeltaGraph, DeltaOp, DynGraphView, EdgeDelta};
pub use graph::{CsrError, Graph, GraphBuilder, GraphView, VertexId, INFINITY};
