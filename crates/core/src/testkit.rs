//! Deterministic synthetic graph generators for property tests and benches.
//!
//! Every generator is seeded and pure, so a failing test case can always be
//! reproduced from its seed. Nothing here depends on external crates: the
//! RNG is a small SplitMix64, which is plenty for generating test topologies.

use crate::graph::{Graph, GraphBuilder, VertexId};

/// SplitMix64 pseudo-random number generator.
///
/// Tiny, fast, and statistically fine for synthetic-graph generation. Not
/// cryptographic.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; bias is negligible for test-sized bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Simple path `0 - 1 - … - (n-1)`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new();
    b.reserve_vertices(n);
    for v in 1..n {
        b.add_edge((v - 1) as VertexId, v as VertexId);
    }
    b.build()
}

/// Cycle over `n` vertices (`n >= 3` to be a proper cycle; smaller values
/// degrade gracefully into a path or a single edge).
pub fn cycle(n: usize) -> Graph {
    let mut b = GraphBuilder::new();
    b.reserve_vertices(n);
    for v in 1..n {
        b.add_edge((v - 1) as VertexId, v as VertexId);
    }
    if n > 2 {
        b.add_edge((n - 1) as VertexId, 0);
    }
    b.build()
}

/// Star with centre `0` and `n - 1` leaves — the extreme case for
/// degree-based landmark selection.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new();
    b.reserve_vertices(n);
    for v in 1..n {
        b.add_edge(0, v as VertexId);
    }
    b.build()
}

/// 4-connected `rows × cols` grid; vertex `(r, c)` has id `r * cols + c`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut b = GraphBuilder::new();
    b.reserve_vertices(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let id = (r * cols + c) as VertexId;
            if c + 1 < cols {
                b.add_edge(id, id + 1);
            }
            if r + 1 < rows {
                b.add_edge(id, id + cols as VertexId);
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)` random graph, deterministic in `seed`.
///
/// Frequently disconnected for small `p`, which is exactly what the
/// unreachability tests want.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::new();
    b.reserve_vertices(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.next_f64() < p {
                b.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    b.build()
}

/// Erdős–Rényi graph specified by expected average degree instead of `p`,
/// using `O(n * avg_degree)` edge sampling so it scales to bench-sized
/// graphs without the `O(n^2)` coin-flip loop.
pub fn erdos_renyi_avg_degree(n: usize, avg_degree: f64, seed: u64) -> Graph {
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::new();
    b.reserve_vertices(n);
    if n >= 2 {
        let target_edges = ((n as f64) * avg_degree / 2.0) as usize;
        for _ in 0..target_edges {
            let u = rng.next_below(n as u64) as VertexId;
            let v = rng.next_below(n as u64) as VertexId;
            // Self-loops and duplicates are canonicalised away by the builder.
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Seeded Barabási–Albert preferential-attachment graph — the power-law,
/// hub-dominated topology the highway-cover scheme actually targets.
///
/// Starts from a star on `min(m + 1, n)` vertices, then attaches each new
/// vertex to `m` *distinct* existing vertices sampled proportionally to
/// degree via the repeated-endpoints multiset trick (every endpoint of every
/// accepted edge is a draw ticket). Connected by construction, deterministic
/// in `seed`; `m` is clamped to at least 1.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    let m = m.max(1);
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::new();
    b.reserve_vertices(n);
    let core = (m + 1).min(n);
    // Draw-ticket multiset: each accepted edge contributes both endpoints,
    // so a vertex's ticket count equals its degree.
    let mut tickets: Vec<VertexId> = Vec::with_capacity(2 * m * n.max(1));
    for v in 1..core {
        b.add_edge(0, v as VertexId);
        tickets.push(0);
        tickets.push(v as VertexId);
    }
    let mut chosen: Vec<VertexId> = Vec::with_capacity(m);
    for v in core..n {
        chosen.clear();
        // `v >= m + 1` existing vertices and the star core alone offers
        // `m + 1` distinct tickets, so `m` distinct draws always exist.
        while chosen.len() < m {
            let t = tickets[rng.next_below(tickets.len() as u64) as usize];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.add_edge(v as VertexId, t);
            tickets.push(v as VertexId);
            tickets.push(t);
        }
    }
    b.build()
}

/// Disjoint union of two generated graphs: `b`'s vertex ids are shifted
/// past `a`'s. Guaranteed to contain cross-component (unreachable) pairs
/// whenever both inputs are non-empty.
pub fn disjoint_union(a: &Graph, b: &Graph) -> Graph {
    let shift = a.num_vertices() as VertexId;
    let mut builder = GraphBuilder::new();
    builder.reserve_vertices(a.num_vertices() + b.num_vertices());
    for g in [(a, 0), (b, shift)] {
        let (graph, offset) = g;
        for u in 0..graph.num_vertices() as VertexId {
            for &v in graph.neighbors(u) {
                if u < v {
                    builder.add_edge(u + offset, v + offset);
                }
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;

    #[test]
    fn rng_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn generators_have_expected_shape() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(star(5).num_edges(), 4);
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
        assert_eq!(bfs::distance(&g, 0, 11), Some(3 + 2));
    }

    #[test]
    fn erdos_renyi_is_seed_deterministic() {
        let a = erdos_renyi(40, 0.1, 7);
        let b = erdos_renyi(40, 0.1, 7);
        let c = erdos_renyi(40, 0.1, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn barabasi_albert_is_connected_and_hub_dominated() {
        let g = barabasi_albert(300, 3, 11);
        assert_eq!(g.num_vertices(), 300);
        // Connected by construction: every distance from 0 is finite.
        let dist = bfs::distances_from(&g, 0);
        assert!(dist.iter().all(|&d| d != crate::INFINITY));
        // Power-law skew: the biggest hub dwarfs the mean degree.
        let max_deg = (0..300).map(|v| g.degree(v)).max().unwrap();
        let avg_deg = 2.0 * g.num_edges() as f64 / 300.0;
        assert!(
            max_deg as f64 > 4.0 * avg_deg,
            "expected hub domination, max {max_deg} vs avg {avg_deg:.1}"
        );
        // Deterministic in the seed.
        assert_eq!(g, barabasi_albert(300, 3, 11));
        assert_ne!(g, barabasi_albert(300, 3, 12));
    }

    #[test]
    fn barabasi_albert_degenerate_sizes() {
        assert_eq!(barabasi_albert(0, 3, 1).num_vertices(), 0);
        assert_eq!(barabasi_albert(1, 3, 1).num_vertices(), 1);
        let tiny = barabasi_albert(3, 5, 1); // n smaller than m + 1: pure star
        assert_eq!(tiny.num_edges(), 2);
        assert_eq!(tiny.degree(0), 2);
    }

    #[test]
    fn disjoint_union_separates_components() {
        let g = disjoint_union(&path(3), &cycle(4));
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(bfs::distance(&g, 0, 2), Some(2));
        assert_eq!(bfs::distance(&g, 2, 3), None);
        assert_eq!(bfs::distance(&g, 3, 5), Some(2));
    }
}
