//! Deterministic synthetic graph generators for property tests and benches.
//!
//! Every generator is seeded and pure, so a failing test case can always be
//! reproduced from its seed. Nothing here depends on external crates: the
//! RNG is a small SplitMix64, which is plenty for generating test topologies.

use crate::graph::{Graph, GraphBuilder, VertexId};

/// The canonical eleven-family degenerate-shape sweep shared by the
/// cross-crate property suites (oracle exactness, build determinism,
/// store round-trips, worker-pool byte-identity): empty and single-vertex
/// graphs, the deterministic families, dense and fragmented Erdős–Rényi,
/// power-law BA, a guaranteed-disconnected union, and trailing isolated
/// vertices. One definition, so growing the sweep grows every suite.
pub fn families() -> Vec<(String, Graph)> {
    let mut isolated = GraphBuilder::new();
    isolated.add_edge(0, 1).add_edge(1, 2).reserve_vertices(7);
    vec![
        ("empty".into(), GraphBuilder::new().build()),
        ("single".into(), path(1)),
        ("path(13)".into(), path(13)),
        ("cycle(9)".into(), cycle(9)),
        ("star(17)".into(), star(17)),
        ("grid(4x5)".into(), grid(4, 5)),
        ("er(40,0.08)".into(), erdos_renyi(40, 0.08, 3)),
        // Sparse ER: fragmented, exercises unreachable pairs.
        ("er(40,0.02)".into(), erdos_renyi(40, 0.02, 1)),
        ("ba(60,3)".into(), barabasi_albert(60, 3, 7)),
        ("grid⊎cycle".into(), disjoint_union(&grid(3, 3), &cycle(5))),
        ("path+isolated".into(), isolated.build()),
    ]
}

// The RNG itself lives in [`crate::rng`] — its output stream is frozen as
// part of the `.hcl` container contract (recorded landmark-selection
// seeds), which makes it more than test tooling. Re-exported here because
// every generator below is seeded with it.
pub use crate::rng::SplitMix64;

/// Simple path `0 - 1 - … - (n-1)`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new();
    b.reserve_vertices(n);
    for v in 1..n {
        b.add_edge((v - 1) as VertexId, v as VertexId);
    }
    b.build()
}

/// Cycle over `n` vertices (`n >= 3` to be a proper cycle; smaller values
/// degrade gracefully into a path or a single edge).
pub fn cycle(n: usize) -> Graph {
    let mut b = GraphBuilder::new();
    b.reserve_vertices(n);
    for v in 1..n {
        b.add_edge((v - 1) as VertexId, v as VertexId);
    }
    if n > 2 {
        b.add_edge((n - 1) as VertexId, 0);
    }
    b.build()
}

/// Star with centre `0` and `n - 1` leaves — the extreme case for
/// degree-based landmark selection.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new();
    b.reserve_vertices(n);
    for v in 1..n {
        b.add_edge(0, v as VertexId);
    }
    b.build()
}

/// 4-connected `rows × cols` grid; vertex `(r, c)` has id `r * cols + c`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut b = GraphBuilder::new();
    b.reserve_vertices(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let id = (r * cols + c) as VertexId;
            if c + 1 < cols {
                b.add_edge(id, id + 1);
            }
            if r + 1 < rows {
                b.add_edge(id, id + cols as VertexId);
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)` random graph, deterministic in `seed`.
///
/// Frequently disconnected for small `p`, which is exactly what the
/// unreachability tests want.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::new();
    b.reserve_vertices(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.next_f64() < p {
                b.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    b.build()
}

/// Erdős–Rényi graph specified by expected average degree instead of `p`,
/// using `O(n * avg_degree)` edge sampling so it scales to bench-sized
/// graphs without the `O(n^2)` coin-flip loop.
pub fn erdos_renyi_avg_degree(n: usize, avg_degree: f64, seed: u64) -> Graph {
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::new();
    b.reserve_vertices(n);
    if n >= 2 {
        let target_edges = ((n as f64) * avg_degree / 2.0) as usize;
        for _ in 0..target_edges {
            let u = rng.next_below(n as u64) as VertexId;
            let v = rng.next_below(n as u64) as VertexId;
            // Self-loops and duplicates are canonicalised away by the builder.
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Seeded Barabási–Albert preferential-attachment graph — the power-law,
/// hub-dominated topology the highway-cover scheme actually targets.
///
/// Starts from a star on `min(m + 1, n)` vertices, then attaches each new
/// vertex to `m` *distinct* existing vertices sampled proportionally to
/// degree via the repeated-endpoints multiset trick (every endpoint of every
/// accepted edge is a draw ticket). Connected by construction, deterministic
/// in `seed`; `m` is clamped to at least 1.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    let m = m.max(1);
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::new();
    b.reserve_vertices(n);
    let core = (m + 1).min(n);
    // Draw-ticket multiset: each accepted edge contributes both endpoints,
    // so a vertex's ticket count equals its degree.
    let mut tickets: Vec<VertexId> = Vec::with_capacity(2 * m * n.max(1));
    for v in 1..core {
        b.add_edge(0, v as VertexId);
        tickets.push(0);
        tickets.push(v as VertexId);
    }
    let mut chosen: Vec<VertexId> = Vec::with_capacity(m);
    for v in core..n {
        chosen.clear();
        // `v >= m + 1` existing vertices and the star core alone offers
        // `m + 1` distinct tickets, so `m` distinct draws always exist.
        while chosen.len() < m {
            let t = tickets[rng.next_below(tickets.len() as u64) as usize];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.add_edge(v as VertexId, t);
            tickets.push(v as VertexId);
            tickets.push(t);
        }
    }
    b.build()
}

/// Disjoint union of two generated graphs: `b`'s vertex ids are shifted
/// past `a`'s. Guaranteed to contain cross-component (unreachable) pairs
/// whenever both inputs are non-empty.
pub fn disjoint_union(a: &Graph, b: &Graph) -> Graph {
    let shift = a.num_vertices() as VertexId;
    let mut builder = GraphBuilder::new();
    builder.reserve_vertices(a.num_vertices() + b.num_vertices());
    for g in [(a, 0), (b, shift)] {
        let (graph, offset) = g;
        for u in 0..graph.num_vertices() as VertexId {
            for &v in graph.neighbors(u) {
                if u < v {
                    builder.add_edge(u + offset, v + offset);
                }
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;

    #[test]
    fn generators_have_expected_shape() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(star(5).num_edges(), 4);
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
        assert_eq!(bfs::distance(&g, 0, 11), Some(3 + 2));
    }

    #[test]
    fn erdos_renyi_is_seed_deterministic() {
        let a = erdos_renyi(40, 0.1, 7);
        let b = erdos_renyi(40, 0.1, 7);
        let c = erdos_renyi(40, 0.1, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn barabasi_albert_is_connected_and_hub_dominated() {
        let g = barabasi_albert(300, 3, 11);
        assert_eq!(g.num_vertices(), 300);
        // Connected by construction: every distance from 0 is finite.
        let dist = bfs::distances_from(&g, 0);
        assert!(dist.iter().all(|&d| d != crate::INFINITY));
        // Power-law skew: the biggest hub dwarfs the mean degree.
        let max_deg = (0..300).map(|v| g.degree(v)).max().unwrap();
        let avg_deg = 2.0 * g.num_edges() as f64 / 300.0;
        assert!(
            max_deg as f64 > 4.0 * avg_deg,
            "expected hub domination, max {max_deg} vs avg {avg_deg:.1}"
        );
        // Deterministic in the seed.
        assert_eq!(g, barabasi_albert(300, 3, 11));
        assert_ne!(g, barabasi_albert(300, 3, 12));
    }

    #[test]
    fn barabasi_albert_degenerate_sizes() {
        assert_eq!(barabasi_albert(0, 3, 1).num_vertices(), 0);
        assert_eq!(barabasi_albert(1, 3, 1).num_vertices(), 1);
        let tiny = barabasi_albert(3, 5, 1); // n smaller than m + 1: pure star
        assert_eq!(tiny.num_edges(), 2);
        assert_eq!(tiny.degree(0), 2);
    }

    #[test]
    fn families_cover_the_degenerate_shapes() {
        let fams = families();
        assert_eq!(fams.len(), 11);
        assert!(fams.iter().any(|(_, g)| g.num_vertices() == 0));
        assert!(fams.iter().any(|(_, g)| g.num_vertices() == 1));
        // At least one family with unreachable pairs and one with
        // trailing isolated vertices.
        assert!(fams.iter().any(|(n, g)| n == "grid⊎cycle"
            && bfs::distance(g, 0, g.num_vertices() as u32 - 1).is_none()));
        assert!(fams
            .iter()
            .any(|(n, g)| n == "path+isolated" && g.degree(6) == 0));
    }

    #[test]
    fn disjoint_union_separates_components() {
        let g = disjoint_union(&path(3), &cycle(4));
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(bfs::distance(&g, 0, 2), Some(2));
        assert_eq!(bfs::distance(&g, 2, 3), None);
        assert_eq!(bfs::distance(&g, 3, 5), Some(2));
    }
}
