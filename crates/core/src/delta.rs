//! Mutable edge-delta overlay on the immutable CSR graph.
//!
//! The CSR layout ([`Graph`]/[`GraphView`]) is deliberately frozen: its
//! contiguous arrays are what the store memory-maps and what every
//! traversal iterates. Dynamic graphs are layered *on top* of it instead
//! of mutating it: a [`DeltaGraph`] keeps the base view untouched and
//! materialises a private, fully merged adjacency list only for the
//! vertices an edit actually touched. `neighbors` therefore still returns
//! a plain sorted `&[VertexId]` slice — patched vertices serve their
//! overlay copy, everyone else serves the base CSR — so traversal code
//! needs no per-edge branching and no iterator abstraction.
//!
//! [`DynGraphView`] is the enum-dispatched view unifying both worlds: the
//! BFS oracles in [`crate::bfs`] accept `impl Into<DynGraphView>` and run
//! unchanged over a frozen CSR or a base+delta overlay. The vertex set is
//! fixed: deltas add and remove *edges* between existing vertices (the
//! serving path's containers pin `n` at build time); growing the vertex
//! set remains a rebuild.

use crate::graph::{Graph, GraphBuilder, GraphView, VertexId};
use std::collections::HashMap;
use std::fmt;

/// What an [`EdgeDelta`] does to the edge `(u, v)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeltaOp {
    /// Add the undirected edge.
    Insert,
    /// Remove the undirected edge.
    Delete,
}

impl DeltaOp {
    /// The sign character the CLI protocols use (`+` insert, `-` delete).
    pub fn sign(self) -> char {
        match self {
            DeltaOp::Insert => '+',
            DeltaOp::Delete => '-',
        }
    }
}

/// One undirected edge edit. Endpoint order is irrelevant (the graph is
/// undirected); `u == v` is invalid (self-loops are canonicalised away at
/// build time and stay banned).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeDelta {
    /// Insert or delete.
    pub op: DeltaOp,
    /// First endpoint.
    pub u: VertexId,
    /// Second endpoint.
    pub v: VertexId,
}

impl EdgeDelta {
    /// An insertion of edge `(u, v)`.
    pub fn insert(u: VertexId, v: VertexId) -> Self {
        Self {
            op: DeltaOp::Insert,
            u,
            v,
        }
    }

    /// A deletion of edge `(u, v)`.
    pub fn delete(u: VertexId, v: VertexId) -> Self {
        Self {
            op: DeltaOp::Delete,
            u,
            v,
        }
    }

    /// Checks the delta against a graph of `num_vertices` vertices without
    /// applying it: both endpoints in range, no self-loop.
    pub fn validate(&self, num_vertices: usize) -> Result<(), DeltaError> {
        for vertex in [self.u, self.v] {
            if vertex as usize >= num_vertices {
                return Err(DeltaError::VertexOutOfRange {
                    vertex,
                    num_vertices,
                });
            }
        }
        if self.u == self.v {
            return Err(DeltaError::SelfLoop { vertex: self.u });
        }
        Ok(())
    }
}

impl fmt::Display for EdgeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{} {}", self.op.sign(), self.u, self.v)
    }
}

/// Why an [`EdgeDelta`] cannot be applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeltaError {
    /// An endpoint is not a vertex of the base graph (the vertex set is
    /// fixed; growing it is a rebuild).
    VertexOutOfRange {
        /// The offending endpoint.
        vertex: VertexId,
        /// The graph's vertex count.
        num_vertices: usize,
    },
    /// `u == v`: self-loops are not representable.
    SelfLoop {
        /// The endpoint.
        vertex: VertexId,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range (graph has {num_vertices} vertices; \
                 the vertex set is fixed — growing it requires a rebuild)"
            ),
            DeltaError::SelfLoop { vertex } => {
                write!(f, "self-loop ({vertex}, {vertex}) is not a valid edge")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// A mutable edge-delta overlay over an immutable base [`GraphView`].
///
/// Edits are applied with [`DeltaGraph::apply`]; adjacency reads come
/// back as plain sorted slices (overlay copies for patched vertices, the
/// base CSR for everyone else), so the overlay plugs into every traversal
/// through [`DynGraphView`] without changing its inner loop. Materialise
/// with [`DeltaGraph::to_graph`] once a batch of edits settles.
pub struct DeltaGraph<'a> {
    base: GraphView<'a>,
    /// Fully merged, sorted adjacency for vertices whose neighbourhood
    /// differs from the base.
    patched: HashMap<VertexId, Vec<VertexId>>,
    /// Undirected edge count after all applied deltas.
    num_edges: usize,
}

impl<'a> DeltaGraph<'a> {
    /// An overlay with no edits yet.
    pub fn new(base: GraphView<'a>) -> Self {
        Self {
            base,
            patched: HashMap::new(),
            num_edges: base.num_edges(),
        }
    }

    /// Number of vertices (fixed: always the base graph's count).
    pub fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    /// Number of undirected edges after all applied deltas.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of vertices whose adjacency differs from the base.
    pub fn num_patched(&self) -> usize {
        self.patched.len()
    }

    /// The sorted neighbour list of `v`: the overlay copy if `v` was
    /// touched by an edit, the base CSR slice otherwise.
    ///
    /// # Panics
    /// Panics if `v` is out of range (same contract as [`GraphView`]).
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        match self.patched.get(&v) {
            Some(adj) => adj,
            None => self.base.neighbors(v),
        }
    }

    /// Whether `u` and `v` are adjacent (`O(log degree(u))`).
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Applies one edit. `Ok(true)` when the graph changed, `Ok(false)`
    /// for a no-op (inserting an existing edge, deleting a missing one) —
    /// callers use the distinction to skip label repair and to keep
    /// journals free of dead entries.
    pub fn apply(&mut self, delta: EdgeDelta) -> Result<bool, DeltaError> {
        delta.validate(self.num_vertices())?;
        let present = self.has_edge(delta.u, delta.v);
        let effective = match delta.op {
            DeltaOp::Insert => !present,
            DeltaOp::Delete => present,
        };
        if !effective {
            return Ok(false);
        }
        for (a, b) in [(delta.u, delta.v), (delta.v, delta.u)] {
            let adj = self
                .patched
                .entry(a)
                .or_insert_with(|| self.base.neighbors(a).to_vec());
            match (delta.op, adj.binary_search(&b)) {
                (DeltaOp::Insert, Err(pos)) => adj.insert(pos, b),
                (DeltaOp::Delete, Ok(pos)) => {
                    adj.remove(pos);
                }
                // `present` was checked on the merged adjacency, and both
                // directions stay in lockstep, so these arms cannot occur.
                _ => {}
            }
        }
        match delta.op {
            DeltaOp::Insert => self.num_edges = self.num_edges.saturating_add(1),
            DeltaOp::Delete => self.num_edges = self.num_edges.saturating_sub(1),
        }
        Ok(true)
    }

    /// Materialises the overlay into an owned, canonical CSR [`Graph`].
    pub fn to_graph(&self) -> Graph {
        let mut b = GraphBuilder::new();
        b.reserve_vertices(self.num_vertices());
        for u in 0..self.num_vertices() as VertexId {
            for &v in self.neighbors(u) {
                if u < v {
                    b.add_edge(u, v);
                }
            }
        }
        b.build()
    }

    /// A borrowed enum view of this overlay for the traversal APIs.
    pub fn as_dyn_view(&self) -> DynGraphView<'_> {
        DynGraphView::Delta(self)
    }
}

/// The enum-dispatched graph view: a frozen CSR or a base+delta overlay.
///
/// `Copy`, like [`GraphView`]. Every BFS oracle in [`crate::bfs`] takes
/// `impl Into<DynGraphView>`, so owned graphs, mmap'd views, and delta
/// overlays all run through one traversal implementation; the only cost
/// is one predictable match per adjacency fetch.
#[derive(Clone, Copy)]
pub enum DynGraphView<'a> {
    /// A frozen CSR graph.
    Csr(GraphView<'a>),
    /// A base CSR plus an edit overlay.
    Delta(&'a DeltaGraph<'a>),
}

impl<'a> DynGraphView<'a> {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        match self {
            DynGraphView::Csr(g) => g.num_vertices(),
            DynGraphView::Delta(d) => d.num_vertices(),
        }
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        match self {
            DynGraphView::Csr(g) => g.num_edges(),
            DynGraphView::Delta(d) => d.num_edges(),
        }
    }

    /// The sorted neighbour list of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: VertexId) -> &'a [VertexId] {
        match self {
            DynGraphView::Csr(g) => g.neighbors(v),
            DynGraphView::Delta(d) => d.neighbors(v),
        }
    }

    /// Whether `u` and `v` are adjacent.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }
}

impl<'a> From<GraphView<'a>> for DynGraphView<'a> {
    fn from(g: GraphView<'a>) -> Self {
        DynGraphView::Csr(g)
    }
}

impl<'a> From<&'a Graph> for DynGraphView<'a> {
    fn from(g: &'a Graph) -> Self {
        DynGraphView::Csr(g.as_view())
    }
}

impl<'a> From<&'a DeltaGraph<'a>> for DynGraphView<'a> {
    fn from(d: &'a DeltaGraph<'a>) -> Self {
        DynGraphView::Delta(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;
    use crate::testkit;

    #[test]
    fn overlay_starts_identical_to_base() {
        let g = testkit::grid(4, 4);
        let d = DeltaGraph::new(g.as_view());
        assert_eq!(d.num_vertices(), 16);
        assert_eq!(d.num_edges(), g.num_edges());
        assert_eq!(d.num_patched(), 0);
        for v in 0..16 {
            assert_eq!(d.neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn insert_and_delete_patch_both_endpoints() {
        let g = testkit::path(5); // 0-1-2-3-4
        let mut d = DeltaGraph::new(g.as_view());
        assert!(d.apply(EdgeDelta::insert(0, 4)).unwrap());
        assert!(d.has_edge(0, 4));
        assert!(d.has_edge(4, 0));
        assert_eq!(d.num_edges(), g.num_edges() + 1);
        assert_eq!(d.num_patched(), 2);
        // Overlay lists stay sorted.
        assert_eq!(d.neighbors(0), &[1, 4]);
        assert_eq!(d.neighbors(4), &[0, 3]);

        assert!(d.apply(EdgeDelta::delete(1, 2)).unwrap());
        assert!(!d.has_edge(1, 2));
        assert!(!d.has_edge(2, 1));
        assert_eq!(d.num_edges(), g.num_edges());
        // The base graph is untouched.
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 4));
    }

    #[test]
    fn ineffective_deltas_are_reported_not_applied() {
        let g = testkit::path(3);
        let mut d = DeltaGraph::new(g.as_view());
        assert!(!d.apply(EdgeDelta::insert(0, 1)).unwrap()); // already present
        assert!(!d.apply(EdgeDelta::delete(0, 2)).unwrap()); // not present
        assert_eq!(d.num_patched(), 0);
        assert_eq!(d.num_edges(), g.num_edges());
    }

    #[test]
    fn invalid_deltas_are_rejected() {
        let g = testkit::path(3);
        let mut d = DeltaGraph::new(g.as_view());
        assert_eq!(
            d.apply(EdgeDelta::insert(0, 7)).unwrap_err(),
            DeltaError::VertexOutOfRange {
                vertex: 7,
                num_vertices: 3
            }
        );
        assert_eq!(
            d.apply(EdgeDelta::insert(1, 1)).unwrap_err(),
            DeltaError::SelfLoop { vertex: 1 }
        );
    }

    #[test]
    fn materialised_graph_matches_overlay() {
        let g = testkit::erdos_renyi(30, 0.1, 5);
        let mut d = DeltaGraph::new(g.as_view());
        let mut rng = testkit::SplitMix64::new(42);
        for _ in 0..20 {
            let u = rng.next_below(30) as VertexId;
            let v = rng.next_below(30) as VertexId;
            if u == v {
                continue;
            }
            let delta = if d.has_edge(u, v) {
                EdgeDelta::delete(u, v)
            } else {
                EdgeDelta::insert(u, v)
            };
            d.apply(delta).unwrap();
        }
        let materialised = d.to_graph();
        assert_eq!(materialised.num_vertices(), d.num_vertices());
        assert_eq!(materialised.num_edges(), d.num_edges());
        for v in 0..30 {
            assert_eq!(materialised.neighbors(v), d.neighbors(v), "vertex {v}");
        }
    }

    #[test]
    fn bfs_oracles_run_over_the_overlay() {
        let g = testkit::path(6); // 0-1-2-3-4-5
        let mut d = DeltaGraph::new(g.as_view());
        d.apply(EdgeDelta::insert(0, 5)).unwrap(); // close the cycle
        assert_eq!(bfs::distance(&d, 0, 5), Some(1));
        assert_eq!(bfs::distance(&d, 0, 3), Some(3));
        d.apply(EdgeDelta::delete(2, 3)).unwrap();
        // 0-1-2 and 3-4-5 joined only through the new 0-5 edge.
        assert_eq!(bfs::distance(&d, 2, 3), Some(5));
        // Base graph still answers the old distances.
        assert_eq!(bfs::distance(&g, 2, 3), Some(1));
        assert_eq!(bfs::distance(&g, 0, 5), Some(5));
    }
}
