//! A dense, fixed-universe bitset.
//!
//! Built for hot-path membership tests where the candidate set is a small
//! fraction of a large universe — e.g. "is vertex `w` a landmark?" inside
//! the query engine's residual BFS, where a bit probe touches 64× less
//! cache than the equivalent `u32` rank-table load. The universe size is
//! explicit ([`DenseBitSet::reset`]) and out-of-range probes simply answer
//! `false`, so callers can share one set across graphs of different sizes.

/// A dense bitset over the universe `0..len`.
///
/// One `u64` word per 64 universe elements. [`DenseBitSet::reset`]
/// re-zeroes and re-sizes in one pass (`O(len / 64)`), which is how a
/// reusable scratch structure swaps to a different universe cheaply.
#[derive(Clone, Debug, Default)]
pub struct DenseBitSet {
    words: Vec<u64>,
    len: usize,
}

impl DenseBitSet {
    /// Creates an empty set over the empty universe; use
    /// [`DenseBitSet::reset`] to size it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the set and resizes the universe to `0..len`.
    pub fn reset(&mut self, len: usize) {
        let words = len.div_ceil(64);
        self.words.clear();
        self.words.resize(words, 0);
        self.len = len;
    }

    /// Universe size (`contains` answers `false` at and beyond it).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `i` into the set.
    ///
    /// # Panics
    /// Panics if `i` is outside the universe.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} outside universe 0..{}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Whether `i` is in the set. Out-of-universe probes answer `false`
    /// instead of panicking, so the hot path needs no separate range check.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        match self.words.get(i / 64) {
            Some(word) => (word >> (i % 64)) & 1 != 0,
            None => false,
        }
    }

    /// Number of elements currently in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty_and_resets_clear() {
        let mut s = DenseBitSet::new();
        assert!(s.is_empty());
        assert!(!s.contains(0));
        s.reset(130);
        assert_eq!(s.len(), 130);
        assert_eq!(s.count(), 0);
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert_eq!(s.count(), 4);
        for i in [0usize, 63, 64, 129] {
            assert!(s.contains(i), "missing {i}");
        }
        for i in [1usize, 62, 65, 128, 130, 4096] {
            assert!(!s.contains(i), "spurious {i}");
        }
        // Reset to a smaller universe drops everything.
        s.reset(10);
        assert_eq!(s.count(), 0);
        assert!(!s.contains(0));
        assert!(!s.contains(64));
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_universe_panics() {
        let mut s = DenseBitSet::new();
        s.reset(64);
        s.insert(64);
    }

    #[test]
    fn word_boundaries_are_exact() {
        let mut s = DenseBitSet::new();
        s.reset(256);
        for i in (0..256).step_by(2) {
            s.insert(i);
        }
        assert_eq!(s.count(), 128);
        for i in 0..256 {
            assert_eq!(s.contains(i), i % 2 == 0, "bit {i}");
        }
    }
}
