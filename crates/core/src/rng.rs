//! The workspace's seeded pseudo-random number generator.
//!
//! This lives outside [`testkit`](crate::testkit) because it is **not**
//! just test tooling: seeded landmark selection (`hcl-index`'s
//! `ApproxCoverage`/`SeededRandom`) derives landmarks from this generator,
//! and `.hcl` containers (format v4) record only the strategy tag and seed
//! with the promise that the index can be rebuilt identically. The output
//! stream is therefore part of the on-disk format contract.

/// SplitMix64 pseudo-random number generator.
///
/// Tiny, fast, and statistically fine for graph generation and landmark
/// sampling. Not cryptographic.
///
/// **The output stream is frozen.** Changing the algorithm, constants, or
/// the [`next_below`](SplitMix64::next_below) mapping silently changes
/// which landmarks a recorded seed reproduces — a *container-format-
/// breaking change*, not an internal tweak. A pinned-constants test
/// enforces this.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; bias is negligible for the bounds used here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_stream_is_frozen() {
        // Recorded landmark-selection seeds (`.hcl` format v4) must
        // reproduce identical selections forever, so the exact output
        // stream is part of the on-disk contract. If this test fails, the
        // RNG changed — that requires a container format version bump,
        // not a constant update here.
        let mut rng = SplitMix64::new(42);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                0xbdd732262feb6e95,
                0x28efe333b266f103,
                0x47526757130f9f52,
                0x581ce1ff0e4ae394,
            ]
        );
        let mut rng = SplitMix64::new(7);
        assert_eq!(rng.next_below(1000), 389);
        assert_eq!(rng.next_below(1000), 16);
    }
}
